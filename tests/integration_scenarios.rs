//! Scenario-registry and batch-session integration: the declarative
//! path (registry -> session -> search) must return exactly what the
//! per-layer imperative path returns, while provably sharing work.

use sparseloop_core::{EvalJob, EvalSession, JobPlan, Model, Objective, Workload};
use sparseloop_designs::scenario::{table5_name, Table5Design, Table5Net};
use sparseloop_designs::{fig1, MappingPolicy, ScenarioRegistry};
use sparseloop_mapping::{Mapper, Mapspace};
use sparseloop_workloads::{spmspm, Layer};

/// A small multi-layer workload (an AlexNet-like stack of matmul layers
/// with repeating density statistics) on the Fig. 1 coordinate-list
/// design, as search jobs.
fn multi_layer_jobs() -> Vec<(Layer, EvalJob)> {
    [(16, 0.25), (16, 0.5), (32, 0.25), (16, 0.25)]
        .into_iter()
        .enumerate()
        .map(|(i, (size, d))| {
            let mut layer = spmspm(size, size, size, d, d);
            layer.name = format!("layer{i}");
            let dp = fig1::coordinate_list_design(&layer.einsum);
            let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
            let job = EvalJob {
                workload: Workload::new(layer.einsum.clone(), layer.densities.clone()),
                arch: dp.arch.clone(),
                safs: dp.safs.clone(),
                plan: JobPlan::Search {
                    space,
                    mapper: Mapper::Exhaustive { limit: 2000 },
                    objective: Objective::Edp,
                },
            };
            (layer, job)
        })
        .collect()
}

#[test]
fn search_batch_matches_per_layer_search_parallel_bit_identically() {
    let jobs: Vec<EvalJob> = multi_layer_jobs().into_iter().map(|(_, j)| j).collect();
    // reference: standalone per-layer parallel searches
    for threads in [2, 4] {
        let session = EvalSession::new();
        let batch = session.search_batch(&jobs, Some(threads));
        for (job, outcome) in jobs.iter().zip(&batch) {
            let model = Model::new(job.workload.clone(), job.arch.clone(), job.safs.clone());
            let JobPlan::Search {
                space,
                mapper,
                objective,
            } = &job.plan
            else {
                unreachable!()
            };
            let reference =
                model.search_parallel_with_stats(space, *mapper, *objective, Some(threads));
            match (outcome, reference) {
                (Ok(got), Some((mapping, eval, stats))) => {
                    assert_eq!(got.mapping, mapping, "threads={threads}");
                    assert_eq!(got.eval.edp, eval.edp, "threads={threads}");
                    assert_eq!(got.eval.cycles, eval.cycles, "threads={threads}");
                    assert_eq!(got.eval.energy_pj, eval.energy_pj, "threads={threads}");
                    assert_eq!(got.stats, stats, "threads={threads}");
                }
                (Err(_), None) => {}
                other => panic!("batch/per-layer disagree on validity: {other:?}"),
            }
        }
    }
}

#[test]
fn session_shares_format_analyses_across_layers() {
    let jobs: Vec<EvalJob> = multi_layer_jobs().into_iter().map(|(_, j)| j).collect();
    // per-layer: every model pays its own analyses
    let mut standalone_misses = 0u64;
    for job in &jobs {
        let model = Model::new(job.workload.clone(), job.arch.clone(), job.safs.clone());
        let JobPlan::Search {
            space,
            mapper,
            objective,
        } = &job.plan
        else {
            unreachable!()
        };
        model.search_parallel_with_stats(space, *mapper, *objective, Some(2));
        standalone_misses += model.format_cache_stats().misses;
    }
    // session: layers 0 and 3 are statistically identical, and every
    // layer shares its dense-tensor statistics — strictly fewer analyses
    let session = EvalSession::new();
    session.search_batch(&jobs, Some(2));
    let stats = session.stats();
    assert!(
        stats.format.misses < standalone_misses,
        "session ran {} format analyses, standalone layers ran {standalone_misses}",
        stats.format.misses
    );
    assert!(stats.format.hits > 0, "sharing must be observable");
    // repeated statistics intern one shared density model each
    assert!(stats.density_models > 0);
}

#[test]
fn registry_covers_the_paper_experiments() {
    let reg = ScenarioRegistry::standard();
    for name in [
        "fig1_format_tradeoff",
        "fig11_scnn_validation",
        "fig12_eyerissv2_validation",
        "fig13_dstc_validation",
        "fig15_stc_case_study",
        "fig17_codesign_study",
        "table5_refsim_baseline",
        "table6_validation_summary",
        "table7_eyeriss_rlc",
    ] {
        assert!(reg.get(name).is_some(), "missing scenario {name}");
    }
    for design in Table5Design::ALL {
        for net in Table5Net::ALL {
            let name = table5_name(design, net);
            assert!(reg.get(&name).is_some(), "missing scenario {name}");
        }
    }
}

#[test]
fn scenario_run_matches_design_point_evaluation() {
    // the declarative path returns what the imperative DesignPoint API
    // returns for the same (design, layer, mapping)
    let session = EvalSession::new();
    let out = ScenarioRegistry::standard()
        .expect("fig1_format_tradeoff")
        .run(&session, Some(2));
    assert!(out.results.iter().all(Result::is_ok));
    for (exp, res) in out.succeeded() {
        let MappingPolicy::Fixed(mapping) = &exp.policy else {
            panic!("fig1 uses fixed mappings");
        };
        let direct = exp.design.evaluate(&exp.layer, mapping).unwrap();
        assert_eq!(direct.edp, res.eval.edp, "{}", exp.label);
    }
}

#[test]
fn table6_scenario_preserves_the_stc_exact_speedup() {
    // the paper's deterministic 2x must survive the registry rewiring
    let session = EvalSession::new();
    let out = ScenarioRegistry::standard()
        .expect("table6_validation_summary")
        .run(&session, Some(2));
    let sparse = out.result("STC@2:4").expect("sparse row evaluates");
    let dense = out.result("STC@dense").expect("dense row evaluates");
    let speedup = dense.eval.uarch.compute_cycles / sparse.eval.uarch.compute_cycles;
    assert!((speedup - 2.0).abs() < 1e-9, "got {speedup}");
}
