//! End-to-end integration: workload -> design -> engine -> evaluation,
//! spanning every crate in the workspace.

use sparseloop_core::{Model, Objective, SafSpec, Workload};
use sparseloop_designs::common::{conv_mapspace, matmul_mapping_2level};
use sparseloop_designs::{eyeriss, fig1, scnn};
use sparseloop_mapping::Mapper;
use sparseloop_workloads::{alexnet, mobilenet_v1, spmspm, vgg16};

#[test]
fn spmspm_on_fig1_designs_end_to_end() {
    for d in [0.1, 0.5, 1.0] {
        let layer = spmspm(32, 32, 32, d, d);
        let mapping = matmul_mapping_2level(&layer.einsum, 16, 4);
        for dp in [
            fig1::bitmask_design(&layer.einsum),
            fig1::coordinate_list_design(&layer.einsum),
        ] {
            let eval = dp.evaluate(&layer, &mapping).unwrap();
            assert!(eval.cycles >= 1.0, "{} at d={d}", dp.name);
            assert!(eval.energy_pj > 0.0);
            // conservation at every level entry
            for e in &eval.sparse.entries {
                let de = eval.dense.get(e.tensor, e.level).unwrap();
                assert!(
                    (e.reads.total() - de.reads).abs() < de.reads.max(1.0) * 1e-6,
                    "reads conserved for {} t{} L{}",
                    dp.name,
                    e.tensor.0,
                    e.level
                );
            }
        }
    }
}

#[test]
fn conv_designs_search_valid_mappings() {
    // driven as scenario experiments through a shared session, the same
    // path the registry's experiments take
    let layer = alexnet().layers[4].scaled_to(1_000_000);
    let session = sparseloop_core::EvalSession::new();
    for dp in [eyeriss::design(&layer.einsum), scnn::design(&layer.einsum)] {
        let space = conv_mapspace(&layer.einsum, &dp.arch, 2);
        let exp = sparseloop_designs::Experiment::search(
            format!("{}@conv5", dp.name),
            dp,
            layer.clone(),
            space,
        );
        let outcome = session.search_batch(&[exp.job()], Some(2));
        let res = outcome[0].as_ref().expect("valid mapping exists");
        res.mapping
            .validate(&layer.einsum, &exp.design.arch)
            .unwrap();
        assert!(res.eval.cycles > 0.0, "{}", exp.label);
    }
}

#[test]
fn network_level_aggregation() {
    // per-layer evaluation then aggregation, the paper's DNN methodology,
    // run as one batch through the session
    let net = vgg16();
    let session = sparseloop_core::EvalSession::new();
    let jobs: Vec<sparseloop_core::EvalJob> = net
        .layers
        .iter()
        .take(3)
        .map(|layer| {
            let layer = layer.scaled_to(2_000_000);
            let dp = eyeriss::design(&layer.einsum);
            let space = conv_mapspace(&layer.einsum, &dp.arch, 2);
            sparseloop_designs::Experiment::search(layer.name.clone(), dp, layer, space).job()
        })
        .collect();
    let total: f64 = session
        .search_batch(&jobs, Some(2))
        .iter()
        .map(|r| r.as_ref().expect("layer maps").eval.energy_pj)
        .sum();
    assert!(total > 0.0);
}

#[test]
fn depthwise_layers_supported() {
    let net = mobilenet_v1();
    let dw = net.layers[1].scaled_to(200_000);
    assert!(dw.name.starts_with("dw"));
    let dp = sparseloop_designs::eyeriss_v2::design(&dw.einsum);
    let space = sparseloop_mapping::Mapspace::all_temporal(&dw.einsum, &dp.arch);
    let (_, eval) = dp.search(&dw, &space).expect("depthwise maps");
    assert!(eval.cycles > 0.0);
}

#[test]
fn engine_objectives_are_consistent() {
    let layer = spmspm(16, 16, 16, 0.3, 0.3);
    let dp = fig1::coordinate_list_design(&layer.einsum);
    let workload = Workload::new(layer.einsum.clone(), layer.densities.clone());
    let model = Model::new(workload, dp.arch.clone(), SafSpec::dense());
    let by_lat = model.search_default(Mapper::Exhaustive { limit: 500 }, Objective::Latency);
    let by_edp = model.search_default(Mapper::Exhaustive { limit: 500 }, Objective::Edp);
    let (l, e) = (by_lat.unwrap().1, by_edp.unwrap().1);
    assert!(l.cycles <= e.cycles + 1e-9, "latency winner is fastest");
    assert!(e.edp <= l.edp + 1e-9, "EDP winner has best EDP");
}

#[test]
fn banded_scientific_workload_end_to_end() {
    // Table 4's banded model: a scientific-matrix spMspM on the Fig 17
    // hierarchical-skip design — coordinate-dependent density flowing
    // through all three modeling steps.
    use sparseloop_density::DensityModelSpec;
    use sparseloop_designs::fig17::{design, mapping, Dataflow, SafChoice};
    use sparseloop_workloads::Layer;

    let einsum = sparseloop_tensor::einsum::Einsum::matmul(256, 256, 256);
    let layer = Layer {
        name: "banded_solver".into(),
        einsum: einsum.clone(),
        densities: vec![
            DensityModelSpec::Banded {
                half_width: 4,
                fill: 0.9,
            },
            DensityModelSpec::Banded {
                half_width: 4,
                fill: 0.9,
            },
            DensityModelSpec::Dense,
        ],
    };
    let dp = design(&einsum, Dataflow::ReuseAz, SafChoice::HierarchicalSkip);
    let eval = dp
        .evaluate(&layer, &mapping(&einsum, Dataflow::ReuseAz))
        .expect("banded workload evaluates");
    // band density ~ 9*0.9/256 ≈ 3%: hierarchical skipping must remove
    // the overwhelming majority of computes
    assert!(eval.sparse.compute.ops.actual < 0.02 * eval.dense.computes);
    assert!(eval.cycles >= 1.0);

    // dense-band comparison: narrower band -> strictly less work
    let wide = Layer {
        densities: vec![
            DensityModelSpec::Banded {
                half_width: 32,
                fill: 0.9,
            },
            DensityModelSpec::Banded {
                half_width: 32,
                fill: 0.9,
            },
            DensityModelSpec::Dense,
        ],
        ..layer.clone()
    };
    let wide_eval = dp
        .evaluate(&wide, &mapping(&einsum, Dataflow::ReuseAz))
        .expect("wide band evaluates");
    assert!(wide_eval.sparse.compute.ops.actual > eval.sparse.compute.ops.actual);
}
