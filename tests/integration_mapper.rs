//! Mapper integration: searching mapspaces through the full model.

use sparseloop_core::{Model, Objective, Workload};
use sparseloop_designs::fig1;
use sparseloop_mapping::{Mapper, Mapspace};
use sparseloop_tensor::einsum::DimId;
use sparseloop_workloads::spmspm;

#[test]
fn searched_mapping_beats_naive_mapping() {
    let layer = spmspm(32, 32, 32, 0.25, 0.25);
    let dp = fig1::coordinate_list_design(&layer.einsum);
    let model = Model::new(
        Workload::new(layer.einsum.clone(), layer.densities.clone()),
        dp.arch.clone(),
        dp.safs.clone(),
    );
    // naive: everything in one big innermost nest
    let naive = sparseloop_mapping::MappingBuilder::new(2, 3)
        .temporal(1, DimId(0), 32)
        .temporal(1, DimId(1), 32)
        .temporal(1, DimId(2), 32)
        .build();
    let naive_eval = model.evaluate(&naive);
    let space =
        Mapspace::all_temporal(&layer.einsum, &dp.arch).with_spatial_dims(1, vec![DimId(1)]);
    let (_, best) = model
        .search(
            &space,
            Mapper::Hybrid {
                enumerate: 512,
                samples: 256,
                seed: 7,
                sampling: sparseloop_mapping::SampleStrategy::Uniform,
            },
            Objective::Edp,
        )
        .expect("search finds a mapping");
    if let Ok(n) = naive_eval {
        assert!(
            best.edp <= n.edp * 1.0001,
            "search should not lose to naive"
        );
    }
}

#[test]
fn capacity_constraints_prune_candidates() {
    // a tiny buffer invalidates large tiles; the mapper must still find
    // something valid (or correctly report nothing)
    let layer = spmspm(64, 64, 64, 1.0, 1.0);
    let arch = sparseloop_arch::ArchitectureBuilder::new("tiny")
        .level(
            sparseloop_arch::StorageLevel::new("DRAM")
                .with_class(sparseloop_arch::ComponentClass::Dram),
        )
        .level(sparseloop_arch::StorageLevel::new("Buf").with_capacity(512))
        .compute(sparseloop_arch::ComputeSpec::new("MAC", 1))
        .build()
        .unwrap();
    let model = Model::new(
        Workload::new(layer.einsum.clone(), layer.densities.clone()),
        arch,
        sparseloop_core::SafSpec::dense(),
    );
    if let Some((mapping, eval)) = model.search_default(
        Mapper::Hybrid {
            enumerate: 1024,
            samples: 512,
            seed: 3,
            sampling: sparseloop_mapping::SampleStrategy::Uniform,
        },
        Objective::Edp,
    ) {
        // whatever wins must actually fit
        assert!(eval.uarch.valid);
        let lvl = &eval.uarch.levels[1];
        assert!(lvl.occupancy_words <= 512.0 + 1e-9);
        let _ = mapping;
    }
}

#[test]
fn random_and_exhaustive_agree_on_small_spaces() {
    let layer = spmspm(8, 8, 8, 0.5, 0.5);
    let dp = fig1::bitmask_design(&layer.einsum);
    let model = Model::new(
        Workload::new(layer.einsum.clone(), layer.densities.clone()),
        dp.arch.clone(),
        dp.safs.clone(),
    );
    let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
    let ex = model
        .search(
            &space,
            Mapper::Exhaustive { limit: 100_000 },
            Objective::Edp,
        )
        .unwrap()
        .1;
    let rnd = model
        .search(
            &space,
            Mapper::Random {
                samples: 4000,
                seed: 9,
            },
            Objective::Edp,
        )
        .unwrap()
        .1;
    // random sampling should get within 2x of the optimum on this space
    assert!(rnd.edp <= ex.edp * 2.0);
    assert!(ex.edp <= rnd.edp * 1.0001);
}
