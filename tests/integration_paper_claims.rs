//! Locks in the paper-level qualitative results the reproduction must
//! preserve: Fig 1's crossover, STC's exact 2x, Fig 17's co-design
//! insights, and gating-vs-skipping semantics.

use sparseloop_density::DensityModelSpec;
use sparseloop_designs::common::matmul_mapping_2level;
use sparseloop_designs::fig17::{design as f17design, mapping as f17mapping, Dataflow, SafChoice};
use sparseloop_designs::{fig1, stc};
use sparseloop_tensor::einsum::Einsum;
use sparseloop_workloads::{spmspm, Layer};

#[test]
fn fig1_crossover_in_energy_efficiency() {
    // sparse regime: coordinate list wins EDP; dense regime: bitmask has
    // better energy. (Section 2.2's motivating observation.)
    let sparse = spmspm(64, 64, 64, 0.1, 0.1);
    let m = matmul_mapping_2level(&sparse.einsum, 16, 8);
    let bm_s = fig1::bitmask_design(&sparse.einsum)
        .evaluate(&sparse, &m)
        .unwrap();
    let cl_s = fig1::coordinate_list_design(&sparse.einsum)
        .evaluate(&sparse, &m)
        .unwrap();
    assert!(cl_s.edp < bm_s.edp, "coordinate list wins when sparse");

    let dense = spmspm(64, 64, 64, 0.95, 0.95);
    let bm_d = fig1::bitmask_design(&dense.einsum)
        .evaluate(&dense, &m)
        .unwrap();
    let cl_d = fig1::coordinate_list_design(&dense.einsum)
        .evaluate(&dense, &m)
        .unwrap();
    assert!(
        bm_d.energy_pj < cl_d.energy_pj,
        "bitmask more efficient when dense"
    );
}

#[test]
fn stc_two_four_speedup_is_exact() {
    // §6.3.5: structured sparsity gives deterministic behavior -> 100%
    // accuracy on the 2x speedup.
    let e = Einsum::matmul(64, 64, 64);
    let mk = |w| Layer {
        name: "l".into(),
        einsum: e.clone(),
        densities: vec![w, DensityModelSpec::Dense, DensityModelSpec::Dense],
    };
    let dp = stc::stc(&e);
    let m = stc::mapping(&e);
    let s = dp
        .evaluate(
            &mk(DensityModelSpec::FixedStructured {
                n: 2,
                m: 4,
                axis: 1,
            }),
            &m,
        )
        .unwrap();
    let d = dp.evaluate(&mk(DensityModelSpec::Dense), &m).unwrap();
    assert!((d.uarch.compute_cycles / s.uarch.compute_cycles - 2.0).abs() < 1e-9);
}

#[test]
fn fig17_best_design_depends_on_density() {
    let edp = |df, saf, d| {
        let l = spmspm(256, 256, 256, d, d);
        f17design(&l.einsum, df, saf)
            .evaluate(&l, &f17mapping(&l.einsum, df))
            .unwrap()
            .edp
    };
    // hyper-sparse: hierarchical off-chip skipping with streamed B wins
    assert!(
        edp(Dataflow::ReuseAz, SafChoice::HierarchicalSkip, 0.001)
            < edp(Dataflow::ReuseAbz, SafChoice::InnermostSkip, 0.001)
    );
    // NN densities: on-chip reuse wins
    assert!(
        edp(Dataflow::ReuseAbz, SafChoice::InnermostSkip, 0.25)
            < edp(Dataflow::ReuseAz, SafChoice::HierarchicalSkip, 0.25)
    );
}

#[test]
fn fig17_more_safs_is_not_always_better() {
    // ReuseABZ.HierarchicalSkip combines every saving feature yet never
    // wins: the reuse dataflow starves the off-chip intersection.
    for d in [0.001, 0.01, 0.1, 0.5] {
        let l = spmspm(256, 256, 256, d, d);
        let abz_h = f17design(&l.einsum, Dataflow::ReuseAbz, SafChoice::HierarchicalSkip)
            .evaluate(&l, &f17mapping(&l.einsum, Dataflow::ReuseAbz))
            .unwrap()
            .edp;
        let others = [
            (Dataflow::ReuseAbz, SafChoice::InnermostSkip),
            (Dataflow::ReuseAz, SafChoice::InnermostSkip),
            (Dataflow::ReuseAz, SafChoice::HierarchicalSkip),
        ]
        .into_iter()
        .map(|(df, saf)| {
            f17design(&l.einsum, df, saf)
                .evaluate(&l, &f17mapping(&l.einsum, df))
                .unwrap()
                .edp
        })
        .fold(f64::INFINITY, f64::min);
        assert!(abz_h >= others * 0.999, "never strictly best at d={d}");
    }
}

#[test]
fn gating_saves_energy_only_skipping_saves_both() {
    // The taxonomy's defining distinction (§3.1.2 / §3.1.3).
    let l = spmspm(32, 32, 32, 0.2, 0.2);
    let m = matmul_mapping_2level(&l.einsum, 16, 4);
    let gate = fig1::bitmask_design(&l.einsum).evaluate(&l, &m).unwrap();
    let skip = fig1::coordinate_list_design(&l.einsum)
        .evaluate(&l, &m)
        .unwrap();
    let dense_l = spmspm(32, 32, 32, 1.0, 1.0);
    let dense = fig1::bitmask_design(&dense_l.einsum)
        .evaluate(&dense_l, &m)
        .unwrap();
    assert!((gate.cycles - dense.cycles).abs() / dense.cycles < 0.05);
    assert!(gate.energy_pj < dense.energy_pj);
    assert!(skip.cycles < 0.5 * dense.cycles);
    assert!(skip.energy_pj < dense.energy_pj);
}
