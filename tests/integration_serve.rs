//! Serving-layer integration: results that flow through the
//! queue-driven service — sharded search, shared long-lived session,
//! concurrent workers — must be bit-identical to direct
//! `search_parallel`, and the session recycling policy must actually
//! bound the intern maps.

use sparseloop_core::{EvalJob, EvalSession, JobPlan, Model, Objective, Workload};
use sparseloop_designs::{MappingPolicy, ScenarioRegistry};
use sparseloop_mapping::{Mapper, Mapspace};
use sparseloop_serve::{EvalService, ServeConfig, ServeRequest, Ticket};
use sparseloop_workloads::spmspm;

/// Debug-mode scenario subset: small enough to keep `cargo test` fast,
/// covering fixed mappings (fig1, table7) and hybrid searches (table6).
/// The full registry is parity-checked in release by `serve_smoke`.
const SCENARIOS: [&str; 3] = [
    "fig1_format_tradeoff",
    "table6_validation_summary",
    "table7_eyeriss_rlc",
];

fn search_job(size: u64, density: f64, limit: usize) -> EvalJob {
    let layer = spmspm(size, size, size, density, density);
    let dp = sparseloop_designs::fig1::coordinate_list_design(&layer.einsum);
    let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
    EvalJob {
        workload: Workload::new(layer.einsum.clone(), layer.densities.clone()),
        arch: dp.arch.clone(),
        safs: dp.safs.clone(),
        plan: JobPlan::Search {
            space,
            mapper: Mapper::Exhaustive { limit },
            objective: Objective::Edp,
        },
    }
}

#[test]
fn search_sharded_matches_search_parallel_for_scenario_experiments() {
    // direct API parity on real registry experiments, at several shard
    // counts — including experiments whose mapper limit truncates the
    // space (the census path)
    let registry = ScenarioRegistry::standard();
    for name in SCENARIOS {
        let scenario = registry.expect(name);
        for exp in scenario.experiments().iter().take(4) {
            let MappingPolicy::Search {
                space,
                mapper,
                objective,
            } = &exp.policy
            else {
                continue;
            };
            let job = exp.job();
            let model = Model::new(job.workload, job.arch, job.safs);
            let reference = model.search_parallel_with_stats(space, *mapper, *objective, Some(2));
            for shards in [1, 2, 3, 7] {
                let (got, stats) = model.search_sharded_counted(space, *mapper, *objective, shards);
                match (&got, &reference) {
                    (Some((mapping, eval)), Some((ref_mapping, ref_eval, ref_stats))) => {
                        assert_eq!(mapping, ref_mapping, "{name}/{} shards={shards}", exp.label);
                        assert_eq!(eval.edp, ref_eval.edp, "{name}/{}", exp.label);
                        assert_eq!(eval.cycles, ref_eval.cycles, "{name}/{}", exp.label);
                        assert_eq!(eval.energy_pj, ref_eval.energy_pj, "{name}/{}", exp.label);
                        assert_eq!(&stats, ref_stats, "{name}/{} shards={shards}", exp.label);
                    }
                    (None, None) => {}
                    other => panic!(
                        "sharded/parallel disagree on {name}/{}: {other:?}",
                        exp.label
                    ),
                }
            }
        }
    }
}

#[test]
fn served_scenarios_match_direct_run_across_workers_and_shards() {
    let registry = ScenarioRegistry::standard();
    let session = EvalSession::new();
    let reference: Vec<_> = SCENARIOS
        .iter()
        .map(|name| registry.expect(name).run(&session, Some(2)))
        .collect();
    for (workers, shards) in [(2, 2), (3, 3)] {
        let service = EvalService::start(
            ServeConfig::default()
                .with_workers(workers)
                .with_shards(shards),
        );
        let tickets: Vec<Ticket> = SCENARIOS
            .iter()
            .map(|name| service.submit_scenario(*name).unwrap())
            .collect();
        for (ticket, direct) in tickets.into_iter().zip(&reference) {
            let reply = ticket.wait().unwrap().into_scenario();
            assert_eq!(reply.results.len(), direct.results.len());
            for (label, (served, reference)) in reply
                .labels
                .iter()
                .zip(reply.results.iter().zip(&direct.results))
            {
                let (served, reference) = (served.as_ref().unwrap(), reference.as_ref().unwrap());
                assert_eq!(
                    served.mapping, reference.mapping,
                    "{label} at {workers}w/{shards}s"
                );
                assert_eq!(served.eval.edp, reference.eval.edp, "{label}");
                assert_eq!(served.eval.cycles, reference.eval.cycles, "{label}");
                assert_eq!(served.eval.energy_pj, reference.eval.energy_pj, "{label}");
                assert_eq!(served.stats, reference.stats, "{label}");
            }
        }
        service.shutdown();
    }
}

#[test]
fn recycling_bounds_intern_slots_across_3x_budget_distinct_workloads() {
    // how many slots one of these jobs interns into a fresh session
    let per_job_slots = {
        let session = EvalSession::new();
        session
            .search_batch(&[search_job(8, 0.314, 200)], None)
            .pop()
            .unwrap()
            .unwrap();
        let s = session.stats();
        s.density_models + s.format_slots
    };
    assert!(per_job_slots > 0, "the probe job must intern something");

    let budget = 3 * per_job_slots;
    let distinct = 3 * budget; // >= 3x budget distinct workloads
    let service = EvalService::start(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(8)
            .with_recycle_slot_budget(budget),
    );
    for i in 0..distinct {
        // a unique density per job: every workload interns fresh slots
        let d = 0.05 + 0.9 * (i as f64) / (distinct as f64);
        let ticket = service
            .submit_blocking(ServeRequest::Job(Box::new(search_job(8, d, 200))))
            .unwrap();
        ticket.wait().unwrap().into_job().unwrap();
    }
    let stats = service.shutdown();
    assert!(
        stats.recycles >= 2,
        "{distinct} distinct workloads against a {budget}-slot budget recycled only {} times",
        stats.recycles
    );
    // the recycle check runs after each request, so the high-water mark
    // can exceed the budget by at most the batch of jobs in flight —
    // with 2 workers, two jobs' worth of interning
    assert!(
        stats.peak_slots < (budget + 2 * per_job_slots) as u64,
        "peak {} slots vs budget {budget} (+{per_job_slots}/job)",
        stats.peak_slots
    );
    assert!(
        stats.session_slots <= budget + 2 * per_job_slots,
        "live session kept {} slots",
        stats.session_slots
    );

    // contrast: without recycling the same stream grows without bound
    let unbounded = EvalService::start(ServeConfig::default().with_workers(2));
    for i in 0..distinct {
        let d = 0.05 + 0.9 * (i as f64) / (distinct as f64);
        let ticket = unbounded
            .submit_blocking(ServeRequest::Job(Box::new(search_job(8, d, 200))))
            .unwrap();
        ticket.wait().unwrap().into_job().unwrap();
    }
    let unbounded_stats = unbounded.shutdown();
    assert!(
        unbounded_stats.session_slots > budget,
        "without a budget the session should outgrow it ({} slots)",
        unbounded_stats.session_slots
    );
    assert_eq!(unbounded_stats.recycles, 0);
}

#[test]
fn service_backpressure_and_recovery_roundtrip() {
    // a queue-capacity service refuses overflow but keeps serving what
    // it admitted
    let service = EvalService::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
    );
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for i in 0..12 {
        match service.submit_job(search_job(8, 0.1 + 0.05 * i as f64, 2000)) {
            Ok(t) => accepted.push(t),
            Err(sparseloop_serve::SubmitError::QueueFull { depth, capacity }) => {
                assert_eq!(capacity, 2);
                assert_eq!(depth, 2, "refusal must report a full queue");
                rejected += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert_eq!(accepted.len() + rejected, 12);
    for t in accepted {
        t.wait().unwrap().into_job().unwrap();
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.completed, stats.submitted);
}
