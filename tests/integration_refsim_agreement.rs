//! Cross-validation between the statistical model and the actual-data
//! reference simulator — the repository's stand-in for the paper's
//! Table 6 validations.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparseloop_core::{dataflow, sparse, SafSpec, Workload};
use sparseloop_density::{ActualData, DensityModelSpec};
use sparseloop_mapping::MappingBuilder;
use sparseloop_refsim::RefSim;
use sparseloop_tensor::einsum::{DimId, Einsum, TensorKind};
use sparseloop_tensor::{point::Shape, SparseTensor};
use std::sync::Arc;

fn arch() -> sparseloop_arch::Architecture {
    sparseloop_arch::ArchitectureBuilder::new("t")
        .level(
            sparseloop_arch::StorageLevel::new("DRAM")
                .with_class(sparseloop_arch::ComponentClass::Dram),
        )
        .level(sparseloop_arch::StorageLevel::new("Buffer").with_capacity(65536))
        .compute(sparseloop_arch::ComputeSpec::new("MAC", 1))
        .build()
        .unwrap()
}

fn tensors(e: &Einsum, densities: &[f64], seed: u64) -> Vec<SparseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    e.tensors()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let shape = Shape::new(e.tensor_shape(sparseloop_tensor::einsum::TensorId(i)));
            if spec.kind == TensorKind::Output {
                SparseTensor::from_triplets(shape, &[])
            } else {
                SparseTensor::gen_uniform(shape, densities[i], &mut rng)
            }
        })
        .collect()
}

fn mapping(e: &Einsum) -> sparseloop_mapping::Mapping {
    let (m, n, k) = (DimId(0), DimId(1), DimId(2));
    MappingBuilder::new(2, 3)
        .temporal(0, m, e.bound(m))
        .temporal(1, n, e.bound(n))
        .temporal(1, k, e.bound(k))
        .build()
}

#[test]
fn actual_data_model_is_exact_on_compute() {
    // With the actual-data density model, the analytical compute count
    // must match the simulator exactly (§6.3.2's "accounts for the exact
    // intersections").
    let e = Einsum::matmul(12, 12, 12);
    let a = e.tensor_id("A").unwrap();
    // B dense so the check isolates A's (exact) marginal statistics;
    // joint-operand counts are only approximate under independence.
    let ts = tensors(&e, &[0.3, 1.0, 1.0], 21);
    let safs = SafSpec::dense()
        .with_skip(1, a, vec![a])
        .with_skip_compute();
    let arch = arch();
    let map = mapping(&e);
    let sim = RefSim::new(&e, &arch, &map, &safs, &ts).run();

    let w = Workload::with_models(
        e.clone(),
        ts.iter()
            .map(|t| {
                Arc::new(ActualData::new(t.clone())) as Arc<dyn sparseloop_density::DensityModel>
            })
            .collect(),
    );
    let d = dataflow::analyze(&e, &map);
    let s = sparse::analyze(&w, &d, &safs);
    // per-element self skipping depends only on A's density: exact
    assert!(
        (s.compute.ops.actual - sim.computes_actual).abs() / sim.computes_actual < 1e-3,
        "actual-data model {} vs sim {}",
        s.compute.ops.actual,
        sim.computes_actual
    );
}

#[test]
fn uniform_model_error_is_small_on_uniform_data() {
    // Fig 11's claim: statistical counts track uniform data closely.
    let e = Einsum::matmul(16, 16, 16);
    let a = e.tensor_id("A").unwrap();
    let b = e.tensor_id("B").unwrap();
    let ts = tensors(&e, &[0.25, 0.5, 1.0], 33);
    let safs = SafSpec::dense()
        .with_skip(1, b, vec![a])
        .with_skip_compute();
    let arch = arch();
    let map = mapping(&e);
    let sim = RefSim::new(&e, &arch, &map, &safs, &ts).run();
    let w = Workload::new(
        e.clone(),
        vec![
            DensityModelSpec::Uniform {
                density: ts[0].density(),
            },
            DensityModelSpec::Uniform {
                density: ts[1].density(),
            },
            DensityModelSpec::Dense,
        ],
    );
    let d = dataflow::analyze(&e, &map);
    let s = sparse::analyze(&w, &d, &safs);
    let rel = (s.compute.ops.skipped - sim.computes_skipped).abs() / sim.computes_skipped.max(1.0);
    assert!(rel < 0.02, "relative error {rel}");
}

#[test]
fn independence_approximation_error_direction() {
    // §6.3.2: with identical nonzero locations in both operands, the
    // exact intersection survival equals d (not d^2) — the uniform model
    // underestimates effectual computes. Reproduce that error source.
    let e = Einsum::matmul(8, 8, 8);
    let shape = Shape::new(vec![8, 8]);
    let mut rng = StdRng::seed_from_u64(5);
    let a_t = SparseTensor::gen_uniform(shape.clone(), 0.4, &mut rng);
    // B has nonzeros exactly where A^T does (worst case for independence)
    let b_triplets: Vec<(Vec<u64>, f64)> = a_t
        .iter()
        .map(|(p, _)| (vec![p.coord(1), p.coord(0)], 1.0))
        .collect();
    let b_t = SparseTensor::from_triplets(shape.clone(), &b_triplets);
    let z_t = SparseTensor::from_triplets(shape, &[]);
    let a = e.tensor_id("A").unwrap();
    let b = e.tensor_id("B").unwrap();
    let safs = SafSpec::dense()
        .with_skip(1, a, vec![a])
        .with_skip(1, b, vec![b])
        .with_skip_compute();
    let arch = arch();
    let map = mapping(&e);
    let ts = vec![a_t, b_t, z_t];
    let sim = RefSim::new(&e, &arch, &map, &safs, &ts).run();
    let w = Workload::new(
        e.clone(),
        vec![
            DensityModelSpec::Uniform { density: 0.4 },
            DensityModelSpec::Uniform { density: 0.4 },
            DensityModelSpec::Dense,
        ],
    );
    let d = dataflow::analyze(&e, &map);
    let s = sparse::analyze(&w, &d, &safs);
    // correlated data: sim executes more effectual computes than the
    // independence approximation predicts
    assert!(
        sim.computes_actual > s.compute.ops.actual,
        "sim {} should exceed model {} on correlated data",
        sim.computes_actual,
        s.compute.ops.actual
    );
}

#[test]
fn dense_workloads_match_exactly() {
    let e = Einsum::matmul(10, 10, 10);
    let ts = tensors(&e, &[1.0, 1.0, 1.0], 2);
    let safs = SafSpec::dense();
    let arch = arch();
    let map = mapping(&e);
    let sim = RefSim::new(&e, &arch, &map, &safs, &ts).run();
    let w = Workload::dense(e.clone());
    let d = dataflow::analyze(&e, &map);
    let s = sparse::analyze(&w, &d, &safs);
    assert_eq!(sim.computes_actual, s.compute.ops.actual);
    for entry in &s.entries {
        if e.tensor(entry.tensor).kind == TensorKind::Input {
            let sc = sim.level(entry.tensor, entry.level);
            assert!(
                (sc.reads_total() - entry.reads.total()).abs() < 1e-6,
                "dense reads equal at t{} L{}",
                entry.tensor.0,
                entry.level
            );
        }
    }
}
