//! The paper's Fig. 3/4 walkthrough: a sparse dot product processed with
//! different SAF combinations, showing the actual/gated/skipped action
//! breakdown each SAF produces.
//!
//! Run with: `cargo run -p sparseloop --example saf_walkthrough`

use sparseloop_arch::{ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel};
use sparseloop_core::{Model, SafSpec, Workload};
use sparseloop_density::DensityModelSpec;
use sparseloop_mapping::MappingBuilder;
use sparseloop_tensor::einsum::{DimId, Einsum};

fn main() {
    // z = sum_k a[k]*b[k], both vectors 50% dense (Fig 3a's flavor).
    let einsum = Einsum::dot_product(6);
    let a = einsum.tensor_id("A").expect("A");
    let b = einsum.tensor_id("B").expect("B");
    let workload = Workload::new(
        einsum,
        vec![
            DensityModelSpec::Uniform { density: 0.5 },
            DensityModelSpec::Uniform { density: 0.5 },
            DensityModelSpec::Dense,
        ],
    );
    let arch = ArchitectureBuilder::new("dot")
        .level(StorageLevel::new("Mem").with_class(ComponentClass::Dram))
        .compute(ComputeSpec::new("MAC", 1))
        .build()
        .expect("valid arch");
    let mapping = MappingBuilder::new(1, 3).temporal(0, DimId(0), 6).build();

    let variants: [(&str, SafSpec); 4] = [
        ("baseline (no SAFs)", SafSpec::dense()),
        ("Gate Compute", SafSpec::dense().with_gate_compute()),
        (
            "Gate B <- A",
            SafSpec::dense()
                .with_gate(0, b, vec![a])
                .with_gate_compute(),
        ),
        (
            "Skip B <- A",
            SafSpec::dense()
                .with_skip(0, b, vec![a])
                .with_gate_compute(),
        ),
    ];
    println!(
        "{:<22} {:>21} {:>27}",
        "SAFs", "compute a/g/s", "B reads a/g/s"
    );
    for (name, safs) in variants {
        let model = Model::new(workload.clone(), arch.clone(), safs);
        let eval = model.evaluate(&mapping).expect("valid mapping");
        let c = eval.sparse.compute.ops;
        let br = eval.sparse.get(b, 0).expect("B stored at Mem").reads;
        println!(
            "{:<22} {:>6.1}/{:>6.1}/{:>6.1} {:>8.1}/{:>6.1}/{:>6.1}",
            name, c.actual, c.gated, c.skipped, br.actual, br.gated, br.skipped
        );
    }
    println!("\npaper: gating saves energy only; skipping saves energy and the cycles;");
    println!("leader-follower elimination depends on the leader's sparsity (Fig 3b).");
}
