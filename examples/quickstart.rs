//! Quickstart: model a small sparse matmul accelerator end to end.
//!
//! Builds the Fig. 6-style setup from the paper — a two-level
//! architecture running `Z = A·B` with a 25%-dense A — adds a skipping
//! SAF, and prints the three-step evaluation.
//!
//! Run with: `cargo run -p sparseloop --example quickstart`

use sparseloop_arch::{ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel};
use sparseloop_core::{Model, SafSpec, Workload};
use sparseloop_density::DensityModelSpec;
use sparseloop_format::TensorFormat;
use sparseloop_mapping::MappingBuilder;
use sparseloop_tensor::einsum::{DimId, Einsum};

fn main() {
    // Workload: Z[m,n] = sum_k A[m,k] B[k,n]; A is 25% dense, uniform.
    let einsum = Einsum::matmul(16, 16, 16);
    let a = einsum.tensor_id("A").expect("matmul has A");
    let b = einsum.tensor_id("B").expect("matmul has B");
    let workload = Workload::new(
        einsum,
        vec![
            DensityModelSpec::Uniform { density: 0.25 },
            DensityModelSpec::Dense,
            DensityModelSpec::Dense,
        ],
    );

    // Architecture: DRAM over a 4-instance buffer feeding 4 MACs.
    let arch = ArchitectureBuilder::new("quickstart")
        .level(
            StorageLevel::new("BackingStorage")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(4.0),
        )
        .level(
            StorageLevel::new("Buffer")
                .with_capacity(1024)
                .with_bandwidth(16.0),
        )
        .compute(ComputeSpec::new("MAC", 4))
        .build()
        .expect("valid architecture");

    // SAFs: compress A as a coordinate list and skip its zeros + the
    // computes they would feed (Fig. 4's combination).
    let safs = SafSpec::dense()
        .with_format(0, a, TensorFormat::coo(2))
        .with_format(1, a, TensorFormat::coo(2))
        .with_skip(1, a, vec![a])
        .with_skip(1, b, vec![a]) // Skip B <- A
        .with_skip_compute();

    // Mapping: Fig. 6's loop nest shape.
    let (m, n, k) = (DimId(0), DimId(1), DimId(2));
    let mapping = MappingBuilder::new(2, 3)
        .temporal(0, m, 16)
        .spatial(1, n, 4)
        .temporal(1, n, 4)
        .temporal(1, k, 16)
        .build();

    let model = Model::new(workload, arch, safs);
    let eval = model.evaluate(&mapping).expect("mapping is valid");

    println!("cycles        : {:.0}", eval.cycles);
    println!("energy        : {:.1} pJ", eval.energy_pj);
    println!("EDP           : {:.3e}", eval.edp);
    println!("utilization   : {:.0}%", eval.utilization * 100.0);
    println!(
        "computes      : {:.0} actual / {:.0} skipped (of {:.0} dense)",
        eval.sparse.compute.ops.actual, eval.sparse.compute.ops.skipped, eval.dense.computes
    );
    for lvl in &eval.uarch.levels {
        println!(
            "{:>16}: {:>10.0} cycle-words, {:>12.1} pJ",
            lvl.name, lvl.cycle_words, lvl.energy_pj
        );
    }
}
