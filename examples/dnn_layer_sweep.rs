//! Evaluate an Eyeriss-like design over AlexNet's conv layers with
//! mapper search per layer, aggregating network-level energy and cycles
//! (the paper's per-layer DNN evaluation methodology, §6.1).
//!
//! Run with: `cargo run --release -p sparseloop --example dnn_layer_sweep`

use sparseloop_designs::common::conv_mapspace;
use sparseloop_designs::eyeriss;
use sparseloop_workloads::alexnet;

fn main() {
    let net = alexnet();
    let mut total_cycles = 0.0;
    let mut total_energy = 0.0;
    println!(
        "{:<8} {:>14} {:>12} {:>14}",
        "layer", "MACs", "cycles", "energy(pJ)"
    );
    for layer in &net.layers {
        let dp = eyeriss::design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 2);
        match dp.search(layer, &space) {
            Some((_, eval)) => {
                total_cycles += eval.cycles;
                total_energy += eval.energy_pj;
                println!(
                    "{:<8} {:>14} {:>12.0} {:>14.3e}",
                    layer.name,
                    layer.computes(),
                    eval.cycles,
                    eval.energy_pj
                );
            }
            None => println!("{:<8} no valid mapping found", layer.name),
        }
    }
    println!(
        "\n{}: {:.3e} cycles, {:.3e} pJ total",
        net.name, total_cycles, total_energy
    );
}
