//! Mapspace exploration: how much does the mapping matter? Search a
//! constrained mapspace and compare the best, median and worst valid
//! mappings by EDP (the reason the paper insists on fast models:
//! characterizing a design fairly requires searching its mapspace).
//!
//! Run with: `cargo run -p sparseloop --example mapper_search`

use sparseloop_core::{Model, Objective, Workload};
use sparseloop_designs::fig1;
use sparseloop_mapping::{Mapper, Mapspace};
use sparseloop_tensor::einsum::DimId;
use sparseloop_workloads::spmspm;

fn main() {
    let layer = spmspm(32, 32, 32, 0.2, 0.2);
    let dp = fig1::coordinate_list_design(&layer.einsum);
    let workload = Workload::new(layer.einsum.clone(), layer.densities.clone());
    let model = Model::new(workload, dp.arch.clone(), dp.safs.clone());
    let space =
        Mapspace::all_temporal(&layer.einsum, &dp.arch).with_spatial_dims(1, vec![DimId(1)]);

    // collect every valid candidate's EDP
    let mut edps = Vec::new();
    Mapper::Exhaustive { limit: 3000 }.search(&space, |m| {
        let v = model.evaluate(m).ok().map(|e| e.edp);
        if let Some(x) = v {
            edps.push(x);
        }
        v
    });
    edps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(!edps.is_empty(), "mapspace should contain valid mappings");

    // the production path: streaming candidates through the capacity
    // precheck, fanned out over all cores, deterministically reduced
    let (best, eval, stats) = model
        .search_parallel_with_stats(
            &space,
            Mapper::Exhaustive { limit: 3000 },
            Objective::Edp,
            None,
        )
        .expect("search succeeds");
    let (seq_best, seq_eval) = model
        .search(&space, Mapper::Exhaustive { limit: 3000 }, Objective::Edp)
        .expect("search succeeds");
    assert_eq!(best, seq_best, "parallel and sequential winners agree");
    assert_eq!(eval.edp, seq_eval.edp);
    println!("candidates generated : {}", stats.generated);
    println!("capacity-prechecked  : {} pruned", stats.pruned);
    println!("fully evaluated      : {}", stats.evaluated);
    println!("candidates evaluated : {}", edps.len());
    println!("best EDP             : {:.3e}", edps[0]);
    println!("median EDP           : {:.3e}", edps[edps.len() / 2]);
    println!("worst EDP            : {:.3e}", edps[edps.len() - 1]);
    println!(
        "best/worst spread    : {:.1}x",
        edps[edps.len() - 1] / edps[0]
    );
    println!("\nbest mapping:\n{}", best.render(&layer.einsum, &dp.arch));
    println!("cycles {:.0}, energy {:.1} pJ", eval.cycles, eval.energy_pj);
}
