//! Compare two sparse accelerator designs across workload densities —
//! the Fig. 1 experiment as a library use case.
//!
//! Run with: `cargo run -p sparseloop --example design_comparison`

use sparseloop_designs::common::matmul_mapping_2level;
use sparseloop_designs::fig1;
use sparseloop_workloads::spmspm;

fn main() {
    println!("density  bitmask(cyc/pJ)     coordlist(cyc/pJ)    winner(EDP)");
    for d in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let layer = spmspm(32, 32, 32, d, d);
        let mapping = matmul_mapping_2level(&layer.einsum, 16, 4);
        let bm = fig1::bitmask_design(&layer.einsum)
            .evaluate(&layer, &mapping)
            .expect("valid");
        let cl = fig1::coordinate_list_design(&layer.einsum)
            .evaluate(&layer, &mapping)
            .expect("valid");
        let winner = if bm.edp < cl.edp {
            "bitmask"
        } else {
            "coordlist"
        };
        println!(
            "{d:<7}  {:>8.0} / {:>9.0}  {:>8.0} / {:>9.0}   {winner}",
            bm.cycles, bm.energy_pj, cl.cycles, cl.energy_pj
        );
    }
}
