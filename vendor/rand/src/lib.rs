//! Offline stub of `rand` (0.8-compatible API subset).
//!
//! The workspace builds hermetically, so this crate re-implements exactly
//! the surface the code uses: [`Rng::gen_range`] over half-open integer
//! ranges, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The
//! generator is xoshiro256** seeded via SplitMix64 — deterministic,
//! high-quality, and stable across platforms, which is all the seeded
//! reproducibility tests require. It is NOT the same stream as the real
//! `StdRng` (ChaCha12); only determinism, not stream identity, is relied
//! upon here.

use std::ops::Range;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform draw from a half-open integer range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A value from the type's standard distribution (`[0, 1)` for
    /// floats, full domain for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

/// Types drawable with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws from the standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types drawable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased bounded draw via Lemire-style rejection on the modulus.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // rejection zone keeps the draw unbiased
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u64, u32, usize);

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn roughly_uniform_low_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "bucket count {c} far from uniform");
        }
    }
}
