//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro over `arg in strategy` parameters,
//! integer-range and [`collection::vec`] strategies, [`any`], and the
//! `prop_assert*` macros returning [`TestCaseError`]. Cases are generated
//! from a seed derived deterministically from the test name, so failures
//! reproduce across runs. No shrinking is performed — a failing case is
//! reported with its case index and message.
//!
//! The number of cases per property defaults to [`DEFAULT_CASES`] and can
//! be raised or lowered with the `PROPTEST_CASES` environment variable.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Number of cases per property, honoring `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias kept for API compatibility with real proptest.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // modulo bias is irrelevant for test-case generation
        self.next_u64() % bound
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-domain inclusive range
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize);

/// Strategy for any value of a type (see [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        $crate::prop_assert!($left == $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in 0usize..5, c in 1u64..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(1u64..6, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for x in &v {
                prop_assert!((1..6).contains(x));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_context() {
        proptest! {
            fn failing(x in 0u64..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        failing();
    }
}
