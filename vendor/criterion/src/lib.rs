//! Offline stub of `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the criterion 0.5
//! API subset this workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], `b.iter(..)`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark warms up briefly, picks an
//! iteration count targeting ~200 ms of measurement, and reports the mean
//! time per iteration plus throughput. No statistics beyond the mean are
//! computed — enough to track relative performance across commits in a
//! hermetic environment.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    // warmup + calibration: find an iteration count worth ~200 ms
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns_per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
    let per_sec = 1e9 / ns_per_iter.max(1e-9);
    println!(
        "bench {name:<48} {:>14.1} ns/iter {:>14.2} iter/s ({iters} iters)",
        ns_per_iter, per_sec
    );
}

/// Top-level bench registry (stub of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a bench entry point running the given functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 3), &4u64, |b, &x| {
            b.iter(|| x * 2);
            total += x;
        });
        g.finish();
        // the harness invokes the closure once to calibrate and once to
        // measure
        assert_eq!(total, 8);
    }
}
