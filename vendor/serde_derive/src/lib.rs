//! Offline stub of `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the real serde proc-macros are unavailable. The model
//! never serializes anything at runtime — the derives on spec types exist
//! so the YAML front-end can be enabled later by swapping in the real
//! crates. Until then the derives expand to nothing; the `#[serde(...)]`
//! helper attributes are declared so they parse and are ignored.

use proc_macro::TokenStream;

/// Inert `#[derive(Serialize)]`: accepts (and discards) `#[serde(...)]`
/// attributes and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `#[derive(Deserialize)]`: accepts (and discards) `#[serde(...)]`
/// attributes and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
