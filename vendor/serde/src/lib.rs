//! Offline stub of the `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! derive-macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! (de)serialization is implemented; swap in the real crates when the
//! build environment has registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
