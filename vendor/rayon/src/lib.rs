//! Offline stub of `rayon`.
//!
//! The workspace builds hermetically, so this crate provides the small
//! structured-parallelism surface the mapper's parallel search needs —
//! [`scope`], [`Scope::spawn`], [`join`], and [`current_num_threads`] —
//! backed by one **persistent worker pool** instead of real rayon's
//! work-stealing deques. The pool is created lazily on first use and
//! lives for the process: repeated `scope` calls (a batch evaluation
//! session searching many small mapspaces) reuse the same OS threads
//! rather than paying a spawn/join round trip per scope. Panics in
//! spawned closures propagate out of [`scope`] like rayon's.
//!
//! Scheduling is deliberately simple: one global injector queue, one
//! condvar. While a scope drains, its *calling* thread helps execute
//! queued tasks instead of blocking, so nested scopes (a task spawning
//! its own scope) cannot deadlock the fixed-size pool and small batches
//! finish without a context switch.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Number of worker threads a parallel region should use: the machine's
/// available parallelism (1 if it cannot be queried).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A queued unit of work. Tasks are boxed `'static` closures; the
/// lifetime erasure is performed (unsafely, see [`Scope::spawn`]) by the
/// scope that owns the borrow and is justified by the scope blocking
/// until its task count drains to zero.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool.
struct Pool {
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when a task is pushed (workers wait on this).
    work_ready: Condvar,
    /// Worker thread count (fixed at creation; read by tests asserting
    /// pool reuse).
    #[cfg_attr(not(test), allow(dead_code))]
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = current_num_threads();
        for i in 0..workers {
            thread::Builder::new()
                .name(format!("sparseloop-worker-{i}"))
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
        Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            workers,
        }
    })
}

fn worker_loop() {
    let pool = pool();
    loop {
        let task = {
            let mut queue = pool.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = pool
                    .work_ready
                    .wait(queue)
                    .expect("pool queue poisoned while waiting");
            }
        };
        task();
    }
}

/// Pops one queued task without blocking (used by draining scopes to
/// help instead of waiting).
fn try_steal() -> Option<Task> {
    pool()
        .queue
        .lock()
        .expect("pool queue poisoned")
        .pop_front()
}

fn inject(task: Task) {
    let pool = pool();
    pool.queue
        .lock()
        .expect("pool queue poisoned")
        .push_back(task);
    pool.work_ready.notify_one();
}

/// Shared completion state of one `scope` call.
///
/// Heap-allocated behind an `Arc`: every queued task owns a clone, so
/// the state (mutex + condvar) outlives any late `notify_all` even if
/// the scope's caller has already observed `pending == 0` and moved on
/// — the borrowed *environment*'s lifetime is what the drain loop
/// protects, not the state's.
#[derive(Default)]
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: Mutex<usize>,
    /// Signalled whenever a task of this scope finishes.
    changed: Condvar,
    /// First panic payload observed in a task, re-thrown by `scope`.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// A scope in which borrowed-data tasks may be spawned; all tasks finish
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    state: std::sync::Arc<ScopeState>,
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task onto the pool. The closure may borrow from the
    /// environment of the enclosing [`scope`] call and receives a scope
    /// handle for nested spawns — the same signature as real rayon's
    /// `Scope::spawn`, so swapping this stub for the real crate is a
    /// manifest-only change.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let state = std::sync::Arc::clone(&self.state);
        *state.pending.lock().expect("scope counter poisoned") += 1;
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                state: std::sync::Arc::clone(&state),
                _scope: std::marker::PhantomData,
                _env: std::marker::PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(&nested)));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                slot.get_or_insert(payload);
            }
            // decrement last: the drain loop only finishes once this
            // hits zero, which is what makes the lifetime erasure below
            // sound; the task's own Arc keeps `state` alive through the
            // notify even if the caller races ahead
            *state.pending.lock().expect("scope counter poisoned") -= 1;
            state.changed.notify_all();
        });
        // SAFETY: `scope` drains `pending` to zero before returning on
        // both the normal and the panic path (the closure runs under
        // catch_unwind), so everything `task` borrows from the caller's
        // environment strictly outlives its execution on a pool worker;
        // the ScopeState itself is Arc-owned by the task. This is the
        // same argument std::thread::scope makes, restated for a pool
        // that cannot express the lifetime in types.
        let task: Task = unsafe { std::mem::transmute(task) };
        inject(task);
    }
}

/// Blocks until `state.pending` reaches zero, helping run queued tasks
/// (this scope's or another's) instead of only sleeping. The timeout
/// bounds the window where another scope injects work that would not
/// signal this scope's condvar.
fn drain(state: &ScopeState) {
    loop {
        if *state.pending.lock().expect("scope counter poisoned") == 0 {
            break;
        }
        if let Some(task) = try_steal() {
            task();
            continue;
        }
        let guard = state.pending.lock().expect("scope counter poisoned");
        if *guard == 0 {
            break;
        }
        let _ = state
            .changed
            .wait_timeout(guard, Duration::from_millis(1))
            .expect("scope counter poisoned while waiting");
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
/// Tasks execute on the persistent pool; the calling thread helps drain
/// the queue while it waits.
///
/// # Panics
/// Panics if any spawned task panicked, or if `f` itself panicked —
/// in both cases only *after* every spawned task finished (mirroring
/// `std::thread::scope`: a panicking closure must not unwind while
/// tasks still borrow the enclosing environment).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let state = std::sync::Arc::new(ScopeState::default());
    let result = {
        let handle = Scope {
            state: std::sync::Arc::clone(&state),
            _scope: std::marker::PhantomData,
            _env: std::marker::PhantomData,
        };
        // catch a panicking closure so the drain below still runs:
        // unwinding past in-flight tasks would free the environment
        // they borrow
        catch_unwind(AssertUnwindSafe(|| f(&handle)))
    };
    drain(&state);
    let result = match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    };
    if let Some(payload) = state
        .panic
        .lock()
        .expect("scope panic slot poisoned")
        .take()
    {
        resume_unwind(payload);
    }
    result
}

/// Runs both closures and returns both results. The stub executes the
/// second on the calling thread while the first runs on the pool,
/// preserving rayon's potential-parallelism contract.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let rb = {
        let ra_ref = &mut ra;
        scope(|s| {
            s.spawn(move |_| {
                *ra_ref = Some(a());
            });
            b()
        })
    };
    (ra.expect("join closure did not run"), rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn at_least_one_thread_reported() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scopes_reuse_the_persistent_pool() {
        // Across many scopes, the same named pool workers keep serving
        // tasks. (A strict thread-count bound would be flaky here: a
        // concurrently running test's drain loop may legitimately steal
        // tasks onto its own caller thread, so only pool *participation*
        // and name-based identity are asserted.)
        let names: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
        for _ in 0..8 {
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        // small sleep so waiting pool workers (not just
                        // the helping caller) pick up a share
                        thread::sleep(Duration::from_micros(200));
                        if let Some(name) = thread::current().name() {
                            if name.starts_with("sparseloop-worker-") {
                                names.lock().unwrap().insert(name.to_string());
                            }
                        }
                    });
                }
            });
        }
        let workers_seen = names.lock().unwrap().len();
        assert!(
            workers_seen >= 1,
            "persistent pool workers must execute tasks across scopes"
        );
        assert!(
            workers_seen <= pool().workers,
            "worker names are bounded by the fixed pool size"
        );
    }

    #[test]
    fn nested_scopes_complete() {
        let counter = AtomicUsize::new(0);
        scope(|outer| {
            for _ in 0..3 {
                outer.spawn(|_| {
                    scope(|inner| {
                        for _ in 0..3 {
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn panicking_scope_closure_still_drains_its_tasks() {
        // if the closure itself panics, in-flight tasks must finish
        // before the unwind frees the environment they borrow
        let counter = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        thread::sleep(Duration::from_millis(2));
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("closure boom");
            });
        }));
        assert!(result.is_err(), "closure panic must propagate");
        assert_eq!(
            counter.load(Ordering::SeqCst),
            8,
            "all tasks ran to completion before scope unwound"
        );
    }

    #[test]
    fn join_survives_a_panicking_second_closure() {
        // join's b() runs in the scope closure; its panic must not
        // unwind past the queued a() (which writes through a borrow of
        // join's frame)
        let result = std::panic::catch_unwind(|| {
            join(
                || thread::sleep(Duration::from_millis(2)),
                || panic!("b boom"),
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn task_panics_propagate_out_of_scope() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("task boom"));
            });
        });
        assert!(result.is_err(), "scope must rethrow task panics");
        // the pool survives the panic and keeps serving scopes
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
