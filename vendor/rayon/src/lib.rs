//! Offline stub of `rayon`.
//!
//! The workspace builds hermetically, so this crate provides the small
//! structured-parallelism surface the mapper's parallel search needs —
//! [`scope`], [`Scope::spawn`], [`join`], and [`current_num_threads`] —
//! implemented directly on `std::thread::scope`. Unlike real rayon there
//! is no work-stealing pool: each `spawn` is an OS thread, so callers
//! should spawn O(num-threads) long-lived workers (which is exactly what
//! `Mapper::par_search` does), not O(items) tasks. Panics in spawned
//! closures propagate out of [`scope`] like rayon's.

use std::thread;

/// Number of worker threads a parallel region should use: the machine's
/// available parallelism (1 if it cannot be queried).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scope in which borrowed-data threads may be spawned; all threads are
/// joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker inside the scope. The closure may borrow from the
    /// environment of the enclosing [`scope`] call and receives a scope
    /// handle for nested spawns — the same signature as real rayon's
    /// `Scope::spawn`, so swapping this stub for the real crate is a
    /// manifest-only change.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned worker finished.
///
/// # Panics
/// Panics if any spawned worker panicked (mirroring `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures and returns both results. The stub executes the
/// second on the calling thread after spawning the first, preserving
/// rayon's potential-parallelism contract.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().expect("rayon::join closure panicked"), rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn at_least_one_thread_reported() {
        assert!(current_num_threads() >= 1);
    }
}
