//! Property-based tests for mappings and mapspaces.

use proptest::prelude::*;
use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
use sparseloop_mapping::{factorizations, ChangeDepth, Mapspace};
use sparseloop_tensor::einsum::{DimId, Einsum};

proptest! {
    /// Every ordered factorization multiplies back to n, and the count of
    /// factorizations into 2 parts equals the divisor count.
    #[test]
    fn factorization_products(n in 1u64..200, k in 1usize..4) {
        let fs = factorizations(n, k, None);
        prop_assert!(!fs.is_empty());
        for f in &fs {
            prop_assert_eq!(f.len(), k);
            prop_assert_eq!(f.iter().product::<u64>(), n);
        }
        if k == 2 {
            let divisors = (1..=n).filter(|d| n % d == 0).count();
            prop_assert_eq!(fs.len(), divisors);
        }
        // no duplicates
        let mut sorted = fs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), fs.len());
    }

    /// Every enumerated mapping validates against workload + architecture
    /// and factorizes each dimension exactly.
    #[test]
    fn enumerated_mappings_valid(
        m in 1u64..9, n in 1u64..9, k in 1u64..9,
        fanout in 1u64..5,
    ) {
        let e = Einsum::matmul(m, n, k);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1"))
            .compute(ComputeSpec::new("MAC", fanout))
            .build()
            .unwrap();
        let space = Mapspace::all_temporal(&e, &arch)
            .with_spatial_dims(1, vec![DimId(1)]);
        for mapping in space.enumerate(300) {
            mapping.validate(&e, &arch).unwrap();
            prop_assert!(mapping.spatial_fanout_at(1) <= fanout);
        }
    }

    /// Random samples are valid too and respect bypass directives.
    #[test]
    fn sampled_mappings_valid(
        m in 1u64..12, n in 1u64..12, k in 1u64..12,
        seed in any::<u64>(),
    ) {
        let e = Einsum::matmul(m, n, k);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1"))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let b = e.tensor_id("B").unwrap();
        let space = Mapspace::all_temporal(&e, &arch).with_bypass(1, b);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        for mapping in space.sample(20, &mut rng) {
            mapping.validate(&e, &arch).unwrap();
            prop_assert!(!mapping.keeps(1, b));
            prop_assert_eq!(mapping.storage_chain(b), vec![0]);
        }
    }

    /// Sharding is a disjoint, collectively exhaustive partition of the
    /// enumeration stream: for n in {1, 2, 3, 7}, the union of shard
    /// candidates (sorted by their globally comparable keys) equals the
    /// unsharded `iter_enumerate` sequence exactly — same set, same
    /// order, no duplicates — at output limits both above and below the
    /// space size.
    #[test]
    fn shards_disjoint_and_exhaustive(
        m in 1u64..9, n in 1u64..9, k in 1u64..9,
        fanout in 1u64..5,
        limit in 1usize..400,
    ) {
        let e = Einsum::matmul(m, n, k);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1"))
            .compute(ComputeSpec::new("MAC", fanout))
            .build()
            .unwrap();
        let space = Mapspace::all_temporal(&e, &arch)
            .with_spatial_dims(1, vec![DimId(1)]);
        let reference: Vec<_> = space.iter_enumerate(limit).collect();
        for shards in [1usize, 2, 3, 7] {
            let mut tagged: Vec<_> = Vec::new();
            for shard in space.shards(shards, limit) {
                tagged.extend(shard);
            }
            let mut keys: Vec<_> = tagged.iter().map(|(key, _)| *key).collect();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), tagged.len(), "duplicate keys at shards={}", shards);
            tagged.sort_by_key(|(key, _)| *key);
            let merged: Vec<_> = tagged.into_iter().map(|(_, mapping)| mapping).collect();
            prop_assert_eq!(&merged, &reference, "shards={} limit={}", shards, limit);
        }
    }

    /// tile_bounds_inside is monotone: deeper positions cover smaller or
    /// equal bounds per dimension.
    #[test]
    fn tile_bounds_monotone(m in 1u64..9, n in 1u64..9, k in 1u64..9) {
        let e = Einsum::matmul(m, n, k);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1"))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let space = Mapspace::all_temporal(&e, &arch);
        for mapping in space.enumerate(50) {
            let total = mapping.flattened().len();
            let mut prev = mapping.tile_bounds_inside(0, 3);
            for pos in 1..=total {
                let cur = mapping.tile_bounds_inside(pos, 3);
                for d in 0..3 {
                    prop_assert!(cur[d] <= prev[d]);
                }
                prev = cur;
            }
            // position 0 covers the full bounds
            prop_assert_eq!(mapping.tile_bounds_inside(0, 3), e.bounds());
        }
    }
}

proptest! {
    /// `ChangeDepth` semantics of the delta enumeration stream: for
    /// every consecutive pair, all flattened `(level, loop)` entries
    /// strictly above the reported position are equal, the entries at
    /// the position differ, and every level strictly above the reported
    /// *level* has a bit-identical nest. The stream's first candidate
    /// reports `Reset`.
    #[test]
    fn change_depth_marks_the_first_difference(
        m in 1u64..10, n in 1u64..10, k in 1u64..10,
        fanout in 1u64..6,
        spatial in 0u64..2,
        limit in 1usize..400,
    ) {
        let e = Einsum::matmul(m, n, k);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1"))
            .compute(ComputeSpec::new("MAC", fanout))
            .build()
            .unwrap();
        let mut space = Mapspace::all_temporal(&e, &arch);
        if spatial == 1 {
            space = space.with_spatial_dims(1, vec![DimId(1)]);
        }
        let mut it = space.iter_enumerate(limit);
        let mut prev: Option<sparseloop_mapping::Mapping> = None;
        let mut first = true;
        while let Some((depth, mapping)) = it.next_delta() {
            match (depth, &prev) {
                (ChangeDepth::Reset, _) => {
                    prop_assert!(first, "Reset only on the stream's first candidate");
                }
                (ChangeDepth::At { level, loop_pos }, Some(p)) => {
                    let pf = p.flattened();
                    let cf = mapping.flattened();
                    prop_assert_eq!(
                        &pf[..loop_pos.min(pf.len())],
                        &cf[..loop_pos.min(cf.len())],
                        "flattened prefixes above the depth must be equal"
                    );
                    prop_assert!(
                        pf.get(loop_pos) != cf.get(loop_pos),
                        "the loop at the depth must differ"
                    );
                    // nests of levels strictly above the change level
                    // are bit-identical
                    prop_assert_eq!(
                        &p.nests()[..level],
                        &mapping.nests()[..level],
                        "outer-level nests must be unchanged"
                    );
                    // because candidates factorize exactly, tiles held
                    // at-or-above the change level are unchanged too
                    let num_dims = e.dims().len();
                    let p_pos: usize = p.nests()[..level].iter().map(Vec::len).sum();
                    let c_pos: usize = mapping.nests()[..level].iter().map(Vec::len).sum();
                    prop_assert_eq!(
                        p.tile_bounds_inside(p_pos, num_dims),
                        mapping.tile_bounds_inside(c_pos, num_dims),
                        "held tile at the change level must be unchanged"
                    );
                }
                (ChangeDepth::At { .. }, None) => {
                    prop_assert!(false, "first candidate must report Reset");
                }
            }
            prev = Some(mapping);
            first = false;
        }
    }

    /// Shard streams report the same `ChangeDepth` contract within each
    /// shard, and every shard's first candidate reports `Reset` (the
    /// seam where no prefix may be assumed) — so sharded evaluation
    /// never reuses state across shard boundaries.
    #[test]
    fn shard_change_depths_hold_within_shards(
        m in 1u64..9, n in 1u64..9, k in 1u64..9,
        shards in 1usize..5,
        limit in 1usize..300,
    ) {
        let e = Einsum::matmul(m, n, k);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1"))
            .compute(ComputeSpec::new("MAC", 2))
            .build()
            .unwrap();
        let space = Mapspace::all_temporal(&e, &arch).with_spatial_dims(1, vec![DimId(0)]);
        for mut shard in space.shards(shards, limit) {
            let mut prev: Option<sparseloop_mapping::Mapping> = None;
            while let Some((_, depth, mapping)) = shard.next_delta() {
                match (depth, &prev) {
                    (ChangeDepth::Reset, None) => {}
                    (ChangeDepth::Reset, Some(_)) => {
                        prop_assert!(false, "Reset must only open a shard");
                    }
                    (ChangeDepth::At { .. }, None) => {
                        prop_assert!(false, "a shard's first candidate must Reset");
                    }
                    (ChangeDepth::At { level, loop_pos }, Some(p)) => {
                        let pf = p.flattened();
                        let cf = mapping.flattened();
                        prop_assert_eq!(
                            &pf[..loop_pos.min(pf.len())],
                            &cf[..loop_pos.min(cf.len())]
                        );
                        prop_assert!(pf.get(loop_pos) != cf.get(loop_pos));
                        prop_assert_eq!(&p.nests()[..level], &mapping.nests()[..level]);
                    }
                }
                prev = Some(mapping);
            }
        }
    }
}
