//! Hand-rolled byte codecs for shard results crossing process
//! boundaries.
//!
//! The multi-process serving front ships search-shard winners between a
//! parent supervisor and its worker processes over a length-prefixed
//! frame protocol. The workspace's `serde` is a no-op marker stub, so
//! the wire format is written by hand: a little-endian, self-describing
//! byte stream with explicit length prefixes and no alignment
//! requirements. [`WireWriter`] appends primitives to a growable
//! buffer; [`WireReader`] consumes them back, failing loudly (never
//! panicking) on truncated or malformed input — exactly what a
//! supervisor needs when a worker dies mid-frame or a frame arrives
//! corrupted.
//!
//! Floating-point objectives travel as raw IEEE-754 bit patterns
//! ([`WireWriter::put_f64_bits`]), so a decoded objective is
//! bit-identical to the encoded one — the property the serving layer's
//! "sharded merge equals in-process search" guarantee rests on.

use crate::loops::{Loop, LoopKind, Mapping};
use crate::mapper::SearchStats;
use crate::mapspace::CandidateKey;
use sparseloop_tensor::einsum::DimId;
use std::fmt;

/// A malformed or truncated wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the expected value.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A tag or enum discriminant had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the decoder's sanity bound.
    OversizedLength {
        /// What was being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "wire payload truncated in {what}"),
            WireError::BadTag { what, tag } => write!(f, "bad wire tag {tag} in {what}"),
            WireError::OversizedLength { what, len } => {
                write!(f, "oversized wire length {len} in {what}")
            }
            WireError::BadUtf8 => write!(f, "wire string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on any single length prefix; a frame claiming more is
/// corrupt (no legitimate mapping, stat block, or spec text comes
/// close).
const MAX_WIRE_LEN: u64 = 64 * 1024 * 1024;

/// Appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the wire is 64-bit regardless of
    /// host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits — decoding returns the
    /// bit-identical value, NaN payloads included.
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Consumes little-endian primitives from a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the payload was fully consumed.
    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated { what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64` length prefix, sanity-bounded.
    pub fn get_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let len = self.get_u64(what)?;
        if len > MAX_WIRE_LEN {
            return Err(WireError::OversizedLength { what, len });
        }
        Ok(len as usize)
    }

    /// Reads an `f64` from its raw bits.
    pub fn get_f64_bits(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a bool byte (anything non-zero is `true`... except that a
    /// strict decoder treats tags above 1 as corruption).
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.get_len(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

/// Encodes a mapping: per-level loop nests plus the keep matrix.
pub fn encode_mapping(w: &mut WireWriter, mapping: &Mapping) {
    let nests = mapping.nests();
    w.put_usize(nests.len());
    for nest in nests {
        w.put_usize(nest.len());
        for l in nest {
            w.put_usize(l.dim.0);
            w.put_u64(l.bound);
            w.put_u8(match l.kind {
                LoopKind::Temporal => 0,
                LoopKind::Spatial => 1,
            });
        }
    }
    let keep = mapping.keep_matrix();
    w.put_usize(keep.len());
    for row in keep {
        w.put_usize(row.len());
        for &k in row {
            w.put_bool(k);
        }
    }
}

/// Decodes a mapping encoded by [`encode_mapping`].
pub fn decode_mapping(r: &mut WireReader<'_>) -> Result<Mapping, WireError> {
    let levels = r.get_len("mapping.nests")?;
    let mut nests = Vec::with_capacity(levels);
    for _ in 0..levels {
        let loops = r.get_len("mapping.nest")?;
        let mut nest = Vec::with_capacity(loops);
        for _ in 0..loops {
            let dim = DimId(r.get_len("loop.dim")?);
            let bound = r.get_u64("loop.bound")?;
            let kind = match r.get_u8("loop.kind")? {
                0 => LoopKind::Temporal,
                1 => LoopKind::Spatial,
                tag => {
                    return Err(WireError::BadTag {
                        what: "loop.kind",
                        tag,
                    })
                }
            };
            nest.push(Loop { dim, bound, kind });
        }
        nests.push(nest);
    }
    let rows = r.get_len("mapping.keep")?;
    let mut keep = Vec::with_capacity(rows);
    for _ in 0..rows {
        let cols = r.get_len("mapping.keep_row")?;
        let mut row = Vec::with_capacity(cols);
        for _ in 0..cols {
            row.push(r.get_bool("mapping.keep_bit")?);
        }
        keep.push(row);
    }
    Ok(Mapping::new(nests, keep))
}

/// Encodes search counters.
pub fn encode_stats(w: &mut WireWriter, stats: &SearchStats) {
    w.put_usize(stats.generated);
    w.put_usize(stats.pruned);
    w.put_usize(stats.evaluated);
    w.put_usize(stats.invalid);
}

/// Decodes search counters encoded by [`encode_stats`].
pub fn decode_stats(r: &mut WireReader<'_>) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        generated: r.get_len("stats.generated")?,
        pruned: r.get_len("stats.pruned")?,
        evaluated: r.get_len("stats.evaluated")?,
        invalid: r.get_len("stats.invalid")?,
    })
}

/// Encodes a globally comparable candidate key.
pub fn encode_key(w: &mut WireWriter, key: &CandidateKey) {
    w.put_u64(key.block);
    w.put_u64(key.rank);
}

/// Decodes a candidate key encoded by [`encode_key`].
pub fn decode_key(r: &mut WireReader<'_>) -> Result<CandidateKey, WireError> {
    Ok(CandidateKey {
        block: r.get_u64("key.block")?,
        rank: r.get_u64("key.rank")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapspace::Mapspace;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
    use sparseloop_tensor::einsum::Einsum;

    fn sample_mappings() -> Vec<Mapping> {
        let e = Einsum::matmul(8, 4, 6);
        let a = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap();
        Mapspace::all_temporal(&e, &a)
            .with_spatial_dims(1, vec![DimId(0)])
            .enumerate(50)
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64_bits(-0.0);
        w.put_f64_bits(f64::NAN);
        w.put_bool(true);
        w.put_str("héllo wire");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8("t").unwrap(), 7);
        assert_eq!(r.get_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("t").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64_bits("t").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64_bits("t").unwrap().is_nan());
        assert!(r.get_bool("t").unwrap());
        assert_eq!(r.get_str("t").unwrap(), "héllo wire");
        assert!(r.is_done());
    }

    #[test]
    fn truncation_reported_not_panicked() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..5]);
        assert_eq!(
            r.get_u64("value").unwrap_err(),
            WireError::Truncated { what: "value" }
        );
    }

    #[test]
    fn oversized_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_len("len").unwrap_err(),
            WireError::OversizedLength { .. }
        ));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(
            r.get_bool("flag").unwrap_err(),
            WireError::BadTag {
                what: "flag",
                tag: 9
            }
        );
    }

    #[test]
    fn mapping_roundtrips_bit_identically() {
        for m in sample_mappings() {
            let mut w = WireWriter::new();
            encode_mapping(&mut w, &m);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = decode_mapping(&mut r).unwrap();
            assert!(r.is_done(), "decoder must consume the whole payload");
            assert_eq!(back, m);
            assert_eq!(back.keep_matrix(), m.keep_matrix());
        }
    }

    #[test]
    fn stats_and_key_roundtrip() {
        let stats = SearchStats {
            generated: 101,
            pruned: 17,
            evaluated: 80,
            invalid: 4,
        };
        let key = CandidateKey { block: 3, rank: 99 };
        let sampled = CandidateKey::sampled(12);
        let mut w = WireWriter::new();
        encode_stats(&mut w, &stats);
        encode_key(&mut w, &key);
        encode_key(&mut w, &sampled);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(decode_stats(&mut r).unwrap(), stats);
        assert_eq!(decode_key(&mut r).unwrap(), key);
        assert_eq!(decode_key(&mut r).unwrap(), sampled);
    }

    #[test]
    fn corrupted_mapping_payload_is_an_error() {
        let m = &sample_mappings()[0];
        let mut w = WireWriter::new();
        encode_mapping(&mut w, m);
        let mut bytes = w.into_bytes();
        // claim an absurd nest count
        bytes[0] = 0xFF;
        bytes[7] = 0xFF;
        let mut r = WireReader::new(&bytes);
        assert!(decode_mapping(&mut r).is_err());
    }
}
