//! Mapspaces: constraint-driven enumeration of candidate mappings.
//!
//! A [`Mapspace`] fixes, per storage level, the *order* in which
//! dimensions may appear as temporal loops and which dimensions may be
//! distributed spatially. What remains free — and what the mapper
//! explores — is the *factorization*: how each workload dimension's bound
//! splits across the eligible loop positions. This mirrors the paper's
//! "mapspace constraints" input (§5.1): the user supplies partial loop
//! orders, Sparseloop locates the best concrete schedule.

use crate::loops::{Mapping, MappingBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sparseloop_arch::Architecture;
use sparseloop_tensor::einsum::{DimId, Einsum, TensorId};

/// All ordered factorizations of `n` into `k` positive factors.
///
/// The result is deterministic (lexicographic in factor order). Sizes grow
/// combinatorially; callers cap enumeration via `limit` (`None` =
/// unlimited).
///
/// # Example
/// ```
/// use sparseloop_mapping::factorizations;
/// let f = factorizations(4, 2, None);
/// assert_eq!(f, vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
/// ```
pub fn factorizations(n: u64, k: usize, limit: Option<usize>) -> Vec<Vec<u64>> {
    assert!(n >= 1 && k >= 1, "need n >= 1 and k >= 1");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        n: u64,
        k: usize,
        current: &mut Vec<u64>,
        out: &mut Vec<Vec<u64>>,
        limit: Option<usize>,
    ) {
        if let Some(l) = limit {
            if out.len() >= l {
                return;
            }
        }
        if k == 1 {
            current.push(n);
            out.push(current.clone());
            current.pop();
            return;
        }
        for d in 1..=n {
            if n % d == 0 {
                current.push(d);
                rec(n / d, k - 1, current, out, limit);
                current.pop();
            }
        }
    }
    rec(n, k, &mut current, &mut out, limit);
    out
}

/// A random ordered factorization of `n` into `k` positive factors.
pub fn random_factorization(n: u64, k: usize, rng: &mut impl Rng) -> Vec<u64> {
    let mut factors = vec![1u64; k];
    let mut rest = n;
    // Peel random divisors into random positions until rest is 1.
    while rest > 1 {
        let divisors: Vec<u64> = (2..=rest).filter(|d| rest % d == 0).collect();
        let d = divisors[rng.gen_range(0..divisors.len())];
        // take a prime-ish chunk: smallest prime factor of d
        let p = smallest_prime_factor(d);
        let pos = rng.gen_range(0..k);
        factors[pos] *= p;
        rest /= p;
    }
    factors
}

fn smallest_prime_factor(n: u64) -> u64 {
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return d;
        }
        d += 1;
    }
    n
}

/// One loop *slot* of a mapspace: a level plus position where a dimension
/// may receive a tiling factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    level: usize,
    dim: DimId,
    spatial: bool,
}

/// A constrained space of mappings for one workload on one architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mapspace {
    num_levels: usize,
    num_tensors: usize,
    num_dims: usize,
    dim_bounds: Vec<u64>,
    /// Per level, the ordered dims eligible for temporal loops.
    temporal_order: Vec<Vec<DimId>>,
    /// Per level, dims eligible for spatial loops (placed before the
    /// level's temporal loops).
    spatial_dims: Vec<Vec<DimId>>,
    /// Per level fanout budget (from the architecture).
    fanout: Vec<u64>,
    /// Keep matrix (`[level][tensor]`, true = stored).
    keep: Vec<Vec<bool>>,
}

impl Mapspace {
    /// A mapspace that allows every dimension as a temporal loop at every
    /// level, in workload dimension order, with no spatial loops.
    pub fn all_temporal(einsum: &Einsum, arch: &Architecture) -> Self {
        let dims: Vec<DimId> = (0..einsum.dims().len()).map(DimId).collect();
        Mapspace {
            num_levels: arch.num_levels(),
            num_tensors: einsum.tensors().len(),
            num_dims: einsum.dims().len(),
            dim_bounds: einsum.bounds(),
            temporal_order: vec![dims.clone(); arch.num_levels()],
            spatial_dims: vec![Vec::new(); arch.num_levels()],
            fanout: (0..arch.num_levels())
                .map(|l| arch.fanout_below(sparseloop_arch::LevelId(l)))
                .collect(),
            keep: vec![vec![true; einsum.tensors().len()]; arch.num_levels()],
        }
    }

    /// Restricts level `l`'s temporal loops to the given dims, in the
    /// given outermost-first order.
    pub fn with_temporal_order(mut self, level: usize, dims: Vec<DimId>) -> Self {
        self.temporal_order[level] = dims;
        self
    }

    /// Allows the given dims to be distributed spatially below `level`.
    pub fn with_spatial_dims(mut self, level: usize, dims: Vec<DimId>) -> Self {
        self.spatial_dims[level] = dims;
        self
    }

    /// Marks tensor `t` as bypassed at `level` in every generated mapping.
    pub fn with_bypass(mut self, level: usize, t: TensorId) -> Self {
        self.keep[level][t.0] = false;
        self
    }

    /// The ordered loop slots of this mapspace (levels outermost-first;
    /// spatial slots before temporal slots within a level).
    fn slots(&self) -> Vec<Slot> {
        let mut slots = Vec::new();
        for l in 0..self.num_levels {
            for &d in &self.spatial_dims[l] {
                slots.push(Slot { level: l, dim: d, spatial: true });
            }
            for &d in &self.temporal_order[l] {
                slots.push(Slot { level: l, dim: d, spatial: false });
            }
        }
        slots
    }

    /// Builds the mapping corresponding to per-slot factors, dropping
    /// factor-1 loops. Returns `None` if a spatial fanout budget is
    /// exceeded.
    fn mapping_from_factors(&self, slots: &[Slot], factors: &[u64]) -> Option<Mapping> {
        let mut builder = MappingBuilder::new(self.num_levels, self.num_tensors);
        for l in 0..self.num_levels {
            let spatial_product: u64 = slots
                .iter()
                .zip(factors)
                .filter(|(s, _)| s.level == l && s.spatial)
                .map(|(_, &f)| f)
                .product();
            if spatial_product > self.fanout[l] {
                return None;
            }
        }
        for (s, &f) in slots.iter().zip(factors) {
            if f > 1 {
                builder = if s.spatial {
                    builder.spatial(s.level, s.dim, f)
                } else {
                    builder.temporal(s.level, s.dim, f)
                };
            }
        }
        let mapping = builder.build();
        Some(Mapping::new(mapping.nests().to_vec(), self.keep.clone()))
    }

    /// Enumerates up to `limit` mappings deterministically.
    pub fn enumerate(&self, limit: usize) -> Vec<Mapping> {
        let slots = self.slots();
        // per-dim slot indices
        let mut per_dim: Vec<Vec<usize>> = vec![Vec::new(); self.num_dims];
        for (i, s) in slots.iter().enumerate() {
            per_dim[s.dim.0].push(i);
        }
        // dims with no slots must have bound 1
        for d in 0..self.num_dims {
            if per_dim[d].is_empty() && self.dim_bounds[d] != 1 {
                return Vec::new();
            }
        }
        // enumerate the cross product of per-dim factorizations
        let dim_factorizations: Vec<Vec<Vec<u64>>> = (0..self.num_dims)
            .map(|d| {
                if per_dim[d].is_empty() {
                    vec![Vec::new()]
                } else {
                    factorizations(self.dim_bounds[d], per_dim[d].len(), Some(limit))
                }
            })
            .collect();
        let mut out = Vec::new();
        let mut choice = vec![0usize; self.num_dims];
        'outer: loop {
            // assemble factors for this choice
            let mut factors = vec![1u64; slots.len()];
            for d in 0..self.num_dims {
                for (j, &slot_idx) in per_dim[d].iter().enumerate() {
                    factors[slot_idx] = dim_factorizations[d][choice[d]]
                        .get(j)
                        .copied()
                        .unwrap_or(1);
                }
            }
            if let Some(m) = self.mapping_from_factors(&slots, &factors) {
                out.push(m);
                if out.len() >= limit {
                    break;
                }
            }
            // advance the mixed-radix counter
            let mut d = 0;
            loop {
                if d == self.num_dims {
                    break 'outer;
                }
                choice[d] += 1;
                if choice[d] < dim_factorizations[d].len() {
                    break;
                }
                choice[d] = 0;
                d += 1;
            }
        }
        out
    }

    /// Samples `count` random mappings (duplicates possible).
    pub fn sample(&self, count: usize, rng: &mut impl Rng) -> Vec<Mapping> {
        let slots = self.slots();
        let mut per_dim: Vec<Vec<usize>> = vec![Vec::new(); self.num_dims];
        for (i, s) in slots.iter().enumerate() {
            per_dim[s.dim.0].push(i);
        }
        for d in 0..self.num_dims {
            if per_dim[d].is_empty() && self.dim_bounds[d] != 1 {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            let mut factors = vec![1u64; slots.len()];
            for d in 0..self.num_dims {
                if per_dim[d].is_empty() {
                    continue;
                }
                let f = random_factorization(self.dim_bounds[d], per_dim[d].len(), rng);
                for (j, &slot_idx) in per_dim[d].iter().enumerate() {
                    factors[slot_idx] = f[j];
                }
            }
            if let Some(m) = self.mapping_from_factors(&slots, &factors) {
                out.push(m);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};

    fn arch() -> Architecture {
        ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap()
    }

    #[test]
    fn factorization_counts() {
        assert_eq!(factorizations(1, 3, None), vec![vec![1, 1, 1]]);
        assert_eq!(factorizations(6, 2, None).len(), 4); // 1*6, 2*3, 3*2, 6*1
        assert_eq!(factorizations(8, 3, None).len(), 10);
    }

    #[test]
    fn factorization_products_correct() {
        for f in factorizations(24, 3, None) {
            assert_eq!(f.iter().product::<u64>(), 24);
        }
    }

    #[test]
    fn factorization_limit_respected() {
        assert_eq!(factorizations(64, 4, Some(5)).len(), 5);
    }

    #[test]
    fn random_factorization_products() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let f = random_factorization(36, 3, &mut rng);
            assert_eq!(f.iter().product::<u64>(), 36);
        }
    }

    #[test]
    fn enumerate_produces_valid_mappings() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let maps = space.enumerate(200);
        assert!(!maps.is_empty());
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn spatial_budget_enforced() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch(); // fanout below Buf is 4
        let space = Mapspace::all_temporal(&e, &a)
            .with_spatial_dims(1, vec![DimId(1)]);
        let maps = space.enumerate(5000);
        for m in &maps {
            assert!(m.spatial_fanout_at(1) <= 4);
            m.validate(&e, &a).unwrap();
        }
        // some mapping should actually use the parallelism
        assert!(maps.iter().any(|m| m.spatial_fanout_at(1) == 4));
    }

    #[test]
    fn bypass_propagates_to_mappings() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_bypass(1, TensorId(1));
        let maps = space.enumerate(10);
        assert!(!maps.is_empty());
        for m in &maps {
            assert!(!m.keeps(1, TensorId(1)));
            assert!(m.keeps(1, TensorId(0)));
        }
    }

    #[test]
    fn sampling_yields_valid_mappings() {
        let e = Einsum::matmul(16, 16, 16);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let maps = space.sample(50, &mut rng);
        assert_eq!(maps.len(), 50);
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn restricted_order_respected() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        // only k may tile at the buffer level
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(1, vec![DimId(2)]);
        for m in space.enumerate(500) {
            for lp in &m.nests()[1] {
                assert_eq!(lp.dim, DimId(2));
            }
        }
    }
}
