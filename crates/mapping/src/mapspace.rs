//! Mapspaces: constraint-driven enumeration of candidate mappings.
//!
//! A [`Mapspace`] fixes, per storage level, the *order* in which
//! dimensions may appear as temporal loops and which dimensions may be
//! distributed spatially. What remains free — and what the mapper
//! explores — is the *factorization*: how each workload dimension's bound
//! splits across the eligible loop positions. This mirrors the paper's
//! "mapspace constraints" input (§5.1): the user supplies partial loop
//! orders, Sparseloop locates the best concrete schedule.

use crate::loops::{Loop, Mapping};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sparseloop_arch::Architecture;
use sparseloop_tensor::einsum::{DimId, Einsum, TensorId};
use std::sync::Arc;

/// All ordered factorizations of `n` into `k` positive factors.
///
/// The result is deterministic (lexicographic in factor order). Sizes grow
/// combinatorially; callers cap enumeration via `limit` (`None` =
/// unlimited).
///
/// # Example
/// ```
/// use sparseloop_mapping::factorizations;
/// let f = factorizations(4, 2, None);
/// assert_eq!(f, vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
/// ```
pub fn factorizations(n: u64, k: usize, limit: Option<usize>) -> Vec<Vec<u64>> {
    assert!(n >= 1 && k >= 1, "need n >= 1 and k >= 1");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        n: u64,
        k: usize,
        current: &mut Vec<u64>,
        out: &mut Vec<Vec<u64>>,
        limit: Option<usize>,
    ) {
        if let Some(l) = limit {
            if out.len() >= l {
                return;
            }
        }
        if k == 1 {
            current.push(n);
            out.push(current.clone());
            current.pop();
            return;
        }
        for d in 1..=n {
            if n.is_multiple_of(d) {
                current.push(d);
                rec(n / d, k - 1, current, out, limit);
                current.pop();
            }
        }
    }
    rec(n, k, &mut current, &mut out, limit);
    out
}

/// A random ordered factorization of `n` into `k` positive factors.
pub fn random_factorization(n: u64, k: usize, rng: &mut impl Rng) -> Vec<u64> {
    let mut factors = vec![1u64; k];
    let mut rest = n;
    // Peel random divisors into random positions until rest is 1.
    while rest > 1 {
        let divisors: Vec<u64> = (2..=rest).filter(|d| rest.is_multiple_of(*d)).collect();
        let d = divisors[rng.gen_range(0..divisors.len())];
        // take a prime-ish chunk: smallest prime factor of d
        let p = smallest_prime_factor(d);
        let pos = rng.gen_range(0..k);
        factors[pos] *= p;
        rest /= p;
    }
    factors
}

fn smallest_prime_factor(n: u64) -> u64 {
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return d;
        }
        d += 1;
    }
    n
}

/// One loop *slot* of a mapspace: a level plus position where a dimension
/// may receive a tiling factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    level: usize,
    dim: DimId,
    spatial: bool,
}

/// A constrained space of mappings for one workload on one architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mapspace {
    num_levels: usize,
    num_tensors: usize,
    num_dims: usize,
    dim_bounds: Vec<u64>,
    /// Per level, the ordered dims eligible for temporal loops.
    temporal_order: Vec<Vec<DimId>>,
    /// Per level, dims eligible for spatial loops (placed before the
    /// level's temporal loops).
    spatial_dims: Vec<Vec<DimId>>,
    /// Per level fanout budget (from the architecture).
    fanout: Vec<u64>,
    /// Keep matrix (`[level][tensor]`, true = stored).
    keep: Vec<Vec<bool>>,
}

impl Mapspace {
    /// A mapspace that allows every dimension as a temporal loop at every
    /// level, in workload dimension order, with no spatial loops.
    pub fn all_temporal(einsum: &Einsum, arch: &Architecture) -> Self {
        let dims: Vec<DimId> = (0..einsum.dims().len()).map(DimId).collect();
        Mapspace {
            num_levels: arch.num_levels(),
            num_tensors: einsum.tensors().len(),
            num_dims: einsum.dims().len(),
            dim_bounds: einsum.bounds(),
            temporal_order: vec![dims.clone(); arch.num_levels()],
            spatial_dims: vec![Vec::new(); arch.num_levels()],
            fanout: (0..arch.num_levels())
                .map(|l| arch.fanout_below(sparseloop_arch::LevelId(l)))
                .collect(),
            keep: vec![vec![true; einsum.tensors().len()]; arch.num_levels()],
        }
    }

    /// Restricts level `l`'s temporal loops to the given dims, in the
    /// given outermost-first order.
    pub fn with_temporal_order(mut self, level: usize, dims: Vec<DimId>) -> Self {
        self.temporal_order[level] = dims;
        self
    }

    /// Allows the given dims to be distributed spatially below `level`.
    pub fn with_spatial_dims(mut self, level: usize, dims: Vec<DimId>) -> Self {
        self.spatial_dims[level] = dims;
        self
    }

    /// Marks tensor `t` as bypassed at `level` in every generated mapping.
    pub fn with_bypass(mut self, level: usize, t: TensorId) -> Self {
        self.keep[level][t.0] = false;
        self
    }

    /// Number of storage levels the space's mappings cover.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Number of workload tensors.
    pub fn num_tensors(&self) -> usize {
        self.num_tensors
    }

    /// Number of workload dimensions.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// The ordered loop slots of this mapspace (levels outermost-first;
    /// spatial slots before temporal slots within a level).
    fn slots(&self) -> Vec<Slot> {
        let mut slots = Vec::new();
        for l in 0..self.num_levels {
            for &d in &self.spatial_dims[l] {
                slots.push(Slot {
                    level: l,
                    dim: d,
                    spatial: true,
                });
            }
            for &d in &self.temporal_order[l] {
                slots.push(Slot {
                    level: l,
                    dim: d,
                    spatial: false,
                });
            }
        }
        slots
    }

    /// Builds the mapping corresponding to per-slot factors, dropping
    /// factor-1 loops. Returns `None` if a spatial fanout budget is
    /// exceeded. `keep` is the shared bypass configuration snapshot the
    /// iterator took from this space (see [`Mapping::with_shared_keep`]).
    fn mapping_from_factors(
        &self,
        slots: &[Slot],
        factors: &[u64],
        keep: &Arc<Vec<Vec<bool>>>,
    ) -> Option<Mapping> {
        for l in 0..self.num_levels {
            let spatial_product: u64 = slots
                .iter()
                .zip(factors)
                .filter(|(s, _)| s.level == l && s.spatial)
                .map(|(_, &f)| f)
                .product();
            if spatial_product > self.fanout[l] {
                return None;
            }
        }
        let mut nests: Vec<Vec<Loop>> = vec![Vec::new(); self.num_levels];
        for (s, &f) in slots.iter().zip(factors) {
            if f > 1 {
                nests[s.level].push(if s.spatial {
                    Loop::spatial(s.dim, f)
                } else {
                    Loop::temporal(s.dim, f)
                });
            }
        }
        Some(Mapping::with_shared_keep(nests, Arc::clone(keep)))
    }

    /// Precomputes the slot layout shared by enumeration and sampling.
    /// `feasible` is false when a dimension with bound > 1 has no slot to
    /// live in (the space contains no mapping at all).
    fn plan(&self) -> SlotPlan {
        let slots = self.slots();
        let mut per_dim: Vec<Vec<usize>> = vec![Vec::new(); self.num_dims];
        for (i, s) in slots.iter().enumerate() {
            per_dim[s.dim.0].push(i);
        }
        let feasible =
            (0..self.num_dims).all(|d| !per_dim[d].is_empty() || self.dim_bounds[d] == 1);
        SlotPlan {
            slots,
            per_dim,
            feasible,
            keep: Arc::new(self.keep.clone()),
        }
    }

    /// Streaming deterministic enumeration of up to `limit` mappings.
    ///
    /// Candidates are produced lazily in the same order [`enumerate`]
    /// (a thin collecting wrapper) returns them, so exhaustive search
    /// over a combinatorially large mapspace needs O(1) memory in the
    /// candidate count.
    ///
    /// `limit` caps only the *output*: each dimension's ordered
    /// factorization list is materialized in full, so every candidate of
    /// the space is reachable given a large enough `limit` — a dimension
    /// with many factorizations no longer silently loses its tail (the
    /// seed capped the per-dimension lists at `limit` too, which made
    /// small limits skip late-but-valid candidates entirely).
    ///
    /// Memory note: the per-dimension lists are built eagerly, costing
    /// O(number of ordered factorizations) vectors per dimension before
    /// the first candidate streams out. For tensor-workload bounds (a
    /// few thousand, a handful of slots) this is a few hundred small
    /// vectors; callers exploring astronomically composite bounds
    /// should constrain the temporal orders (fewer slots per dim) to
    /// keep the lists small.
    ///
    /// [`enumerate`]: Mapspace::enumerate
    pub fn iter_enumerate(&self, limit: usize) -> EnumerateIter<'_> {
        let plan = self.plan();
        // per-dim ordered factorizations (small: one list per dimension);
        // the cross product is what stays lazy
        let dim_factorizations: Vec<Vec<Vec<u64>>> = (0..self.num_dims)
            .map(|d| {
                if plan.per_dim[d].is_empty() {
                    vec![Vec::new()]
                } else {
                    factorizations(self.dim_bounds[d], plan.per_dim[d].len(), None)
                }
            })
            .collect();
        EnumerateIter {
            space: self,
            choice: vec![0usize; self.num_dims],
            dim_factorizations,
            produced: 0,
            limit,
            exhausted: !plan.feasible || limit == 0,
            plan,
        }
    }

    /// Streaming random sampling of up to `count` mappings (duplicates
    /// possible). Draws stop after `count` valid mappings or `20 × count`
    /// attempts, whichever comes first — identical semantics to
    /// [`sample`](Mapspace::sample), which collects this iterator.
    pub fn iter_sample<R: Rng>(&self, count: usize, rng: R) -> SampleIter<'_, R> {
        let plan = self.plan();
        SampleIter {
            space: self,
            plan,
            rng,
            produced: 0,
            attempts: 0,
            count,
        }
    }

    /// Enumerates up to `limit` mappings deterministically, materialized.
    ///
    /// Prefer [`iter_enumerate`](Mapspace::iter_enumerate) in search
    /// loops; this wrapper exists for callers that genuinely need the
    /// whole candidate list at once.
    pub fn enumerate(&self, limit: usize) -> Vec<Mapping> {
        self.iter_enumerate(limit).collect()
    }

    /// Samples `count` random mappings (duplicates possible),
    /// materialized. Prefer [`iter_sample`](Mapspace::iter_sample) in
    /// search loops.
    pub fn sample(&self, count: usize, rng: &mut impl Rng) -> Vec<Mapping> {
        self.iter_sample(count, rng).collect()
    }
}

/// Slot layout shared by the candidate iterators.
struct SlotPlan {
    slots: Vec<Slot>,
    /// Slot indices owned by each dimension.
    per_dim: Vec<Vec<usize>>,
    /// False when some dimension with bound > 1 has no slot.
    feasible: bool,
    /// Bypass configuration shared by every generated mapping.
    keep: Arc<Vec<Vec<bool>>>,
}

impl SlotPlan {
    /// Writes the per-slot factors for one per-dim factorization choice.
    fn assemble<'a>(&self, factors: &mut [u64], mut pick: impl FnMut(usize) -> &'a [u64]) {
        factors.fill(1);
        for (d, slots) in self.per_dim.iter().enumerate() {
            let f = pick(d);
            for (j, &slot_idx) in slots.iter().enumerate() {
                factors[slot_idx] = f.get(j).copied().unwrap_or(1);
            }
        }
    }
}

/// Lazy deterministic mapspace enumeration
/// (see [`Mapspace::iter_enumerate`]).
pub struct EnumerateIter<'a> {
    space: &'a Mapspace,
    plan: SlotPlan,
    /// Per-dim ordered factorization lists; the iterator walks their
    /// cross product with a mixed-radix counter.
    dim_factorizations: Vec<Vec<Vec<u64>>>,
    choice: Vec<usize>,
    produced: usize,
    limit: usize,
    exhausted: bool,
}

impl Iterator for EnumerateIter<'_> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        let num_dims = self.space.num_dims;
        let mut factors = vec![1u64; self.plan.slots.len()];
        while !self.exhausted && self.produced < self.limit {
            let (plan, dim_factorizations, choice) =
                (&self.plan, &self.dim_factorizations, &self.choice);
            plan.assemble(&mut factors, |d| &dim_factorizations[d][choice[d]]);
            let candidate =
                self.space
                    .mapping_from_factors(&self.plan.slots, &factors, &self.plan.keep);
            // advance the mixed-radix counter
            let mut d = 0;
            loop {
                if d == num_dims {
                    self.exhausted = true;
                    break;
                }
                self.choice[d] += 1;
                if self.choice[d] < self.dim_factorizations[d].len() {
                    break;
                }
                self.choice[d] = 0;
                d += 1;
            }
            if let Some(m) = candidate {
                self.produced += 1;
                return Some(m);
            }
        }
        None
    }
}

/// Lazy random mapspace sampling (see [`Mapspace::iter_sample`]).
pub struct SampleIter<'a, R: Rng> {
    space: &'a Mapspace,
    plan: SlotPlan,
    rng: R,
    produced: usize,
    attempts: usize,
    count: usize,
}

impl<R: Rng> Iterator for SampleIter<'_, R> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        if !self.plan.feasible {
            return None;
        }
        let mut factors = vec![1u64; self.plan.slots.len()];
        while self.produced < self.count && self.attempts < self.count * 20 {
            self.attempts += 1;
            let draws: Vec<Vec<u64>> = (0..self.space.num_dims)
                .map(|d| {
                    if self.plan.per_dim[d].is_empty() {
                        Vec::new()
                    } else {
                        random_factorization(
                            self.space.dim_bounds[d],
                            self.plan.per_dim[d].len(),
                            &mut self.rng,
                        )
                    }
                })
                .collect();
            self.plan.assemble(&mut factors, |d| &draws[d]);
            if let Some(m) =
                self.space
                    .mapping_from_factors(&self.plan.slots, &factors, &self.plan.keep)
            {
                self.produced += 1;
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};

    fn arch() -> Architecture {
        ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap()
    }

    #[test]
    fn factorization_counts() {
        assert_eq!(factorizations(1, 3, None), vec![vec![1, 1, 1]]);
        assert_eq!(factorizations(6, 2, None).len(), 4); // 1*6, 2*3, 3*2, 6*1
        assert_eq!(factorizations(8, 3, None).len(), 10);
    }

    #[test]
    fn factorization_products_correct() {
        for f in factorizations(24, 3, None) {
            assert_eq!(f.iter().product::<u64>(), 24);
        }
    }

    #[test]
    fn factorization_limit_respected() {
        assert_eq!(factorizations(64, 4, Some(5)).len(), 5);
    }

    #[test]
    fn random_factorization_products() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let f = random_factorization(36, 3, &mut rng);
            assert_eq!(f.iter().product::<u64>(), 36);
        }
    }

    #[test]
    fn enumerate_produces_valid_mappings() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let maps = space.enumerate(200);
        assert!(!maps.is_empty());
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn spatial_budget_enforced() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch(); // fanout below Buf is 4
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(1)]);
        let maps = space.enumerate(5000);
        for m in &maps {
            assert!(m.spatial_fanout_at(1) <= 4);
            m.validate(&e, &a).unwrap();
        }
        // some mapping should actually use the parallelism
        assert!(maps.iter().any(|m| m.spatial_fanout_at(1) == 4));
    }

    #[test]
    fn bypass_propagates_to_mappings() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_bypass(1, TensorId(1));
        let maps = space.enumerate(10);
        assert!(!maps.is_empty());
        for m in &maps {
            assert!(!m.keeps(1, TensorId(1)));
            assert!(m.keeps(1, TensorId(0)));
        }
    }

    #[test]
    fn sampling_yields_valid_mappings() {
        let e = Einsum::matmul(16, 16, 16);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let maps = space.sample(50, &mut rng);
        assert_eq!(maps.len(), 50);
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn iter_enumerate_matches_collected_enumerate() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(1)]);
        for limit in [1, 7, 100, 5000] {
            let streamed: Vec<_> = space.iter_enumerate(limit).collect();
            assert_eq!(streamed, space.enumerate(limit), "limit={limit}");
        }
    }

    #[test]
    fn iter_enumerate_is_lazy_and_resumable() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let all = space.enumerate(1000);
        // taking a prefix then continuing yields the same stream
        let mut it = space.iter_enumerate(1000);
        let head: Vec<_> = it.by_ref().take(5).collect();
        let tail: Vec<_> = it.collect();
        assert_eq!(head, all[..5].to_vec());
        assert_eq!(tail, all[5..].to_vec());
    }

    #[test]
    fn iter_sample_matches_collected_sample() {
        let e = Einsum::matmul(16, 16, 16);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(0)]);
        let collected = space.sample(40, &mut StdRng::seed_from_u64(11));
        let streamed: Vec<_> = space.iter_sample(40, StdRng::seed_from_u64(11)).collect();
        assert_eq!(streamed, collected);
    }

    #[test]
    fn enumeration_limit_does_not_truncate_dimension_tails() {
        // m=64 owns two slots: an outer temporal and an inner spatial
        // bounded by fanout 4. The lexicographic factorization list
        // [1,64], [2,32], ... puts the only fanout-respecting splits at
        // the tail ([16,4], [32,2], [64,1]); the seed's per-dimension cap
        // of `limit` truncated the list to its invalid head, so a small
        // limit produced nothing at all.
        let e = Einsum::matmul(64, 1, 1);
        let a = arch(); // fanout below Buf is 4
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![DimId(0)])
            .with_temporal_order(1, vec![])
            .with_spatial_dims(1, vec![DimId(0)]);
        let maps = space.enumerate(3);
        assert_eq!(maps.len(), 3, "tail factorizations must be reachable");
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn infeasible_space_yields_nothing() {
        // no slots for any dim but nonunit bounds -> empty space
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![])
            .with_temporal_order(1, vec![]);
        assert_eq!(space.iter_enumerate(10).count(), 0);
        assert_eq!(space.iter_sample(10, StdRng::seed_from_u64(0)).count(), 0);
    }

    #[test]
    fn restricted_order_respected() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        // only k may tile at the buffer level
        let space = Mapspace::all_temporal(&e, &a).with_temporal_order(1, vec![DimId(2)]);
        for m in space.enumerate(500) {
            for lp in &m.nests()[1] {
                assert_eq!(lp.dim, DimId(2));
            }
        }
    }
}
