//! Mapspaces: constraint-driven enumeration of candidate mappings.
//!
//! A [`Mapspace`] fixes, per storage level, the *order* in which
//! dimensions may appear as temporal loops and which dimensions may be
//! distributed spatially. What remains free — and what the mapper
//! explores — is the *factorization*: how each workload dimension's bound
//! splits across the eligible loop positions. This mirrors the paper's
//! "mapspace constraints" input (§5.1): the user supplies partial loop
//! orders, Sparseloop locates the best concrete schedule.

use crate::loops::{Loop, Mapping};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sparseloop_arch::Architecture;
use sparseloop_tensor::einsum::{DimId, Einsum, TensorId};
use std::sync::Arc;

/// All ordered factorizations of `n` into `k` positive factors.
///
/// The result is deterministic (lexicographic in factor order). Sizes grow
/// combinatorially; callers cap enumeration via `limit` (`None` =
/// unlimited).
///
/// # Example
/// ```
/// use sparseloop_mapping::factorizations;
/// let f = factorizations(4, 2, None);
/// assert_eq!(f, vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
/// ```
pub fn factorizations(n: u64, k: usize, limit: Option<usize>) -> Vec<Vec<u64>> {
    assert!(n >= 1 && k >= 1, "need n >= 1 and k >= 1");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        n: u64,
        k: usize,
        current: &mut Vec<u64>,
        out: &mut Vec<Vec<u64>>,
        limit: Option<usize>,
    ) {
        if let Some(l) = limit {
            if out.len() >= l {
                return;
            }
        }
        if k == 1 {
            current.push(n);
            out.push(current.clone());
            current.pop();
            return;
        }
        for d in 1..=n {
            if n.is_multiple_of(d) {
                current.push(d);
                rec(n / d, k - 1, current, out, limit);
                current.pop();
            }
        }
    }
    rec(n, k, &mut current, &mut out, limit);
    out
}

/// A random ordered factorization of `n` into `k` positive factors.
pub fn random_factorization(n: u64, k: usize, rng: &mut impl Rng) -> Vec<u64> {
    let mut factors = vec![1u64; k];
    let mut rest = n;
    let mut divisors: Vec<u64> = Vec::new();
    // Peel random divisors into random positions until rest is 1.
    while rest > 1 {
        divisors_excluding_one(rest, &mut divisors);
        let d = divisors[rng.gen_range(0..divisors.len())];
        // take a prime-ish chunk: smallest prime factor of d
        let p = smallest_prime_factor(d);
        let pos = rng.gen_range(0..k);
        factors[pos] *= p;
        rest /= p;
    }
    factors
}

/// The divisors of `n >= 2` except 1, ascending, via trial division to
/// `√n` — the same list a linear scan of `2..=n` produces, three orders
/// of magnitude faster for the large composite bounds real workloads
/// have (random sampling draws this per peel per dimension, which made
/// the hybrid mapper's sample tail the most expensive part of its
/// candidate stream).
fn divisors_excluding_one(n: u64, out: &mut Vec<u64>) {
    out.clear();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            if d != n / d {
                out.push(n / d);
            }
        }
        d += 1;
    }
    out.push(n);
    out.sort_unstable();
}

fn smallest_prime_factor(n: u64) -> u64 {
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return d;
        }
        d += 1;
    }
    n
}

/// The prime factors of `n` with multiplicity, ascending (`n >= 1`;
/// `1` has no prime factors).
fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    while n > 1 {
        let p = smallest_prime_factor(n);
        out.push(p);
        n /= p;
    }
    out
}

/// The first `count` primes (the Halton sampler's per-decision bases).
fn first_primes(count: usize) -> Vec<u64> {
    let mut primes: Vec<u64> = Vec::with_capacity(count);
    let mut candidate = 2u64;
    while primes.len() < count {
        if primes.iter().all(|p| !candidate.is_multiple_of(*p)) {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

/// Radical inverse (van der Corput sequence) of `i` in `base`: the digits
/// of `i` mirrored around the radix point, a low-discrepancy point in
/// `[0, 1)`.
fn radical_inverse(mut i: u64, base: u64) -> f64 {
    let inv = 1.0 / base as f64;
    let mut f = inv;
    let mut r = 0.0;
    while i > 0 {
        r += f * (i % base) as f64;
        i /= base;
        f *= inv;
    }
    r
}

/// Lazy, memoizing stream of the ordered factorizations of `n` into `k`
/// positive factors, produced in exactly the order [`factorizations`]
/// returns them.
///
/// [`Mapspace::iter_enumerate`] walks a mixed-radix counter over one
/// stream per workload dimension. The counter revisits indices, so
/// produced factorizations are cached for O(1) re-access — but nothing
/// past the highest index the counter has touched is ever computed, so an
/// enumeration stopped early by its output `limit` no longer pays the
/// full ordered-factor list of an astronomically composite bound up front
/// (the eager per-dimension allocation previously flagged in ROADMAP).
///
/// `k == 0` models a dimension that owns no loop slots: the stream holds
/// exactly one empty factorization (a unit radix in the counter).
struct FactorizationStream {
    n: u64,
    k: usize,
    cache: Vec<Vec<u64>>,
    /// DFS continuation: one frame per already-chosen factor position.
    stack: Vec<Frame>,
    /// Factors chosen by the frames, index-aligned with `stack`.
    current: Vec<u64>,
    started: bool,
    done: bool,
}

/// One suspended level of [`FactorizationStream`]'s depth-first walk.
struct Frame {
    /// Value left to factor at this position (before its choice).
    remaining: u64,
    /// Next divisor candidate to try here on backtrack.
    next: u64,
}

impl FactorizationStream {
    fn new(n: u64, k: usize) -> Self {
        assert!(n >= 1, "need n >= 1");
        FactorizationStream {
            n,
            k,
            cache: Vec::new(),
            stack: Vec::new(),
            current: Vec::new(),
            started: false,
            done: false,
        }
    }

    /// Number of factorizations materialized so far (laziness probe).
    #[cfg(test)]
    fn materialized(&self) -> usize {
        self.cache.len()
    }

    /// The `i`-th factorization, extending the cache as needed; `None`
    /// past the end of the stream.
    fn get(&mut self, i: usize) -> Option<&[u64]> {
        while self.cache.len() <= i && self.advance() {}
        self.cache.get(i).map(Vec::as_slice)
    }

    /// The `i`-th factorization, which must already be materialized.
    fn cached(&self, i: usize) -> &[u64] {
        &self.cache[i]
    }

    /// Materializes the next factorization; `false` once exhausted.
    fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        if self.k == 0 {
            self.done = true;
            self.cache.push(Vec::new());
            return true;
        }
        if !self.started {
            self.started = true;
            let tail = self.descend(self.n);
            self.emit(tail);
            return true;
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return false;
            };
            // next divisor of this level's remaining value
            let mut d = frame.next;
            while d <= frame.remaining && !frame.remaining.is_multiple_of(d) {
                d += 1;
            }
            if d > frame.remaining {
                self.stack.pop();
                self.current.pop();
                continue;
            }
            frame.next = d + 1;
            let rest = frame.remaining / d;
            *self.current.last_mut().expect("frame has a chosen factor") = d;
            let tail = self.descend(rest);
            self.emit(tail);
            return true;
        }
    }

    /// Chooses factor 1 at every level below the current one, down to
    /// depth `k - 1`; returns the value left for the final position.
    fn descend(&mut self, rest: u64) -> u64 {
        while self.stack.len() < self.k - 1 {
            self.stack.push(Frame {
                remaining: rest,
                next: 2,
            });
            self.current.push(1);
        }
        rest
    }

    fn emit(&mut self, tail: u64) {
        let mut f = self.current.clone();
        f.push(tail);
        self.cache.push(f);
    }
}

/// One loop *slot* of a mapspace: a level plus position where a dimension
/// may receive a tiling factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    level: usize,
    dim: DimId,
    spatial: bool,
}

/// The outermost position at which a candidate differs from the
/// previously yielded candidate of the same stream.
///
/// The deterministic enumeration streams ([`Mapspace::iter_enumerate`],
/// [`Mapspace::shards`]) emit candidates in lexicographic factorization
/// order, so consecutive candidates usually share a long outer-loop
/// prefix. Each yielded candidate carries its `ChangeDepth` so an
/// incremental evaluator can reuse everything derived from the shared
/// prefix (per-level tile bounds, occupancies, format analyses) and
/// recompute only from the first changed loop inward.
///
/// **Contract** (what an evaluator may rely on): for
/// `ChangeDepth::At { level, loop_pos }`,
///
/// * the nests of every storage level strictly above `level` are
///   bit-identical to the previous candidate's, and within `level` the
///   loops before the first change are identical too;
/// * the flattened `(level, loop)` lists of the two candidates agree on
///   their first `loop_pos` entries and differ at position `loop_pos`
///   (where present — a factor may collapse to an elided factor-1 loop);
/// * because every candidate factorizes each workload dimension exactly,
///   the tile held at any level at-or-above `level` (the projection of
///   the loops at-and-below it) is also unchanged.
///
/// `Reset` marks stream seams — the first candidate of a stream or
/// shard, and every sampled (non-enumerated) draw — where no prefix may
/// be assumed and a consumer must recompute from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeDepth {
    /// No relation to the previously yielded candidate: stream start,
    /// shard seam, or a sampled draw. Consumers recompute everything.
    Reset,
    /// The first difference from the previous candidate.
    At {
        /// Storage level containing the first changed loop position.
        level: usize,
        /// Index into the flattened loop list of the first difference.
        loop_pos: usize,
    },
}

impl ChangeDepth {
    /// The deepest storage level whose *held tile* is guaranteed
    /// unchanged from the previous candidate (`None` for [`Reset`]:
    /// nothing may be reused).
    ///
    /// [`Reset`]: ChangeDepth::Reset
    pub fn reuse_level(&self) -> Option<usize> {
        match *self {
            ChangeDepth::Reset => None,
            ChangeDepth::At { level, .. } => Some(level),
        }
    }
}

/// First-difference position between the previous and current per-slot
/// factor assignments (both full factorizations of the same bounds).
fn change_depth(slots: &[Slot], prev: &[u64], cur: &[u64]) -> ChangeDepth {
    let mut loop_pos = 0usize;
    for (i, (&p, &c)) in prev.iter().zip(cur).enumerate() {
        if p != c {
            return ChangeDepth::At {
                level: slots[i].level,
                loop_pos,
            };
        }
        if c > 1 {
            loop_pos += 1;
        }
    }
    // Identical factor vectors never occur between consecutive distinct
    // candidates; stay conservative if they somehow do.
    ChangeDepth::Reset
}

/// A constrained space of mappings for one workload on one architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mapspace {
    num_levels: usize,
    num_tensors: usize,
    num_dims: usize,
    dim_bounds: Vec<u64>,
    /// Per level, the ordered dims eligible for temporal loops.
    temporal_order: Vec<Vec<DimId>>,
    /// Per level, dims eligible for spatial loops (placed before the
    /// level's temporal loops).
    spatial_dims: Vec<Vec<DimId>>,
    /// Per level fanout budget (from the architecture).
    fanout: Vec<u64>,
    /// Keep matrix (`[level][tensor]`, true = stored).
    keep: Vec<Vec<bool>>,
}

impl Mapspace {
    /// A mapspace that allows every dimension as a temporal loop at every
    /// level, in workload dimension order, with no spatial loops.
    pub fn all_temporal(einsum: &Einsum, arch: &Architecture) -> Self {
        let dims: Vec<DimId> = (0..einsum.dims().len()).map(DimId).collect();
        Mapspace {
            num_levels: arch.num_levels(),
            num_tensors: einsum.tensors().len(),
            num_dims: einsum.dims().len(),
            dim_bounds: einsum.bounds(),
            temporal_order: vec![dims.clone(); arch.num_levels()],
            spatial_dims: vec![Vec::new(); arch.num_levels()],
            fanout: (0..arch.num_levels())
                .map(|l| arch.fanout_below(sparseloop_arch::LevelId(l)))
                .collect(),
            keep: vec![vec![true; einsum.tensors().len()]; arch.num_levels()],
        }
    }

    /// Restricts level `l`'s temporal loops to the given dims, in the
    /// given outermost-first order.
    pub fn with_temporal_order(mut self, level: usize, dims: Vec<DimId>) -> Self {
        self.temporal_order[level] = dims;
        self
    }

    /// Allows the given dims to be distributed spatially below `level`.
    pub fn with_spatial_dims(mut self, level: usize, dims: Vec<DimId>) -> Self {
        self.spatial_dims[level] = dims;
        self
    }

    /// Marks tensor `t` as bypassed at `level` in every generated mapping.
    pub fn with_bypass(mut self, level: usize, t: TensorId) -> Self {
        self.keep[level][t.0] = false;
        self
    }

    /// Number of storage levels the space's mappings cover.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Number of workload tensors.
    pub fn num_tensors(&self) -> usize {
        self.num_tensors
    }

    /// Number of workload dimensions.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// Per-level temporal dimension orders (outermost level first) — the
    /// constraint state [`with_temporal_order`] sets, exposed so the spec
    /// front-end can serialize a mapspace back to its declarative form.
    ///
    /// [`with_temporal_order`]: Mapspace::with_temporal_order
    pub fn temporal_order(&self) -> &[Vec<DimId>] {
        &self.temporal_order
    }

    /// Per-level spatially-eligible dimensions (see
    /// [`with_spatial_dims`](Mapspace::with_spatial_dims)).
    pub fn spatial_dims(&self) -> &[Vec<DimId>] {
        &self.spatial_dims
    }

    /// The `(level, tensor)` pairs bypassed in every generated mapping
    /// (see [`with_bypass`](Mapspace::with_bypass)), outermost first.
    pub fn bypasses(&self) -> Vec<(usize, TensorId)> {
        let mut out = Vec::new();
        for (l, keeps) in self.keep.iter().enumerate() {
            for (t, &kept) in keeps.iter().enumerate() {
                if !kept {
                    out.push((l, TensorId(t)));
                }
            }
        }
        out
    }

    /// The ordered loop slots of this mapspace (levels outermost-first;
    /// spatial slots before temporal slots within a level).
    fn slots(&self) -> Vec<Slot> {
        let mut slots = Vec::new();
        for l in 0..self.num_levels {
            for &d in &self.spatial_dims[l] {
                slots.push(Slot {
                    level: l,
                    dim: d,
                    spatial: true,
                });
            }
            for &d in &self.temporal_order[l] {
                slots.push(Slot {
                    level: l,
                    dim: d,
                    spatial: false,
                });
            }
        }
        slots
    }

    /// Builds the mapping corresponding to per-slot factors, dropping
    /// factor-1 loops. Returns `None` if a spatial fanout budget is
    /// exceeded. `keep` is the shared bypass configuration snapshot the
    /// iterator took from this space (see [`Mapping::with_shared_keep`]).
    fn mapping_from_factors(
        &self,
        slots: &[Slot],
        factors: &[u64],
        keep: &Arc<Vec<Vec<bool>>>,
    ) -> Option<Mapping> {
        if !self.fanout_ok(slots, factors) {
            return None;
        }
        let mut nests: Vec<Vec<Loop>> = vec![Vec::new(); self.num_levels];
        for (s, &f) in slots.iter().zip(factors) {
            if f > 1 {
                nests[s.level].push(if s.spatial {
                    Loop::spatial(s.dim, f)
                } else {
                    Loop::temporal(s.dim, f)
                });
            }
        }
        Some(Mapping::with_shared_keep(nests, Arc::clone(keep)))
    }

    /// Whether per-slot factors respect every level's spatial fanout
    /// budget — the exact validity test [`mapping_from_factors`] applies
    /// before building a mapping (shared with the shard census, which
    /// must count candidates without paying for their construction).
    ///
    /// [`mapping_from_factors`]: Mapspace::mapping_from_factors
    fn fanout_ok(&self, slots: &[Slot], factors: &[u64]) -> bool {
        for l in 0..self.num_levels {
            let spatial_product: u64 = slots
                .iter()
                .zip(factors)
                .filter(|(s, _)| s.level == l && s.spatial)
                .map(|(_, &f)| f)
                .product();
            if spatial_product > self.fanout[l] {
                return false;
            }
        }
        true
    }

    /// Lazy factorization streams for the dims in `range` (unit streams
    /// for dimensions that own no slots), each with index 0
    /// pre-materialized so a counter's initial state is addressable
    /// (every stream holds >= 1 factorization). Shared by the
    /// enumeration iterator, the shard census, and the shards
    /// themselves — one definition, so they cannot drift apart.
    fn dim_streams(
        &self,
        plan: &SlotPlan,
        range: std::ops::Range<usize>,
    ) -> Vec<FactorizationStream> {
        range
            .map(|d| {
                let mut stream =
                    FactorizationStream::new(self.dim_bounds[d], plan.per_dim[d].len());
                let first = stream.get(0);
                debug_assert!(first.is_some());
                stream
            })
            .collect()
    }

    /// Precomputes the slot layout shared by enumeration and sampling.
    /// `feasible` is false when a dimension with bound > 1 has no slot to
    /// live in (the space contains no mapping at all).
    fn plan(&self) -> SlotPlan {
        let slots = self.slots();
        let mut per_dim: Vec<Vec<usize>> = vec![Vec::new(); self.num_dims];
        for (i, s) in slots.iter().enumerate() {
            per_dim[s.dim.0].push(i);
        }
        let feasible =
            (0..self.num_dims).all(|d| !per_dim[d].is_empty() || self.dim_bounds[d] == 1);
        SlotPlan {
            slots,
            per_dim,
            feasible,
            keep: Arc::new(self.keep.clone()),
        }
    }

    /// Streaming deterministic enumeration of up to `limit` mappings.
    ///
    /// Candidates are produced lazily in the same order [`enumerate`]
    /// (a thin collecting wrapper) returns them, so exhaustive search
    /// over a combinatorially large mapspace needs O(1) memory in the
    /// candidate count.
    ///
    /// `limit` caps only the *output*: every candidate of the space is
    /// reachable given a large enough `limit` — a dimension with many
    /// factorizations never silently loses its tail (the seed capped the
    /// per-dimension lists at `limit` too, which made small limits skip
    /// late-but-valid candidates entirely).
    ///
    /// Memory note: each dimension's ordered factorization list is a
    /// *lazy memoizing stream* ([`FactorizationStream`]): factorizations
    /// materialize only as far as the mixed-radix counter reaches, so an
    /// enumeration stopped early (small `limit`, or a search that bails
    /// out) never allocates the full ordered-factor list of an
    /// astronomically composite bound up front.
    ///
    /// [`enumerate`]: Mapspace::enumerate
    pub fn iter_enumerate(&self, limit: usize) -> EnumerateIter<'_> {
        let plan = self.plan();
        let dims = self.dim_streams(&plan, 0..self.num_dims);
        let num_slots = plan.slots.len();
        EnumerateIter {
            space: self,
            choice: vec![0usize; self.num_dims],
            dims,
            factors: vec![1u64; num_slots],
            prev_factors: vec![1u64; num_slots],
            have_prev: false,
            produced: 0,
            limit,
            exhausted: !plan.feasible || limit == 0,
            plan,
        }
    }

    /// Streaming random sampling of up to `count` mappings (duplicates
    /// possible). Draws stop after `count` valid mappings or `20 × count`
    /// attempts, whichever comes first — identical semantics to
    /// [`sample`](Mapspace::sample), which collects this iterator.
    pub fn iter_sample<R: Rng>(&self, count: usize, rng: R) -> SampleIter<'_, R> {
        let plan = self.plan();
        SampleIter {
            space: self,
            plan,
            rng,
            produced: 0,
            attempts: 0,
            count,
        }
    }

    /// Enumerates up to `limit` mappings deterministically, materialized.
    ///
    /// Prefer [`iter_enumerate`](Mapspace::iter_enumerate) in search
    /// loops; this wrapper exists for callers that genuinely need the
    /// whole candidate list at once.
    pub fn enumerate(&self, limit: usize) -> Vec<Mapping> {
        self.iter_enumerate(limit).collect()
    }

    /// Samples `count` random mappings (duplicates possible),
    /// materialized. Prefer [`iter_sample`](Mapspace::iter_sample) in
    /// search loops.
    pub fn sample(&self, count: usize, rng: &mut impl Rng) -> Vec<Mapping> {
        self.iter_sample(count, rng).collect()
    }

    /// Streaming low-discrepancy (Halton) sampling of up to `count`
    /// mappings.
    ///
    /// Each draw assigns the prime factors of every dimension's bound to
    /// that dimension's loop slots using one radical-inverse coordinate
    /// per `(dimension, prime)` decision — consecutive sample indices
    /// therefore spread over the factorization space far more evenly
    /// than independent uniform draws, which cluster and repeat. The
    /// sequence is a pure function of `(space, count, seed)`:
    /// reproducible like [`iter_sample`](Mapspace::iter_sample), with
    /// the same draw-budget semantics (stops after `count` valid
    /// mappings or `20 × count` attempts).
    pub fn iter_sample_halton(&self, count: usize, seed: u64) -> HaltonSampleIter<'_> {
        let plan = self.plan();
        let dim_primes: Vec<Vec<u64>> = (0..self.num_dims)
            .map(|d| {
                if plan.per_dim[d].is_empty() {
                    Vec::new()
                } else {
                    prime_factors(self.dim_bounds[d])
                }
            })
            .collect();
        let decisions: usize = dim_primes.iter().map(Vec::len).sum();
        HaltonSampleIter {
            space: self,
            plan,
            bases: first_primes(decisions),
            dim_primes,
            // offset the sequence by the seed (kept small so radical
            // inverses stay cheap); +1 skips the all-zeros point
            offset: (seed % (1 << 16)) + 1,
            produced: 0,
            attempts: 0,
            count,
        }
    }

    /// Partitions [`iter_enumerate`]`(limit)`'s candidate stream into
    /// `n` disjoint, collectively exhaustive shards.
    ///
    /// The split runs along the *outermost* factorization dimensions:
    /// the slowest-varying counter digits form a block space (grown one
    /// dimension at a time until it holds at least `n` blocks), and
    /// shard `i` owns blocks `i, i + n, i + 2n, …` — so the union of
    /// all shards' candidates is exactly the unsharded stream, each
    /// candidate appearing in exactly one shard.
    ///
    /// Each shard yields `(`[`CandidateKey`]`, Mapping)` pairs whose
    /// keys are **globally comparable across shards**: sorting the union
    /// by key reproduces `iter_enumerate(limit)`'s exact sequence, and a
    /// sharded search can therefore reduce per-shard winners with the
    /// same deterministic `(objective, candidate position)` rule as the
    /// unsharded parallel search — bit-identical winners at any shard
    /// count.
    ///
    /// A finite `limit` is honored *exactly*: a cheap census pass
    /// (candidate generation without mapping construction) counts
    /// produced candidates per block so every shard knows which of its
    /// candidates fall inside the global first-`limit` prefix. The
    /// census costs one extra generation walk of at most `limit`
    /// candidates; pass `usize::MAX` to skip it when the whole space is
    /// wanted.
    ///
    /// Cost note: unlike the fully lazy [`iter_enumerate`], the *block*
    /// dimensions' ordered factorization lists are materialized eagerly
    /// (block decoding needs random access across shards). The suffix
    /// only grows until it holds `n` blocks, so this is bounded by the
    /// outermost dimension(s) actually split on — constrain the
    /// outermost temporal order if an astronomically composite bound
    /// ends up there.
    ///
    /// [`iter_enumerate`]: Mapspace::iter_enumerate
    pub fn shards(&self, n: usize, limit: usize) -> Vec<MapspaceShard<'_>> {
        let n = n.max(1);
        let plan = self.plan();
        if !plan.feasible || limit == 0 {
            return (0..n).map(|_| MapspaceShard::empty(self)).collect();
        }
        // grow the block space from the outermost dimension inward until
        // it offers at least n blocks (or swallows every dimension)
        let mut split = self.num_dims;
        let mut blocks: u64 = 1;
        let mut outer_rev: Vec<Vec<Vec<u64>>> = Vec::new();
        while split > 0 && blocks < n as u64 {
            split -= 1;
            let list = if plan.per_dim[split].is_empty() {
                vec![Vec::new()]
            } else {
                factorizations(self.dim_bounds[split], plan.per_dim[split].len(), None)
            };
            blocks = blocks.saturating_mul(list.len() as u64);
            outer_rev.push(list);
        }
        outer_rev.reverse(); // now ordered by dim index: split, split+1, …
        let outer_lists = Arc::new(outer_rev);
        let base = if limit < usize::MAX {
            Some(Arc::new(self.shard_census(
                &plan,
                split,
                &outer_lists,
                blocks,
                limit,
            )))
        } else {
            None
        };
        (0..n)
            .map(|s| {
                let plan = plan.clone();
                let inner = self.dim_streams(&plan, 0..split);
                let num_slots = plan.slots.len();
                MapspaceShard {
                    space: self,
                    plan,
                    split,
                    outer_lists: Arc::clone(&outer_lists),
                    blocks: (s as u64..blocks).step_by(n).collect(),
                    base: base.clone(),
                    limit,
                    inner,
                    cur_block: 0,
                    cur_block_id: 0,
                    outer_choice: Vec::new(),
                    choice: Vec::new(),
                    factors: vec![1u64; num_slots],
                    prev_factors: vec![1u64; num_slots],
                    have_prev: false,
                    rank: 0,
                    block_active: false,
                    done: false,
                }
            })
            .collect()
    }

    /// Counts produced (fanout-valid) candidates per block, in global
    /// stream order, saturating once the cumulative count reaches
    /// `limit`. Returns each block's *base*: the number of candidates
    /// the unsharded stream produces before the block starts (clamped to
    /// `limit`, so blocks entirely past the cutoff read `base == limit`).
    fn shard_census(
        &self,
        plan: &SlotPlan,
        split: usize,
        outer_lists: &[Vec<Vec<u64>>],
        blocks: u64,
        limit: usize,
    ) -> Vec<usize> {
        let mut inner = self.dim_streams(plan, 0..split);
        let mut factors = vec![1u64; plan.slots.len()];
        let mut base = Vec::with_capacity(blocks as usize);
        let mut cum = 0usize;
        for b in 0..blocks {
            base.push(cum.min(limit));
            if cum >= limit {
                continue;
            }
            let outer_choice = decode_block(b, outer_lists);
            let mut choice = vec![0usize; split];
            loop {
                {
                    let (inner, choice, outer_choice) = (&inner, &choice, &outer_choice);
                    plan.assemble(&mut factors, |d| {
                        if d < split {
                            inner[d].cached(choice[d])
                        } else {
                            &outer_lists[d - split][outer_choice[d - split]]
                        }
                    });
                }
                if self.fanout_ok(&plan.slots, &factors) {
                    cum += 1;
                    if cum >= limit {
                        break;
                    }
                }
                // advance the inner counter
                let mut d = 0;
                let wrapped = loop {
                    if d == split {
                        break true;
                    }
                    choice[d] += 1;
                    if inner[d].get(choice[d]).is_some() {
                        break false;
                    }
                    choice[d] = 0;
                    d += 1;
                };
                if wrapped {
                    break;
                }
            }
        }
        base
    }
}

/// Decodes a block id into per-suffix-dim factorization choices
/// (dimension `split` varies fastest, matching the global counter).
fn decode_block(mut id: u64, outer_lists: &[Vec<Vec<u64>>]) -> Vec<usize> {
    outer_lists
        .iter()
        .map(|list| {
            let len = list.len() as u64;
            let c = (id % len) as usize;
            id /= len;
            c
        })
        .collect()
}

/// Slot layout shared by the candidate iterators.
#[derive(Clone)]
struct SlotPlan {
    slots: Vec<Slot>,
    /// Slot indices owned by each dimension.
    per_dim: Vec<Vec<usize>>,
    /// False when some dimension with bound > 1 has no slot.
    feasible: bool,
    /// Bypass configuration shared by every generated mapping.
    keep: Arc<Vec<Vec<bool>>>,
}

impl SlotPlan {
    /// Writes the per-slot factors for one per-dim factorization choice.
    fn assemble<'a>(&self, factors: &mut [u64], mut pick: impl FnMut(usize) -> &'a [u64]) {
        factors.fill(1);
        for (d, slots) in self.per_dim.iter().enumerate() {
            let f = pick(d);
            for (j, &slot_idx) in slots.iter().enumerate() {
                factors[slot_idx] = f.get(j).copied().unwrap_or(1);
            }
        }
    }
}

/// Lazy deterministic mapspace enumeration
/// (see [`Mapspace::iter_enumerate`]).
pub struct EnumerateIter<'a> {
    space: &'a Mapspace,
    plan: SlotPlan,
    /// Per-dim lazy factorization streams; the iterator walks their
    /// cross product with a mixed-radix counter, materializing each
    /// stream only as far as the counter has reached.
    dims: Vec<FactorizationStream>,
    choice: Vec<usize>,
    /// Per-slot factor buffer, reused across candidates (the iterator
    /// allocates nothing per candidate beyond the mapping itself).
    factors: Vec<u64>,
    /// Factors of the previously *yielded* candidate (delta baseline).
    prev_factors: Vec<u64>,
    have_prev: bool,
    produced: usize,
    limit: usize,
    exhausted: bool,
}

impl EnumerateIter<'_> {
    /// Whether the underlying mixed-radix counter has walked the whole
    /// space (as opposed to the stream stopping at its output `limit`).
    /// Once the stream returns `None`, this tells a hybrid mapper for
    /// free whether its enumerated prefix *covered* the space — in which
    /// case every sampled draw would duplicate an enumerated candidate
    /// and the sample tail (with its `20 × samples` draw budget) can be
    /// skipped outright.
    ///
    /// Caveat: also `true` for an infeasible space or a zero limit
    /// (nothing left to walk either way); a caller distinguishing
    /// "covered by my prefix" from "never started" must check its limit
    /// was positive.
    pub fn space_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Like [`Iterator::next`], additionally reporting where the yielded
    /// candidate first differs from the previously yielded one (see
    /// [`ChangeDepth`]). The first candidate reports
    /// [`ChangeDepth::Reset`].
    pub fn next_delta(&mut self) -> Option<(ChangeDepth, Mapping)> {
        let num_dims = self.space.num_dims;
        while !self.exhausted && self.produced < self.limit {
            {
                let (plan, dims, choice, factors) =
                    (&self.plan, &self.dims, &self.choice, &mut self.factors);
                plan.assemble(factors, |d| dims[d].cached(choice[d]));
            }
            let candidate =
                self.space
                    .mapping_from_factors(&self.plan.slots, &self.factors, &self.plan.keep);
            // advance the mixed-radix counter, extending streams lazily
            let mut d = 0;
            loop {
                if d == num_dims {
                    self.exhausted = true;
                    break;
                }
                self.choice[d] += 1;
                if self.dims[d].get(self.choice[d]).is_some() {
                    break;
                }
                self.choice[d] = 0;
                d += 1;
            }
            if let Some(m) = candidate {
                let depth = if self.have_prev {
                    change_depth(&self.plan.slots, &self.prev_factors, &self.factors)
                } else {
                    ChangeDepth::Reset
                };
                std::mem::swap(&mut self.factors, &mut self.prev_factors);
                self.have_prev = true;
                self.produced += 1;
                return Some((depth, m));
            }
        }
        None
    }
}

impl Iterator for EnumerateIter<'_> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        self.next_delta().map(|(_, m)| m)
    }
}

/// Lazy random mapspace sampling (see [`Mapspace::iter_sample`]).
pub struct SampleIter<'a, R: Rng> {
    space: &'a Mapspace,
    plan: SlotPlan,
    rng: R,
    produced: usize,
    attempts: usize,
    count: usize,
}

impl<R: Rng> Iterator for SampleIter<'_, R> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        if !self.plan.feasible {
            return None;
        }
        let mut factors = vec![1u64; self.plan.slots.len()];
        while self.produced < self.count && self.attempts < self.count * 20 {
            self.attempts += 1;
            let draws: Vec<Vec<u64>> = (0..self.space.num_dims)
                .map(|d| {
                    if self.plan.per_dim[d].is_empty() {
                        Vec::new()
                    } else {
                        random_factorization(
                            self.space.dim_bounds[d],
                            self.plan.per_dim[d].len(),
                            &mut self.rng,
                        )
                    }
                })
                .collect();
            self.plan.assemble(&mut factors, |d| &draws[d]);
            if let Some(m) =
                self.space
                    .mapping_from_factors(&self.plan.slots, &factors, &self.plan.keep)
            {
                self.produced += 1;
                return Some(m);
            }
        }
        None
    }
}

/// Globally comparable position of a sharded candidate in the unsharded
/// enumeration order (see [`Mapspace::shards`]).
///
/// Sorting by `(block, rank)` reproduces [`Mapspace::iter_enumerate`]'s
/// exact output order: `block` is the mixed-radix value of the outermost
/// (slowest-varying) factorization choices and `rank` counts produced
/// candidates within the block — candidates of earlier blocks always
/// precede candidates of later blocks in the unsharded stream. Sampled
/// candidates (a hybrid search's tail) use [`CandidateKey::sampled`],
/// which orders after every enumerated candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CandidateKey {
    /// Block id (outermost factorization choices, mixed-radix).
    pub block: u64,
    /// Produced-candidate index within the block.
    pub rank: u64,
}

impl CandidateKey {
    /// The key of the `i`-th *sampled* candidate: greater than every
    /// enumerated key, ordered by draw index — matching the unsharded
    /// hybrid stream, where the sample tail follows the enumerated
    /// prefix.
    pub fn sampled(i: u64) -> Self {
        CandidateKey {
            block: u64::MAX,
            rank: i,
        }
    }
}

/// One shard of a sharded enumeration: a disjoint sub-stream of
/// [`Mapspace::iter_enumerate`]'s candidates tagged with globally
/// comparable [`CandidateKey`]s (see [`Mapspace::shards`]).
pub struct MapspaceShard<'a> {
    space: &'a Mapspace,
    plan: SlotPlan,
    /// Dim index where the block (suffix) space begins; dims below it
    /// form the within-block cross product.
    split: usize,
    /// Eager factorization lists of the suffix dims (shared by shards).
    outer_lists: Arc<Vec<Vec<Vec<u64>>>>,
    /// Block ids owned by this shard, ascending.
    blocks: Vec<u64>,
    /// Per-block global base index from the census (`None`: no output
    /// limit was requested).
    base: Option<Arc<Vec<usize>>>,
    limit: usize,
    /// Lazy factorization streams of the within-block dims.
    inner: Vec<FactorizationStream>,
    cur_block: usize,
    cur_block_id: u64,
    outer_choice: Vec<usize>,
    choice: Vec<usize>,
    /// Per-slot factor buffer, reused across candidates.
    factors: Vec<u64>,
    /// Factors of the previously yielded candidate (delta baseline).
    prev_factors: Vec<u64>,
    have_prev: bool,
    rank: u64,
    block_active: bool,
    done: bool,
}

impl<'a> MapspaceShard<'a> {
    /// A shard holding no candidates (infeasible space or zero limit).
    fn empty(space: &'a Mapspace) -> Self {
        MapspaceShard {
            space,
            plan: space.plan(),
            split: 0,
            outer_lists: Arc::new(Vec::new()),
            blocks: Vec::new(),
            base: None,
            limit: 0,
            inner: Vec::new(),
            cur_block: 0,
            cur_block_id: 0,
            outer_choice: Vec::new(),
            choice: Vec::new(),
            factors: Vec::new(),
            prev_factors: Vec::new(),
            have_prev: false,
            rank: 0,
            block_active: false,
            done: true,
        }
    }

    /// Like [`Iterator::next`], additionally reporting where the yielded
    /// candidate first differs from the shard's previously yielded one
    /// (see [`ChangeDepth`]). The shard's first candidate reports
    /// [`ChangeDepth::Reset`] — shard seams never assume a prefix, so a
    /// sharded evaluation stays bit-identical to the unsharded one.
    pub fn next_delta(&mut self) -> Option<(CandidateKey, ChangeDepth, Mapping)> {
        let (key, m) = self.next_inner()?;
        let depth = if self.have_prev {
            change_depth(&self.plan.slots, &self.prev_factors, &self.factors)
        } else {
            ChangeDepth::Reset
        };
        std::mem::swap(&mut self.factors, &mut self.prev_factors);
        self.have_prev = true;
        Some((key, depth, m))
    }

    /// Produces the next candidate, leaving its factors in
    /// `self.factors` for the delta computation.
    fn next_inner(&mut self) -> Option<(CandidateKey, Mapping)> {
        if self.done {
            return None;
        }
        loop {
            if !self.block_active {
                let Some(&b) = self.blocks.get(self.cur_block) else {
                    self.done = true;
                    return None;
                };
                if let Some(base) = &self.base {
                    // bases are nondecreasing in the block id: once one
                    // of this shard's blocks starts at the cutoff, all
                    // its later blocks do too
                    if base[b as usize] >= self.limit {
                        self.done = true;
                        return None;
                    }
                }
                self.cur_block_id = b;
                self.outer_choice = decode_block(b, &self.outer_lists);
                self.choice = vec![0usize; self.split];
                self.rank = 0;
                self.block_active = true;
            }
            {
                let (plan, inner, choice, outer_choice, outer_lists, split, factors) = (
                    &self.plan,
                    &self.inner,
                    &self.choice,
                    &self.outer_choice,
                    &self.outer_lists,
                    self.split,
                    &mut self.factors,
                );
                plan.assemble(factors, |d| {
                    if d < split {
                        inner[d].cached(choice[d])
                    } else {
                        &outer_lists[d - split][outer_choice[d - split]]
                    }
                });
            }
            let candidate =
                self.space
                    .mapping_from_factors(&self.plan.slots, &self.factors, &self.plan.keep);
            // advance the within-block counter
            let mut d = 0;
            let wrapped = loop {
                if d == self.split {
                    break true;
                }
                self.choice[d] += 1;
                if self.inner[d].get(self.choice[d]).is_some() {
                    break false;
                }
                self.choice[d] = 0;
                d += 1;
            };
            if wrapped {
                self.block_active = false;
                self.cur_block += 1;
            }
            if let Some(m) = candidate {
                if let Some(base) = &self.base {
                    // exact global output-limit semantics: this
                    // candidate's unsharded stream position
                    let global = base[self.cur_block_id as usize] + self.rank as usize;
                    if global >= self.limit {
                        // every remaining candidate of this shard sits
                        // even later in the stream
                        self.done = true;
                        return None;
                    }
                }
                let key = CandidateKey {
                    block: self.cur_block_id,
                    rank: self.rank,
                };
                self.rank += 1;
                return Some((key, m));
            }
        }
    }
}

impl Iterator for MapspaceShard<'_> {
    type Item = (CandidateKey, Mapping);

    fn next(&mut self) -> Option<(CandidateKey, Mapping)> {
        self.next_delta().map(|(key, _, m)| (key, m))
    }
}

/// Lazy low-discrepancy mapspace sampling
/// (see [`Mapspace::iter_sample_halton`]).
pub struct HaltonSampleIter<'a> {
    space: &'a Mapspace,
    plan: SlotPlan,
    /// Per-dim prime factors (with multiplicity) of the dimension bound.
    dim_primes: Vec<Vec<u64>>,
    /// One distinct Halton base per `(dim, prime)` decision.
    bases: Vec<u64>,
    offset: u64,
    produced: usize,
    attempts: usize,
    count: usize,
}

impl Iterator for HaltonSampleIter<'_> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        if !self.plan.feasible {
            return None;
        }
        let mut factors = vec![1u64; self.plan.slots.len()];
        while self.produced < self.count && self.attempts < self.count * 20 {
            let index = self.offset + self.attempts as u64;
            self.attempts += 1;
            let mut base_idx = 0;
            let draws: Vec<Vec<u64>> = (0..self.space.num_dims)
                .map(|d| {
                    let k = self.plan.per_dim[d].len();
                    if k == 0 {
                        return Vec::new();
                    }
                    let mut f = vec![1u64; k];
                    for &p in &self.dim_primes[d] {
                        // one low-discrepancy coordinate per prime-factor
                        // placement: stratified slot assignment
                        let h = radical_inverse(index, self.bases[base_idx]);
                        base_idx += 1;
                        let pos = ((h * k as f64) as usize).min(k - 1);
                        f[pos] *= p;
                    }
                    f
                })
                .collect();
            self.plan.assemble(&mut factors, |d| &draws[d]);
            if let Some(m) =
                self.space
                    .mapping_from_factors(&self.plan.slots, &factors, &self.plan.keep)
            {
                self.produced += 1;
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};

    fn arch() -> Architecture {
        ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap()
    }

    #[test]
    fn factorization_counts() {
        assert_eq!(factorizations(1, 3, None), vec![vec![1, 1, 1]]);
        assert_eq!(factorizations(6, 2, None).len(), 4); // 1*6, 2*3, 3*2, 6*1
        assert_eq!(factorizations(8, 3, None).len(), 10);
    }

    #[test]
    fn factorization_products_correct() {
        for f in factorizations(24, 3, None) {
            assert_eq!(f.iter().product::<u64>(), 24);
        }
    }

    #[test]
    fn factorization_limit_respected() {
        assert_eq!(factorizations(64, 4, Some(5)).len(), 5);
    }

    #[test]
    fn random_factorization_products() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let f = random_factorization(36, 3, &mut rng);
            assert_eq!(f.iter().product::<u64>(), 36);
        }
    }

    #[test]
    fn enumerate_produces_valid_mappings() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let maps = space.enumerate(200);
        assert!(!maps.is_empty());
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn spatial_budget_enforced() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch(); // fanout below Buf is 4
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(1)]);
        let maps = space.enumerate(5000);
        for m in &maps {
            assert!(m.spatial_fanout_at(1) <= 4);
            m.validate(&e, &a).unwrap();
        }
        // some mapping should actually use the parallelism
        assert!(maps.iter().any(|m| m.spatial_fanout_at(1) == 4));
    }

    #[test]
    fn space_exhausted_distinguishes_cover_from_cap() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        // with and without spatial constraints (fanout-invalid combos
        // past the last valid candidate must still count as exhaustion)
        for space in [
            Mapspace::all_temporal(&e, &a),
            Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(1)]),
        ] {
            let total = space.iter_enumerate(usize::MAX).count();
            for (cap, covered) in [
                (total - 1, false), // stopped by the cap
                (total, true),      // cap == space: counter wrapped
                (total + 1, true),
                (usize::MAX, true),
            ] {
                let mut it = space.iter_enumerate(cap);
                while it.next_delta().is_some() {}
                assert_eq!(it.space_exhausted(), covered, "cap {cap} of {total}");
            }
        }
        // infeasible space (dim with bound > 1, no slots): exhausted
        // from the start, nothing to enumerate or sample
        let empty = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![])
            .with_temporal_order(1, vec![]);
        let mut it = empty.iter_enumerate(usize::MAX);
        assert!(it.next_delta().is_none());
        assert!(it.space_exhausted());
    }

    #[test]
    fn accessors_expose_constraint_state() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![DimId(2), DimId(0)])
            .with_spatial_dims(1, vec![DimId(1)])
            .with_bypass(1, TensorId(2));
        assert_eq!(space.temporal_order()[0], vec![DimId(2), DimId(0)]);
        assert_eq!(space.temporal_order()[1].len(), 3);
        assert_eq!(space.spatial_dims()[0], Vec::<DimId>::new());
        assert_eq!(space.spatial_dims()[1], vec![DimId(1)]);
        assert_eq!(space.bypasses(), vec![(1, TensorId(2))]);
    }

    #[test]
    fn bypass_propagates_to_mappings() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_bypass(1, TensorId(1));
        let maps = space.enumerate(10);
        assert!(!maps.is_empty());
        for m in &maps {
            assert!(!m.keeps(1, TensorId(1)));
            assert!(m.keeps(1, TensorId(0)));
        }
    }

    #[test]
    fn sampling_yields_valid_mappings() {
        let e = Einsum::matmul(16, 16, 16);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let maps = space.sample(50, &mut rng);
        assert_eq!(maps.len(), 50);
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn iter_enumerate_matches_collected_enumerate() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(1)]);
        for limit in [1, 7, 100, 5000] {
            let streamed: Vec<_> = space.iter_enumerate(limit).collect();
            assert_eq!(streamed, space.enumerate(limit), "limit={limit}");
        }
    }

    #[test]
    fn iter_enumerate_is_lazy_and_resumable() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let all = space.enumerate(1000);
        // taking a prefix then continuing yields the same stream
        let mut it = space.iter_enumerate(1000);
        let head: Vec<_> = it.by_ref().take(5).collect();
        let tail: Vec<_> = it.collect();
        assert_eq!(head, all[..5].to_vec());
        assert_eq!(tail, all[5..].to_vec());
    }

    #[test]
    fn iter_sample_matches_collected_sample() {
        let e = Einsum::matmul(16, 16, 16);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(0)]);
        let collected = space.sample(40, &mut StdRng::seed_from_u64(11));
        let streamed: Vec<_> = space.iter_sample(40, StdRng::seed_from_u64(11)).collect();
        assert_eq!(streamed, collected);
    }

    #[test]
    fn enumeration_limit_does_not_truncate_dimension_tails() {
        // m=64 owns two slots: an outer temporal and an inner spatial
        // bounded by fanout 4. The lexicographic factorization list
        // [1,64], [2,32], ... puts the only fanout-respecting splits at
        // the tail ([16,4], [32,2], [64,1]); the seed's per-dimension cap
        // of `limit` truncated the list to its invalid head, so a small
        // limit produced nothing at all.
        let e = Einsum::matmul(64, 1, 1);
        let a = arch(); // fanout below Buf is 4
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![DimId(0)])
            .with_temporal_order(1, vec![])
            .with_spatial_dims(1, vec![DimId(0)]);
        let maps = space.enumerate(3);
        assert_eq!(maps.len(), 3, "tail factorizations must be reachable");
        for m in &maps {
            m.validate(&e, &a).unwrap();
        }
    }

    #[test]
    fn factorization_stream_matches_eager_list() {
        for (n, k) in [(1, 1), (1, 3), (6, 2), (8, 3), (24, 3), (64, 4), (97, 2)] {
            let eager = factorizations(n, k, None);
            let mut stream = FactorizationStream::new(n, k);
            let mut lazy = Vec::new();
            let mut i = 0;
            while let Some(f) = stream.get(i) {
                lazy.push(f.to_vec());
                i += 1;
            }
            assert_eq!(lazy, eager, "n={n} k={k}");
            // exhausted stream stays exhausted and random access works
            assert!(stream.get(i).is_none());
            assert_eq!(stream.get(0).unwrap(), eager[0].as_slice());
        }
    }

    #[test]
    fn factorization_stream_unit_radix() {
        let mut s = FactorizationStream::new(7, 0);
        assert_eq!(s.get(0).unwrap(), &[] as &[u64]);
        assert!(s.get(1).is_none());
    }

    #[test]
    fn enumeration_materializes_factorizations_lazily() {
        // m=64 in a single temporal slot per level: 64 has many ordered
        // 2-factorizations, but drawing one candidate must not build the
        // whole list
        let e = Einsum::matmul(64, 1, 1);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let mut it = space.iter_enumerate(usize::MAX);
        let first = it.next();
        assert!(first.is_some());
        let eager = factorizations(64, 2, None).len();
        assert!(
            it.dims[0].materialized() <= 2,
            "one candidate materialized {} of {} factorizations",
            it.dims[0].materialized(),
            eager
        );
    }

    #[test]
    fn shards_partition_the_enumeration_exactly() {
        let e = Einsum::matmul(8, 8, 8);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(1)]);
        for limit in [1, 7, 100, 5000, usize::MAX] {
            let reference: Vec<Mapping> = space.iter_enumerate(limit.min(1_000_000)).collect();
            for n in [1, 2, 3, 7] {
                let mut tagged: Vec<(CandidateKey, Mapping)> = Vec::new();
                for shard in space.shards(n, limit) {
                    tagged.extend(shard);
                }
                // keys are unique (disjointness)
                let mut keys: Vec<CandidateKey> = tagged.iter().map(|(k, _)| *k).collect();
                keys.sort();
                keys.dedup();
                assert_eq!(keys.len(), tagged.len(), "n={n} limit={limit}");
                // sorting by key reproduces the unsharded stream exactly
                tagged.sort_by_key(|(k, _)| *k);
                let merged: Vec<Mapping> = tagged.into_iter().map(|(_, m)| m).collect();
                assert_eq!(merged, reference, "n={n} limit={limit}");
            }
        }
    }

    #[test]
    fn shards_of_infeasible_space_are_empty() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![])
            .with_temporal_order(1, vec![]);
        for shard in space.shards(3, 100) {
            assert_eq!(shard.count(), 0);
        }
    }

    #[test]
    fn sampled_candidate_keys_order_after_enumerated_keys() {
        let enumerated = CandidateKey {
            block: u64::MAX - 1,
            rank: u64::MAX,
        };
        assert!(CandidateKey::sampled(0) > enumerated);
        assert!(CandidateKey::sampled(0) < CandidateKey::sampled(1));
    }

    #[test]
    fn halton_samples_are_valid_and_deterministic() {
        let e = Einsum::matmul(16, 16, 16);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a).with_spatial_dims(1, vec![DimId(0)]);
        let first: Vec<Mapping> = space.iter_sample_halton(50, 9).collect();
        let second: Vec<Mapping> = space.iter_sample_halton(50, 9).collect();
        assert_eq!(first, second, "halton draws must be reproducible");
        assert!(!first.is_empty());
        for m in &first {
            m.validate(&e, &a).unwrap();
        }
        // a different seed shifts the sequence
        let other: Vec<Mapping> = space.iter_sample_halton(50, 10).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn halton_covers_more_distinct_candidates_than_uniform() {
        // the low-discrepancy point is even coverage: over the same draw
        // budget the Halton tail should reach at least as many distinct
        // factorizations as independent uniform draws
        let e = Einsum::matmul(36, 36, 36);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a);
        let halton: std::collections::HashSet<Mapping> = space.iter_sample_halton(200, 3).collect();
        let uniform: std::collections::HashSet<Mapping> =
            space.iter_sample(200, StdRng::seed_from_u64(3)).collect();
        assert!(
            halton.len() + 10 >= uniform.len(),
            "halton {} vs uniform {}",
            halton.len(),
            uniform.len()
        );
    }

    #[test]
    fn infeasible_space_yields_nothing() {
        // no slots for any dim but nonunit bounds -> empty space
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        let space = Mapspace::all_temporal(&e, &a)
            .with_temporal_order(0, vec![])
            .with_temporal_order(1, vec![]);
        assert_eq!(space.iter_enumerate(10).count(), 0);
        assert_eq!(space.iter_sample(10, StdRng::seed_from_u64(0)).count(), 0);
        assert_eq!(space.iter_sample_halton(10, 0).count(), 0);
    }

    #[test]
    fn restricted_order_respected() {
        let e = Einsum::matmul(4, 4, 4);
        let a = arch();
        // only k may tile at the buffer level
        let space = Mapspace::all_temporal(&e, &a).with_temporal_order(1, vec![DimId(2)]);
        for m in space.enumerate(500) {
            for lp in &m.nests()[1] {
                assert_eq!(lp.dim, DimId(2));
            }
        }
    }
}
