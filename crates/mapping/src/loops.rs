//! Loop nests: the mapping data structure and its validation.

use serde::{Deserialize, Serialize};
use sparseloop_arch::Architecture;
use sparseloop_tensor::einsum::{DimId, Einsum, TensorId};
use std::fmt;
use std::sync::Arc;

/// Whether a loop iterates in time or across spatial instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// `for` — consecutive time steps.
    Temporal,
    /// `parallel-for` — simultaneous spatial instances.
    Spatial,
}

/// One loop of the nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Loop {
    /// The iteration dimension this loop tiles.
    pub dim: DimId,
    /// Number of iterations (the tiling factor at this position).
    pub bound: u64,
    /// Temporal or spatial.
    pub kind: LoopKind,
}

impl Loop {
    /// A temporal loop.
    pub fn temporal(dim: DimId, bound: u64) -> Self {
        Loop {
            dim,
            bound,
            kind: LoopKind::Temporal,
        }
    }

    /// A spatial (parallel-for) loop.
    pub fn spatial(dim: DimId, bound: u64) -> Self {
        Loop {
            dim,
            bound,
            kind: LoopKind::Spatial,
        }
    }
}

/// Validation failures for [`Mapping::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// Mapping has a different number of level nests than the
    /// architecture has storage levels.
    LevelCountMismatch {
        /// Nests in the mapping.
        mapping: usize,
        /// Storage levels in the architecture.
        arch: usize,
    },
    /// The per-dim product of loop bounds does not equal the dimension's
    /// workload bound.
    BadFactorization {
        /// Offending dimension.
        dim: DimId,
        /// Product of the mapping's loop bounds for this dim.
        product: u64,
        /// The workload's bound.
        expected: u64,
    },
    /// Product of spatial loop bounds at a level exceeds the hardware
    /// fanout below that level.
    SpatialOverflow {
        /// Storage level index (0 = outermost).
        level: usize,
        /// Product of spatial bounds at this level.
        product: u64,
        /// Hardware fanout below this level.
        fanout: u64,
    },
    /// A tensor is stored at no level at all.
    TensorNowhere(TensorId),
    /// The outermost level must keep (not bypass) every tensor — it plays
    /// the role of backing storage.
    OutermostBypassed(TensorId),
    /// A loop bound of zero is meaningless.
    ZeroBound {
        /// Storage level index.
        level: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::LevelCountMismatch { mapping, arch } => {
                write!(
                    f,
                    "mapping has {mapping} level nests but architecture has {arch}"
                )
            }
            MappingError::BadFactorization {
                dim,
                product,
                expected,
            } => write!(
                f,
                "dim {} loop bounds multiply to {product}, workload bound is {expected}",
                dim.0
            ),
            MappingError::SpatialOverflow {
                level,
                product,
                fanout,
            } => write!(
                f,
                "spatial bounds at level {level} multiply to {product}, exceeding fanout {fanout}"
            ),
            MappingError::TensorNowhere(t) => {
                write!(f, "tensor {} is bypassed at every level", t.0)
            }
            MappingError::OutermostBypassed(t) => {
                write!(
                    f,
                    "tensor {} bypassed at the outermost (backing) level",
                    t.0
                )
            }
            MappingError::ZeroBound { level } => {
                write!(f, "zero loop bound at level {level}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A complete schedule: per-level loop nests plus bypass choices.
///
/// `nests[0]` belongs to the outermost storage level; loops within a nest
/// are ordered outermost-first. `keep[l][t]` is `true` when storage level
/// `l` holds tensor `t` (i.e. the tensor is *not* bypassed there).
///
/// The keep matrix is reference-counted: every candidate a [`Mapspace`]
/// generates shares one bypass configuration, so cloning it per
/// candidate would be pure overhead on the mapper's hot path (and inside
/// the parallel search's serialized stream section).
///
/// [`Mapspace`]: crate::Mapspace
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    nests: Vec<Vec<Loop>>,
    keep: Arc<Vec<Vec<bool>>>,
}

/// Hashes by content (nests plus the keep matrix behind the `Arc`),
/// consistent with the derived `PartialEq` — two mappings with equal
/// schedules hash alike even when their keep matrices are distinct
/// allocations. Enables the mapper's hybrid-strategy dedup set.
impl std::hash::Hash for Mapping {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.nests.hash(state);
        (*self.keep).hash(state);
    }
}

impl Mapping {
    /// Builds a mapping from raw parts; prefer [`MappingBuilder`].
    pub fn new(nests: Vec<Vec<Loop>>, keep: Vec<Vec<bool>>) -> Self {
        Mapping::with_shared_keep(nests, Arc::new(keep))
    }

    /// Builds a mapping sharing an existing keep matrix (used by mapspace
    /// candidate generation to avoid per-candidate clones).
    pub fn with_shared_keep(nests: Vec<Vec<Loop>>, keep: Arc<Vec<Vec<bool>>>) -> Self {
        assert_eq!(nests.len(), keep.len(), "nest/keep level counts differ");
        Mapping { nests, keep }
    }

    /// Per-level loop nests, outermost level first.
    pub fn nests(&self) -> &[Vec<Loop>] {
        &self.nests
    }

    /// Whether storage level `level` keeps tensor `t`.
    pub fn keeps(&self, level: usize, t: TensorId) -> bool {
        self.keep[level][t.0]
    }

    /// The keep matrix (`[level][tensor]`).
    pub fn keep_matrix(&self) -> &[Vec<bool>] {
        &self.keep
    }

    /// Number of storage levels the mapping covers.
    pub fn num_levels(&self) -> usize {
        self.nests.len()
    }

    /// All loops flattened outermost-first, tagged with their level.
    pub fn flattened(&self) -> Vec<(usize, Loop)> {
        self.nests
            .iter()
            .enumerate()
            .flat_map(|(l, nest)| nest.iter().map(move |&lp| (l, lp)))
            .collect()
    }

    /// Product of spatial loop bounds at `level`.
    pub fn spatial_fanout_at(&self, level: usize) -> u64 {
        self.nests[level]
            .iter()
            .filter(|l| l.kind == LoopKind::Spatial)
            .map(|l| l.bound)
            .product()
    }

    /// Product of *all* spatial bounds (total parallelism used).
    pub fn total_spatial_fanout(&self) -> u64 {
        (0..self.nests.len())
            .map(|l| self.spatial_fanout_at(l))
            .product()
    }

    /// The levels that keep tensor `t`, outermost first.
    pub fn storage_chain(&self, t: TensorId) -> Vec<usize> {
        (0..self.keep.len())
            .filter(|&l| self.keep[l][t.0])
            .collect()
    }

    /// Per-dimension tile bounds covered by all loops strictly *inside*
    /// flattened position `pos` (i.e. the sub-nest footprint bounds).
    /// `num_dims` is the workload dimension count.
    pub fn tile_bounds_inside(&self, pos: usize, num_dims: usize) -> Vec<u64> {
        let flat = self.flattened();
        let mut bounds = vec![1u64; num_dims];
        for (_, lp) in flat.iter().skip(pos) {
            bounds[lp.dim.0] *= lp.bound;
        }
        bounds
    }

    /// Validates this mapping against a workload and architecture.
    ///
    /// # Errors
    /// Returns the first violated invariant; see [`MappingError`].
    pub fn validate(&self, einsum: &Einsum, arch: &Architecture) -> Result<(), MappingError> {
        self.validate_with(einsum, arch, &mut Vec::new())
    }

    /// [`validate`](Mapping::validate) with a caller-owned per-dimension
    /// product buffer, so callers validating many mappings (the search
    /// hot path) allocate nothing per call.
    pub fn validate_with(
        &self,
        einsum: &Einsum,
        arch: &Architecture,
        products: &mut Vec<u64>,
    ) -> Result<(), MappingError> {
        if self.nests.len() != arch.num_levels() {
            return Err(MappingError::LevelCountMismatch {
                mapping: self.nests.len(),
                arch: arch.num_levels(),
            });
        }
        for (l, nest) in self.nests.iter().enumerate() {
            if nest.iter().any(|lp| lp.bound == 0) {
                return Err(MappingError::ZeroBound { level: l });
            }
        }
        // factorization per dim: one pass over the nests accumulating
        // every dimension's loop-bound product
        let num_dims = einsum.dims().len();
        products.clear();
        products.resize(num_dims, 1u64);
        for nest in &self.nests {
            for lp in nest {
                if lp.dim.0 < num_dims {
                    products[lp.dim.0] = products[lp.dim.0].saturating_mul(lp.bound);
                }
            }
        }
        for (d, dim) in einsum.dims().iter().enumerate() {
            if products[d] != dim.bound {
                return Err(MappingError::BadFactorization {
                    dim: DimId(d),
                    product: products[d],
                    expected: dim.bound,
                });
            }
        }
        // spatial fanout per level
        for l in 0..self.nests.len() {
            let product = self.spatial_fanout_at(l);
            let fanout = arch.fanout_below(sparseloop_arch::LevelId(l));
            if product > fanout {
                return Err(MappingError::SpatialOverflow {
                    level: l,
                    product,
                    fanout,
                });
            }
        }
        // storage chains
        for t in 0..einsum.tensors().len() {
            let tid = TensorId(t);
            if !self.keep[0][t] {
                return Err(MappingError::OutermostBypassed(tid));
            }
            if self.storage_chain(tid).is_empty() {
                return Err(MappingError::TensorNowhere(tid));
            }
        }
        Ok(())
    }

    /// Pretty-prints the nest with dimension names from the workload
    /// (Fig. 6-style).
    pub fn render(&self, einsum: &Einsum, arch: &Architecture) -> String {
        let mut out = String::new();
        let mut indent = 0usize;
        for (l, nest) in self.nests.iter().enumerate() {
            let name = if l < arch.num_levels() {
                arch.levels()[l].name.as_str()
            } else {
                "?"
            };
            out.push_str(&format!("{}[{}]\n", "  ".repeat(indent), name));
            indent += 1;
            for lp in nest {
                let kw = match lp.kind {
                    LoopKind::Temporal => "for",
                    LoopKind::Spatial => "parallel-for",
                };
                out.push_str(&format!(
                    "{}{} {} in 0..{}\n",
                    "  ".repeat(indent),
                    kw,
                    einsum.dims()[lp.dim.0].name,
                    lp.bound
                ));
                indent += 1;
            }
        }
        out
    }
}

/// Incremental builder for [`Mapping`].
///
/// # Example
/// ```
/// use sparseloop_mapping::MappingBuilder;
/// use sparseloop_tensor::einsum::{DimId, Einsum};
///
/// let e = Einsum::matmul(4, 4, 4);
/// let (m, n, k) = (DimId(0), DimId(1), DimId(2));
/// let mapping = MappingBuilder::new(2, 3)
///     .temporal(0, m, 4)          // DRAM level: for m in 0..4
///     .spatial(0, n, 4)           //             parallel-for n in 0..4
///     .temporal(1, k, 4)          // Buffer level: for k in 0..4
///     .build();
/// assert_eq!(mapping.num_levels(), 2);
/// assert_eq!(mapping.total_spatial_fanout(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MappingBuilder {
    nests: Vec<Vec<Loop>>,
    keep: Vec<Vec<bool>>,
}

impl MappingBuilder {
    /// Starts a mapping over `levels` storage levels and `tensors`
    /// tensors, with every tensor kept at every level.
    pub fn new(levels: usize, tensors: usize) -> Self {
        MappingBuilder {
            nests: vec![Vec::new(); levels],
            keep: vec![vec![true; tensors]; levels],
        }
    }

    /// Appends a temporal loop at `level` (loops are added
    /// outermost-first within the level).
    pub fn temporal(mut self, level: usize, dim: DimId, bound: u64) -> Self {
        self.nests[level].push(Loop::temporal(dim, bound));
        self
    }

    /// Appends a spatial loop at `level`.
    pub fn spatial(mut self, level: usize, dim: DimId, bound: u64) -> Self {
        self.nests[level].push(Loop::spatial(dim, bound));
        self
    }

    /// Marks tensor `t` as bypassed (not stored) at `level`.
    pub fn bypass(mut self, level: usize, t: TensorId) -> Self {
        self.keep[level][t.0] = false;
        self
    }

    /// Finishes the mapping.
    pub fn build(self) -> Mapping {
        Mapping::new(self.nests, self.keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};

    fn arch2(fanout: u64) -> Architecture {
        ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf").with_instances(1))
            .compute(ComputeSpec::new("MAC", fanout))
            .build()
            .unwrap()
    }

    fn matmul_mapping() -> (Einsum, Mapping) {
        let e = Einsum::matmul(4, 4, 8);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 4)
            .temporal(0, n, 2)
            .spatial(1, n, 2)
            .temporal(1, k, 8)
            .build();
        (e, map)
    }

    #[test]
    fn valid_mapping_passes() {
        let (e, map) = matmul_mapping();
        map.validate(&e, &arch2(2)).unwrap();
    }

    #[test]
    fn bad_factorization_detected() {
        let e = Einsum::matmul(4, 4, 8);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 4)
            .temporal(0, n, 4)
            .temporal(1, k, 4) // should be 8
            .build();
        let err = map.validate(&e, &arch2(1)).unwrap_err();
        assert!(matches!(
            err,
            MappingError::BadFactorization { dim: DimId(2), .. }
        ));
    }

    #[test]
    fn spatial_overflow_detected() {
        let (e, map) = matmul_mapping();
        let err = map.validate(&e, &arch2(1)).unwrap_err();
        assert!(matches!(
            err,
            MappingError::SpatialOverflow { level: 1, .. }
        ));
    }

    #[test]
    fn level_count_mismatch_detected() {
        let (e, _) = matmul_mapping();
        let map = MappingBuilder::new(1, 3).build();
        let err = map.validate(&e, &arch2(1)).unwrap_err();
        assert!(matches!(err, MappingError::LevelCountMismatch { .. }));
    }

    #[test]
    fn outermost_bypass_rejected() {
        let e = Einsum::matmul(2, 2, 2);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 2)
            .temporal(0, n, 2)
            .temporal(1, k, 2)
            .bypass(0, TensorId(1))
            .build();
        let err = map.validate(&e, &arch2(1)).unwrap_err();
        assert_eq!(err, MappingError::OutermostBypassed(TensorId(1)));
    }

    #[test]
    fn storage_chain_respects_bypass() {
        let (_, map) = matmul_mapping();
        assert_eq!(map.storage_chain(TensorId(0)), vec![0, 1]);
        let map2 = {
            let mut b = MappingBuilder::new(3, 3);
            b = b.bypass(1, TensorId(0));
            b.build()
        };
        assert_eq!(map2.storage_chain(TensorId(0)), vec![0, 2]);
    }

    #[test]
    fn tile_bounds_inside_products() {
        let (_, map) = matmul_mapping();
        // flattened: m4, n2 | n2s, k8
        assert_eq!(map.tile_bounds_inside(0, 3), vec![4, 4, 8]);
        assert_eq!(map.tile_bounds_inside(2, 3), vec![1, 2, 8]);
        assert_eq!(map.tile_bounds_inside(4, 3), vec![1, 1, 1]);
    }

    #[test]
    fn render_contains_loop_keywords() {
        let (e, map) = matmul_mapping();
        let txt = map.render(&e, &arch2(2));
        assert!(txt.contains("for m in 0..4"));
        assert!(txt.contains("parallel-for n in 0..2"));
        assert!(txt.contains("[DRAM]"));
    }

    #[test]
    fn flattened_order_outermost_first() {
        let (_, map) = matmul_mapping();
        let flat = map.flattened();
        assert_eq!(flat.len(), 4);
        assert_eq!(flat[0].0, 0);
        assert_eq!(flat[3].0, 1);
    }

    #[test]
    fn zero_bound_rejected() {
        let e = Einsum::matmul(2, 2, 2);
        let map = MappingBuilder::new(2, 3).temporal(0, DimId(0), 0).build();
        let err = map.validate(&e, &arch2(1)).unwrap_err();
        assert!(matches!(err, MappingError::ZeroBound { level: 0 }));
    }
}
