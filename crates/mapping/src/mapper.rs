//! The mapper: searches a mapspace for the best mapping under a
//! caller-supplied objective.
//!
//! The objective is a closure `Fn(&Mapping) -> Option<f64>` returning the
//! metric to *minimize* (EDP, latency, energy, ...) or `None` when the
//! mapping is invalid (e.g. fails the capacity check in Sparseloop's
//! micro-architectural step). Keeping the evaluator abstract lets the
//! mapping crate stay independent of the model crate, mirroring the
//! paper's separation between mapspace construction and evaluation.

use crate::loops::Mapping;
use crate::mapspace::Mapspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Statistics from one mapper run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Mappings generated from the mapspace.
    pub generated: usize,
    /// Mappings the objective accepted (returned `Some`).
    pub evaluated: usize,
    /// Mappings rejected as invalid (objective returned `None`).
    pub invalid: usize,
}

/// Outcome of a mapper search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its objective value.
    pub objective: f64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Mapspace search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapper {
    /// Enumerate deterministically up to a candidate cap.
    Exhaustive {
        /// Maximum number of candidates to enumerate.
        limit: usize,
    },
    /// Draw random candidates with a seeded RNG (reproducible).
    Random {
        /// Number of samples to draw.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Enumerate up to a cap, then top up with random samples — a simple
    /// hybrid that works well on medium mapspaces.
    Hybrid {
        /// Enumeration cap.
        enumerate: usize,
        /// Additional random samples.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Mapper {
    /// Runs the search, returning the best mapping by the minimized
    /// objective, or `None` when no candidate evaluates successfully.
    pub fn search<F>(&self, space: &Mapspace, mut objective: F) -> Option<SearchResult>
    where
        F: FnMut(&Mapping) -> Option<f64>,
    {
        let candidates: Vec<Mapping> = match *self {
            Mapper::Exhaustive { limit } => space.enumerate(limit),
            Mapper::Random { samples, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                space.sample(samples, &mut rng)
            }
            Mapper::Hybrid { enumerate, samples, seed } => {
                let mut c = space.enumerate(enumerate);
                let mut rng = StdRng::seed_from_u64(seed);
                c.extend(space.sample(samples, &mut rng));
                c
            }
        };
        let mut stats = SearchStats {
            generated: candidates.len(),
            ..SearchStats::default()
        };
        let mut best: Option<(Mapping, f64)> = None;
        for m in candidates {
            match objective(&m) {
                Some(v) => {
                    stats.evaluated += 1;
                    let better = best.as_ref().map(|(_, b)| v < *b).unwrap_or(true);
                    if better {
                        best = Some((m, v));
                    }
                }
                None => stats.invalid += 1,
            }
        }
        best.map(|(mapping, objective)| SearchResult { mapping, objective, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
    use sparseloop_tensor::einsum::Einsum;

    fn setup() -> Mapspace {
        let e = Einsum::matmul(8, 8, 8);
        let a = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        Mapspace::all_temporal(&e, &a)
    }

    /// A toy objective: prefer large innermost-level loop products
    /// (maximizing on-chip work per DRAM visit).
    fn toy_objective(m: &Mapping) -> Option<f64> {
        let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
        Some(1.0 / inner as f64)
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 100_000 }
            .search(&space, toy_objective)
            .unwrap();
        // optimum puts everything innermost: product 512
        assert!((r.objective - 1.0 / 512.0).abs() < 1e-12);
        assert!(r.stats.evaluated > 0);
    }

    #[test]
    fn random_search_reproducible() {
        let space = setup();
        let m = Mapper::Random { samples: 64, seed: 42 };
        let a = m.search(&space, toy_objective).unwrap();
        let b = m.search(&space, toy_objective).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn invalid_candidates_counted() {
        let space = setup();
        let mut calls = 0usize;
        let r = Mapper::Exhaustive { limit: 50 }
            .search(&space, |m| {
                calls += 1;
                if calls % 2 == 0 {
                    None
                } else {
                    toy_objective(m)
                }
            })
            .unwrap();
        assert!(r.stats.invalid > 0);
        assert_eq!(r.stats.invalid + r.stats.evaluated, r.stats.generated);
    }

    #[test]
    fn all_invalid_returns_none() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 10 }.search(&space, |_| None);
        assert!(r.is_none());
    }

    #[test]
    fn hybrid_covers_both_sources() {
        let space = setup();
        let r = Mapper::Hybrid { enumerate: 10, samples: 10, seed: 1 }
            .search(&space, toy_objective)
            .unwrap();
        assert_eq!(r.stats.generated, 20);
    }
}
