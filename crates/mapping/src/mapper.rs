//! The mapper: searches a mapspace for the best mapping under a
//! caller-supplied objective.
//!
//! The objective is a closure `Fn(&Mapping) -> Option<f64>` returning the
//! metric to *minimize* (EDP, latency, energy, ...) or `None` when the
//! mapping is invalid (e.g. fails the capacity check in Sparseloop's
//! micro-architectural step). Keeping the evaluator abstract lets the
//! mapping crate stay independent of the model crate, mirroring the
//! paper's separation between mapspace construction and evaluation.
//!
//! # Search pipeline
//!
//! Candidates stream out of the mapspace iterators
//! ([`Mapspace::iter_enumerate`] / [`Mapspace::iter_sample`]) — O(1)
//! memory in the candidate count — and flow through a two-stage
//! evaluation: a cheap [`CandidateEvaluator::precheck`] rejects
//! obviously-invalid candidates (e.g. oversized tiles) before the full
//! objective runs. [`Mapper::par_search`] distributes the same stream
//! over worker threads and reduces with a deterministic
//! `(objective, candidate index)` tie-break, so parallel and sequential
//! searches return bit-identical winners.

use crate::loops::Mapping;
use crate::mapspace::Mapspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Statistics from one mapper run.
///
/// Invariant: `generated == pruned + evaluated + invalid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Mappings drawn from the mapspace's candidate stream.
    pub generated: usize,
    /// Mappings rejected by the cheap precheck before full evaluation.
    pub pruned: usize,
    /// Mappings the objective accepted (returned `Some`).
    pub evaluated: usize,
    /// Mappings rejected as invalid by the full evaluation (objective
    /// returned `None`).
    pub invalid: usize,
}

/// Outcome of a mapper search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its objective value.
    pub objective: f64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// A two-stage candidate evaluator: a cheap validity pre-pass followed by
/// the full objective.
///
/// `precheck` should be a conservative, fast filter: returning `false`
/// asserts the full evaluation would reject the mapping (return `None`),
/// so the pipeline may skip it entirely; returning `true` just means "run
/// the full evaluation". Any `Fn(&Mapping) -> Option<f64> + Sync` closure
/// is an evaluator whose precheck accepts everything.
pub trait CandidateEvaluator: Sync {
    /// Cheap pre-pass; `false` prunes the candidate before evaluation.
    fn precheck(&self, _mapping: &Mapping) -> bool {
        true
    }

    /// Full evaluation: the metric to minimize, or `None` when invalid.
    fn evaluate(&self, mapping: &Mapping) -> Option<f64>;
}

impl<F> CandidateEvaluator for F
where
    F: Fn(&Mapping) -> Option<f64> + Sync,
{
    fn evaluate(&self, mapping: &Mapping) -> Option<f64> {
        self(mapping)
    }
}

/// Candidates pulled from the shared stream per lock acquisition in
/// [`Mapper::par_search`]; amortizes lock traffic without letting any
/// worker run far ahead of the stream.
const PAR_BATCH: usize = 32;

/// Mapspace search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapper {
    /// Enumerate deterministically up to a candidate cap.
    Exhaustive {
        /// Maximum number of candidates to enumerate.
        limit: usize,
    },
    /// Draw random candidates with a seeded RNG (reproducible).
    Random {
        /// Number of samples to draw.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Enumerate up to a cap, then top up with random samples — a simple
    /// hybrid that works well on medium mapspaces. Samples that duplicate
    /// an enumerated candidate are dropped from the stream (the strategy
    /// keeps a set of the enumerated prefix, so memory is O(`enumerate`)),
    /// ensuring random draws only ever explore beyond the prefix.
    Hybrid {
        /// Enumeration cap.
        enumerate: usize,
        /// Additional random samples.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Mapper {
    /// The strategy's candidate stream over `space`: a lazy, deterministic
    /// iterator (for a fixed strategy, including seeds) shared by the
    /// sequential and parallel search paths.
    pub fn candidates<'a>(
        &self,
        space: &'a Mapspace,
    ) -> Box<dyn Iterator<Item = Mapping> + Send + 'a> {
        match *self {
            Mapper::Exhaustive { limit } => Box::new(space.iter_enumerate(limit)),
            Mapper::Random { samples, seed } => {
                Box::new(space.iter_sample(samples, StdRng::seed_from_u64(seed)))
            }
            Mapper::Hybrid {
                enumerate,
                samples,
                seed,
            } => {
                // dedup sampled candidates against the enumerated prefix:
                // re-evaluating a mapping enumeration already scored
                // wastes the sample budget without changing the winner.
                // The prefix stays streaming (O(1) beyond the dedup set
                // itself): each enumerated candidate is recorded into a
                // shared set as it is yielded, and the sample tail
                // filters against it. The Mutex is uncontended — one
                // iterator is polled at a time (par_search serializes
                // the stream behind its own lock).
                let seen =
                    std::sync::Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
                let record = std::sync::Arc::clone(&seen);
                Box::new(
                    space
                        .iter_enumerate(enumerate)
                        .inspect(move |m| {
                            record.lock().expect("hybrid dedup set").insert(m.clone());
                        })
                        .chain(
                            space
                                .iter_sample(samples, StdRng::seed_from_u64(seed))
                                .filter(move |m| {
                                    !seen.lock().expect("hybrid dedup set").contains(m)
                                }),
                        ),
                )
            }
        }
    }

    /// Runs the search, returning the best mapping by the minimized
    /// objective, or `None` when no candidate evaluates successfully.
    ///
    /// Candidates are streamed: memory use is O(1) in the mapspace size
    /// and `stats.generated` counts candidates as they are drawn.
    pub fn search<F>(&self, space: &Mapspace, mut objective: F) -> Option<SearchResult>
    where
        F: FnMut(&Mapping) -> Option<f64>,
    {
        let mut stats = SearchStats::default();
        let mut best: Option<(Mapping, f64)> = None;
        for m in self.candidates(space) {
            stats.generated += 1;
            match objective(&m) {
                // NaN objectives are rejected (counted invalid): they are
                // unordered, which would make the winner depend on
                // evaluation order
                Some(v) if !v.is_nan() => {
                    stats.evaluated += 1;
                    let better = best.as_ref().map(|(_, b)| v < *b).unwrap_or(true);
                    if better {
                        best = Some((m, v));
                    }
                }
                _ => stats.invalid += 1,
            }
        }
        best.map(|(mapping, objective)| SearchResult {
            mapping,
            objective,
            stats,
        })
    }

    /// Sequential search through a two-stage [`CandidateEvaluator`]:
    /// candidates failing the cheap precheck are pruned (counted in
    /// `stats.pruned`) without running the full evaluation.
    ///
    /// Returns the same winner as [`search`](Mapper::search) over the
    /// same stream whenever the precheck is consistent (only rejects
    /// candidates the full evaluation would reject).
    pub fn search_pruned<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
    ) -> Option<SearchResult> {
        self.search_pruned_counted(space, evaluator).0
    }

    /// Like [`search_pruned`](Mapper::search_pruned), but the run's
    /// counters are returned even when no candidate evaluates
    /// successfully — an all-invalid stream was still walked, and
    /// throughput accounting should see that work.
    pub fn search_pruned_counted<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
    ) -> (Option<SearchResult>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut best: Option<(Mapping, f64)> = None;
        for m in self.candidates(space) {
            stats.generated += 1;
            if !evaluator.precheck(&m) {
                stats.pruned += 1;
                continue;
            }
            match evaluator.evaluate(&m) {
                // NaN handling mirrors search(): unordered values are
                // counted invalid so the winner is order-independent
                Some(v) if !v.is_nan() => {
                    stats.evaluated += 1;
                    let better = best.as_ref().map(|(_, b)| v < *b).unwrap_or(true);
                    if better {
                        best = Some((m, v));
                    }
                }
                _ => stats.invalid += 1,
            }
        }
        let result = best.map(|(mapping, objective)| SearchResult {
            mapping,
            objective,
            stats,
        });
        (result, stats)
    }

    /// Parallel search: distributes the candidate stream over `threads`
    /// workers (default: all available cores) and reduces
    /// deterministically.
    ///
    /// Workers pull fixed-size batches off the shared stream, evaluate
    /// through the two-stage pipeline, and keep a thread-local best keyed
    /// by `(objective value, candidate index)`. The final reduction takes
    /// the lexicographic minimum of those keys, which is exactly the
    /// candidate the sequential scan would keep (first strict minimum in
    /// stream order) — so `par_search` and
    /// [`search_pruned`](Mapper::search_pruned) return bit-identical
    /// `(mapping, objective)` regardless of thread count or scheduling.
    pub fn par_search<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        threads: Option<usize>,
    ) -> Option<SearchResult> {
        self.par_search_counted(space, evaluator, threads).0
    }

    /// Like [`par_search`](Mapper::par_search), but the run's counters
    /// are returned even when no candidate evaluates successfully (see
    /// [`search_pruned_counted`](Mapper::search_pruned_counted)).
    pub fn par_search_counted<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        threads: Option<usize>,
    ) -> (Option<SearchResult>, SearchStats) {
        let workers = threads.unwrap_or_else(rayon::current_num_threads).max(1);
        if workers == 1 {
            return self.search_pruned_counted(space, evaluator);
        }

        let stream = Mutex::new(self.candidates(space).enumerate());
        let generated = AtomicUsize::new(0);
        let pruned = AtomicUsize::new(0);
        let evaluated = AtomicUsize::new(0);
        let invalid = AtomicUsize::new(0);
        // best = (objective value, candidate index, mapping)
        let best: Mutex<Option<(f64, usize, Mapping)>> = Mutex::new(None);

        let beats = |v: f64, idx: usize, cur: &Option<(f64, usize, Mapping)>| match cur {
            None => true,
            Some((bv, bidx, _)) => v < *bv || (v == *bv && idx < *bidx),
        };

        rayon::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| {
                    let mut local: Option<(f64, usize, Mapping)> = None;
                    loop {
                        let batch: Vec<(usize, Mapping)> = {
                            let mut it = stream.lock().expect("candidate stream poisoned");
                            it.by_ref().take(PAR_BATCH).collect()
                        };
                        if batch.is_empty() {
                            break;
                        }
                        generated.fetch_add(batch.len(), Ordering::Relaxed);
                        for (idx, m) in batch {
                            if !evaluator.precheck(&m) {
                                pruned.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            match evaluator.evaluate(&m) {
                                // NaN counted invalid, as in the
                                // sequential paths: NaN is unordered and
                                // would break the deterministic reduction
                                Some(v) if !v.is_nan() => {
                                    evaluated.fetch_add(1, Ordering::Relaxed);
                                    if beats(v, idx, &local) {
                                        local = Some((v, idx, m));
                                    }
                                }
                                _ => {
                                    invalid.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    if let Some((v, idx, m)) = local {
                        let mut global = best.lock().expect("best slot poisoned");
                        if beats(v, idx, &global) {
                            *global = Some((v, idx, m));
                        }
                    }
                });
            }
        });

        let stats = SearchStats {
            generated: generated.into_inner(),
            pruned: pruned.into_inner(),
            evaluated: evaluated.into_inner(),
            invalid: invalid.into_inner(),
        };
        let result =
            best.into_inner()
                .expect("best slot poisoned")
                .map(|(objective, _, mapping)| SearchResult {
                    mapping,
                    objective,
                    stats,
                });
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
    use sparseloop_tensor::einsum::Einsum;

    fn setup() -> Mapspace {
        let e = Einsum::matmul(8, 8, 8);
        let a = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        Mapspace::all_temporal(&e, &a)
    }

    /// A toy objective: prefer large innermost-level loop products
    /// (maximizing on-chip work per DRAM visit).
    fn toy_objective(m: &Mapping) -> Option<f64> {
        let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
        Some(1.0 / inner as f64)
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 100_000 }
            .search(&space, toy_objective)
            .unwrap();
        // optimum puts everything innermost: product 512
        assert!((r.objective - 1.0 / 512.0).abs() < 1e-12);
        assert!(r.stats.evaluated > 0);
    }

    #[test]
    fn random_search_reproducible() {
        let space = setup();
        let m = Mapper::Random {
            samples: 64,
            seed: 42,
        };
        let a = m.search(&space, toy_objective).unwrap();
        let b = m.search(&space, toy_objective).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn invalid_candidates_counted() {
        let space = setup();
        let mut calls = 0usize;
        let r = Mapper::Exhaustive { limit: 50 }
            .search(&space, |m| {
                calls += 1;
                if calls.is_multiple_of(2) {
                    None
                } else {
                    toy_objective(m)
                }
            })
            .unwrap();
        assert!(r.stats.invalid > 0);
        assert_eq!(r.stats.invalid + r.stats.evaluated, r.stats.generated);
    }

    #[test]
    fn all_invalid_returns_none() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 10 }.search(&space, |_| None);
        assert!(r.is_none());
    }

    #[test]
    fn hybrid_covers_both_sources() {
        let space = setup();
        let r = Mapper::Hybrid {
            enumerate: 10,
            samples: 10,
            seed: 1,
        }
        .search(&space, toy_objective)
        .unwrap();
        // at least the enumerated prefix; sampled duplicates of the
        // prefix are dropped, so the total may fall short of 20
        assert!(r.stats.generated >= 10 && r.stats.generated <= 20);
    }

    #[test]
    fn hybrid_samples_never_repeat_the_enumerated_prefix() {
        let space = setup();
        let mapper = Mapper::Hybrid {
            enumerate: 200,
            samples: 500,
            seed: 3,
        };
        let stream: Vec<Mapping> = mapper.candidates(&space).collect();
        let prefix: std::collections::HashSet<&Mapping> = stream.iter().take(200).collect();
        for m in stream.iter().skip(200) {
            assert!(!prefix.contains(m), "sampled candidate repeats prefix");
        }
    }

    #[test]
    fn generated_counted_from_stream() {
        // the stream is lazy: generated reflects candidates actually
        // drawn, and a tiny limit draws no more than that
        let space = setup();
        let r = Mapper::Exhaustive { limit: 7 }
            .search(&space, toy_objective)
            .unwrap();
        assert_eq!(r.stats.generated, 7);
    }

    /// Evaluator pruning even innermost-products, matching an objective
    /// that rejects them.
    struct EvenPruner;

    impl CandidateEvaluator for EvenPruner {
        fn precheck(&self, m: &Mapping) -> bool {
            let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
            !inner.is_multiple_of(2)
        }

        fn evaluate(&self, m: &Mapping) -> Option<f64> {
            let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
            if inner.is_multiple_of(2) {
                None
            } else {
                Some(1.0 / inner as f64)
            }
        }
    }

    #[test]
    fn precheck_prunes_and_accounts() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 10_000 }
            .search_pruned(&space, &EvenPruner)
            .unwrap();
        assert!(r.stats.pruned > 0, "some candidates must be pruned");
        assert_eq!(
            r.stats.pruned + r.stats.evaluated + r.stats.invalid,
            r.stats.generated
        );
        // pruning must not change the winner vs. the plain objective
        let plain = Mapper::Exhaustive { limit: 10_000 }
            .search(&space, |m| EvenPruner.evaluate(m))
            .unwrap();
        assert_eq!(r.objective, plain.objective);
        assert_eq!(r.mapping, plain.mapping);
    }

    #[test]
    fn par_search_matches_sequential_exhaustive() {
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        let seq = Mapper::Exhaustive { limit: 100_000 }
            .search_pruned(&space, &objective)
            .unwrap();
        for threads in [2, 3, 8] {
            let par = Mapper::Exhaustive { limit: 100_000 }
                .par_search(&space, &objective, Some(threads))
                .unwrap();
            assert_eq!(par.objective, seq.objective, "threads={threads}");
            assert_eq!(par.mapping, seq.mapping, "threads={threads}");
            assert_eq!(par.stats, seq.stats, "threads={threads}");
        }
    }

    #[test]
    fn par_search_matches_sequential_random_and_hybrid() {
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        for mapper in [
            Mapper::Random {
                samples: 200,
                seed: 9,
            },
            Mapper::Hybrid {
                enumerate: 64,
                samples: 64,
                seed: 5,
            },
        ] {
            let seq = mapper.search_pruned(&space, &objective).unwrap();
            let par = mapper.par_search(&space, &objective, Some(4)).unwrap();
            assert_eq!(par.objective, seq.objective);
            assert_eq!(par.mapping, seq.mapping);
        }
    }

    #[test]
    fn par_search_with_pruning_evaluator() {
        let space = setup();
        let seq = Mapper::Exhaustive { limit: 50_000 }
            .search_pruned(&space, &EvenPruner)
            .unwrap();
        let par = Mapper::Exhaustive { limit: 50_000 }
            .par_search(&space, &EvenPruner, Some(4))
            .unwrap();
        assert_eq!(par.objective, seq.objective);
        assert_eq!(par.mapping, seq.mapping);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn nan_objectives_counted_invalid_and_deterministic() {
        let space = setup();
        // poison the optimum with NaN: it must be rejected, not win
        let nan_obj = |m: &Mapping| {
            let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
            if inner == 512 {
                Some(f64::NAN)
            } else {
                Some(1.0 / inner as f64)
            }
        };
        let seq = Mapper::Exhaustive { limit: 100_000 }
            .search(&space, nan_obj)
            .unwrap();
        assert!(seq.stats.invalid > 0, "NaN candidates count as invalid");
        assert!(!seq.objective.is_nan());
        let par = Mapper::Exhaustive { limit: 100_000 }
            .par_search(&space, &nan_obj, Some(4))
            .unwrap();
        assert_eq!(par.objective, seq.objective);
        assert_eq!(par.mapping, seq.mapping);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn par_search_all_invalid_returns_none() {
        let space = setup();
        let reject = |_: &Mapping| -> Option<f64> { None };
        assert!(Mapper::Exhaustive { limit: 10 }
            .par_search(&space, &reject, Some(4))
            .is_none());
    }
}
