//! The mapper: searches a mapspace for the best mapping under a
//! caller-supplied objective.
//!
//! The objective is a closure `Fn(&Mapping) -> Option<f64>` returning the
//! metric to *minimize* (EDP, latency, energy, ...) or `None` when the
//! mapping is invalid (e.g. fails the capacity check in Sparseloop's
//! micro-architectural step). Keeping the evaluator abstract lets the
//! mapping crate stay independent of the model crate, mirroring the
//! paper's separation between mapspace construction and evaluation.
//!
//! # Search pipeline
//!
//! Candidates stream out of the mapspace iterators
//! ([`Mapspace::iter_enumerate`] / [`Mapspace::iter_sample`]) — O(1)
//! memory in the candidate count — and flow through a two-stage
//! evaluation: a cheap [`CandidateEvaluator::precheck`] rejects
//! obviously-invalid candidates (e.g. oversized tiles) before the full
//! objective runs. [`Mapper::par_search`] distributes the same stream
//! over worker threads and reduces with a deterministic
//! `(objective, candidate index)` tie-break, so parallel and sequential
//! searches return bit-identical winners.

use crate::loops::Mapping;
use crate::mapspace::{CandidateKey, ChangeDepth, Mapspace, MapspaceShard};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Statistics from one mapper run.
///
/// Invariant: `generated == pruned + evaluated + invalid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Mappings drawn from the mapspace's candidate stream.
    pub generated: usize,
    /// Mappings rejected by the cheap precheck before full evaluation.
    pub pruned: usize,
    /// Mappings the objective accepted (returned `Some`).
    pub evaluated: usize,
    /// Mappings rejected as invalid by the full evaluation (objective
    /// returned `None`).
    pub invalid: usize,
}

impl SearchStats {
    /// Accumulates another run's counters into this one (shard merges,
    /// batch totals).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.generated += other.generated;
        self.pruned += other.pruned;
        self.evaluated += other.evaluated;
        self.invalid += other.invalid;
    }
}

/// Outcome of a mapper search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its objective value.
    pub objective: f64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// A two-stage candidate evaluator: a cheap validity pre-pass followed by
/// the full objective.
///
/// `precheck` should be a conservative, fast filter: returning `false`
/// asserts the full evaluation would reject the mapping (return `None`),
/// so the pipeline may skip it entirely; returning `true` just means "run
/// the full evaluation". Any `Fn(&Mapping) -> Option<f64> + Sync` closure
/// is an evaluator whose precheck accepts everything.
pub trait CandidateEvaluator: Sync {
    /// Cheap pre-pass; `false` prunes the candidate before evaluation.
    fn precheck(&self, _mapping: &Mapping) -> bool {
        true
    }

    /// Full evaluation: the metric to minimize, or `None` when invalid.
    fn evaluate(&self, mapping: &Mapping) -> Option<f64>;

    /// A per-worker stateful evaluator. The search loops create one
    /// worker per thread (or shard) and feed it the candidate stream in
    /// order together with each candidate's [`ChangeDepth`], so an
    /// implementation can keep reusable scratch buffers and
    /// prefix-incremental caches across candidates — results must be
    /// bit-identical to the stateless [`precheck`] / [`evaluate`] pair.
    ///
    /// The default worker simply delegates to the stateless methods,
    /// ignoring deltas, so plain closures and simple evaluators keep
    /// working unchanged.
    ///
    /// [`precheck`]: CandidateEvaluator::precheck
    /// [`evaluate`]: CandidateEvaluator::evaluate
    fn worker(&self) -> Box<dyn WorkerEvaluator + '_> {
        Box::new(StatelessWorker(self))
    }
}

/// A per-worker, stateful view of a [`CandidateEvaluator`] (see
/// [`CandidateEvaluator::worker`]).
///
/// # Call protocol
///
/// The caller walks one candidate stream in order. For each candidate it
/// calls [`precheck`](WorkerEvaluator::precheck) with the candidate's
/// [`ChangeDepth`] (relative to the stream's *previous* candidate — pass
/// [`ChangeDepth::Reset`] when that relation is unknown, e.g. at batch
/// seams of a work-stealing parallel search), and, if the precheck
/// passes, [`evaluate`](WorkerEvaluator::evaluate) with the *same*
/// candidate and depth. Implementations compose depths internally, so
/// skipping `evaluate` for pruned candidates is always sound.
pub trait WorkerEvaluator {
    /// Cheap pre-pass; `false` prunes the candidate before evaluation.
    fn precheck(&mut self, mapping: &Mapping, change: ChangeDepth) -> bool;

    /// Full evaluation: the metric to minimize, or `None` when invalid.
    fn evaluate(&mut self, mapping: &Mapping, change: ChangeDepth) -> Option<f64>;
}

/// The default [`WorkerEvaluator`]: stateless delegation to the
/// underlying evaluator, ignoring change depths.
struct StatelessWorker<'a, E: ?Sized>(&'a E);

impl<E: CandidateEvaluator + ?Sized> WorkerEvaluator for StatelessWorker<'_, E> {
    fn precheck(&mut self, mapping: &Mapping, _change: ChangeDepth) -> bool {
        self.0.precheck(mapping)
    }

    fn evaluate(&mut self, mapping: &Mapping, _change: ChangeDepth) -> Option<f64> {
        self.0.evaluate(mapping)
    }
}

impl<F> CandidateEvaluator for F
where
    F: Fn(&Mapping) -> Option<f64> + Sync,
{
    fn evaluate(&self, mapping: &Mapping) -> Option<f64> {
        self(mapping)
    }
}

/// Candidates pulled from the shared stream per lock acquisition in
/// [`Mapper::par_search`]; amortizes lock traffic without letting any
/// worker run far ahead of the stream.
const PAR_BATCH: usize = 32;

/// How [`Mapper::Hybrid`] draws its sample tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SampleStrategy {
    /// Independent uniform draws from a seeded RNG
    /// ([`Mapspace::iter_sample`]).
    #[default]
    Uniform,
    /// Low-discrepancy Halton draws: consecutive samples spread evenly
    /// over the factorization space instead of clustering
    /// ([`Mapspace::iter_sample_halton`]), so a fixed sample budget
    /// covers more distinct candidates.
    Halton,
}

/// Mapspace search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapper {
    /// Enumerate deterministically up to a candidate cap.
    Exhaustive {
        /// Maximum number of candidates to enumerate.
        limit: usize,
    },
    /// Draw random candidates with a seeded RNG (reproducible).
    Random {
        /// Number of samples to draw.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Enumerate up to a cap, then top up with samples — a simple
    /// hybrid that works well on medium mapspaces. Samples that duplicate
    /// an enumerated candidate are dropped from the stream (the strategy
    /// keeps a set of the enumerated prefix, so memory is O(`enumerate`)),
    /// ensuring sampled draws only ever explore beyond the prefix.
    Hybrid {
        /// Enumeration cap.
        enumerate: usize,
        /// Additional samples.
        samples: usize,
        /// Sample seed (RNG seed for uniform draws, sequence offset for
        /// Halton draws).
        seed: u64,
        /// How the sample tail is drawn.
        sampling: SampleStrategy,
    },
}

impl Mapper {
    /// The strategy's candidate stream over `space`: a lazy, deterministic
    /// iterator (for a fixed strategy, including seeds) shared by the
    /// sequential and parallel search paths.
    pub fn candidates<'a>(
        &self,
        space: &'a Mapspace,
    ) -> Box<dyn Iterator<Item = Mapping> + Send + 'a> {
        Box::new(self.delta_candidates(space).map(|(_, m)| m))
    }

    /// Like [`candidates`](Mapper::candidates), but each candidate
    /// carries its [`ChangeDepth`] relative to the previous stream
    /// candidate. Enumerated candidates report their true first-changed
    /// position; sampled draws (and the first candidate) report
    /// [`ChangeDepth::Reset`] — sampling shares no systematic prefix, so
    /// consumers must recompute those from scratch.
    pub fn delta_candidates<'a>(
        &self,
        space: &'a Mapspace,
    ) -> Box<dyn Iterator<Item = (ChangeDepth, Mapping)> + Send + 'a> {
        match *self {
            Mapper::Exhaustive { limit } => {
                let mut it = space.iter_enumerate(limit);
                Box::new(std::iter::from_fn(move || it.next_delta()))
            }
            Mapper::Random { samples, seed } => Box::new(
                space
                    .iter_sample(samples, StdRng::seed_from_u64(seed))
                    .map(|m| (ChangeDepth::Reset, m)),
            ),
            Mapper::Hybrid {
                enumerate,
                samples,
                seed,
                sampling,
            } => {
                // dedup sampled candidates against the enumerated prefix:
                // re-evaluating a mapping enumeration already scored
                // wastes the sample budget without changing the winner.
                // The prefix stays streaming (O(1) beyond the dedup set
                // itself): each enumerated candidate is recorded into the
                // set as it is yielded, and the sample tail filters
                // against it. The tail is built only once the prefix runs
                // dry — and not at all when the prefix *covered* the
                // space: every sample would dedup away, so the tail's
                // 20x-samples draw budget would be pure waste (the cover
                // check is free — the enumeration stream already knows
                // whether its counter wrapped). `enumerate == 0` is the
                // pure-sampling degenerate: exhaustion then means "no
                // prefix", not "covered", so the tail always runs.
                let mut seen: HashSet<Mapping> = HashSet::new();
                let mut prefix = space.iter_enumerate(enumerate);
                let mut tail: Option<Box<dyn Iterator<Item = Mapping> + Send + 'a>> = None;
                Box::new(std::iter::from_fn(move || loop {
                    if let Some(t) = tail.as_mut() {
                        return t
                            .find(|m| !seen.contains(m))
                            .map(|m| (ChangeDepth::Reset, m));
                    }
                    if let Some((depth, m)) = prefix.next_delta() {
                        if samples > 0 {
                            seen.insert(m.clone());
                        }
                        return Some((depth, m));
                    }
                    tail = if samples == 0 || (enumerate > 0 && prefix.space_exhausted()) {
                        Some(Box::new(std::iter::empty()))
                    } else {
                        Some(sample_tail(space, samples, seed, sampling))
                    };
                }))
            }
        }
    }

    /// Runs the search, returning the best mapping by the minimized
    /// objective, or `None` when no candidate evaluates successfully.
    ///
    /// Candidates are streamed: memory use is O(1) in the mapspace size
    /// and `stats.generated` counts candidates as they are drawn.
    pub fn search<F>(&self, space: &Mapspace, mut objective: F) -> Option<SearchResult>
    where
        F: FnMut(&Mapping) -> Option<f64>,
    {
        let mut stats = SearchStats::default();
        let mut best: Option<(Mapping, f64)> = None;
        for m in self.candidates(space) {
            stats.generated += 1;
            match objective(&m) {
                // NaN objectives are rejected (counted invalid): they are
                // unordered, which would make the winner depend on
                // evaluation order
                Some(v) if !v.is_nan() => {
                    stats.evaluated += 1;
                    let better = best.as_ref().map(|(_, b)| v < *b).unwrap_or(true);
                    if better {
                        best = Some((m, v));
                    }
                }
                _ => stats.invalid += 1,
            }
        }
        best.map(|(mapping, objective)| SearchResult {
            mapping,
            objective,
            stats,
        })
    }

    /// Sequential search through a two-stage [`CandidateEvaluator`]:
    /// candidates failing the cheap precheck are pruned (counted in
    /// `stats.pruned`) without running the full evaluation.
    ///
    /// Returns the same winner as [`search`](Mapper::search) over the
    /// same stream whenever the precheck is consistent (only rejects
    /// candidates the full evaluation would reject).
    pub fn search_pruned<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
    ) -> Option<SearchResult> {
        self.search_pruned_counted(space, evaluator).0
    }

    /// Like [`search_pruned`](Mapper::search_pruned), but the run's
    /// counters are returned even when no candidate evaluates
    /// successfully — an all-invalid stream was still walked, and
    /// throughput accounting should see that work.
    pub fn search_pruned_counted<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
    ) -> (Option<SearchResult>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut best: Option<(Mapping, f64)> = None;
        // one stateful worker walks the whole stream: scratch buffers and
        // prefix-incremental caches persist across candidates
        let mut worker = evaluator.worker();
        for (depth, m) in self.delta_candidates(space) {
            stats.generated += 1;
            if !worker.precheck(&m, depth) {
                stats.pruned += 1;
                continue;
            }
            match worker.evaluate(&m, depth) {
                // NaN handling mirrors search(): unordered values are
                // counted invalid so the winner is order-independent
                Some(v) if !v.is_nan() => {
                    stats.evaluated += 1;
                    let better = best.as_ref().map(|(_, b)| v < *b).unwrap_or(true);
                    if better {
                        best = Some((m, v));
                    }
                }
                _ => stats.invalid += 1,
            }
        }
        let result = best.map(|(mapping, objective)| SearchResult {
            mapping,
            objective,
            stats,
        });
        (result, stats)
    }

    /// Parallel search: distributes the candidate stream over `threads`
    /// workers (default: all available cores) and reduces
    /// deterministically.
    ///
    /// Workers pull fixed-size batches off the shared stream, evaluate
    /// through the two-stage pipeline, and keep a thread-local best keyed
    /// by `(objective value, candidate index)`. The final reduction takes
    /// the lexicographic minimum of those keys, which is exactly the
    /// candidate the sequential scan would keep (first strict minimum in
    /// stream order) — so `par_search` and
    /// [`search_pruned`](Mapper::search_pruned) return bit-identical
    /// `(mapping, objective)` regardless of thread count or scheduling.
    pub fn par_search<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        threads: Option<usize>,
    ) -> Option<SearchResult> {
        self.par_search_counted(space, evaluator, threads).0
    }

    /// Like [`par_search`](Mapper::par_search), but the run's counters
    /// are returned even when no candidate evaluates successfully (see
    /// [`search_pruned_counted`](Mapper::search_pruned_counted)).
    pub fn par_search_counted<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        threads: Option<usize>,
    ) -> (Option<SearchResult>, SearchStats) {
        let workers = threads.unwrap_or_else(rayon::current_num_threads).max(1);
        if workers == 1 {
            return self.search_pruned_counted(space, evaluator);
        }

        let stream = Mutex::new(self.delta_candidates(space).enumerate());
        let generated = AtomicUsize::new(0);
        let pruned = AtomicUsize::new(0);
        let evaluated = AtomicUsize::new(0);
        let invalid = AtomicUsize::new(0);
        // best = (objective value, candidate index, mapping)
        let best: Mutex<Option<(f64, usize, Mapping)>> = Mutex::new(None);

        let beats = |v: f64, idx: usize, cur: &Option<(f64, usize, Mapping)>| match cur {
            None => true,
            Some((bv, bidx, _)) => v < *bv || (v == *bv && idx < *bidx),
        };

        rayon::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| {
                    let mut local: Option<(f64, usize, Mapping)> = None;
                    let mut worker = evaluator.worker();
                    loop {
                        let batch: Vec<(usize, (ChangeDepth, Mapping))> = {
                            let mut it = stream.lock().expect("candidate stream poisoned");
                            it.by_ref().take(PAR_BATCH).collect()
                        };
                        if batch.is_empty() {
                            break;
                        }
                        generated.fetch_add(batch.len(), Ordering::Relaxed);
                        for (pos, (idx, (depth, m))) in batch.into_iter().enumerate() {
                            // a batch's first candidate follows one that
                            // (usually) went to another worker: its depth
                            // relation does not hold for THIS worker's
                            // caches, so it must recompute from scratch
                            let depth = if pos == 0 { ChangeDepth::Reset } else { depth };
                            if !worker.precheck(&m, depth) {
                                pruned.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            match worker.evaluate(&m, depth) {
                                // NaN counted invalid, as in the
                                // sequential paths: NaN is unordered and
                                // would break the deterministic reduction
                                Some(v) if !v.is_nan() => {
                                    evaluated.fetch_add(1, Ordering::Relaxed);
                                    if beats(v, idx, &local) {
                                        local = Some((v, idx, m));
                                    }
                                }
                                _ => {
                                    invalid.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    if let Some((v, idx, m)) = local {
                        let mut global = best.lock().expect("best slot poisoned");
                        if beats(v, idx, &global) {
                            *global = Some((v, idx, m));
                        }
                    }
                });
            }
        });

        let stats = SearchStats {
            generated: generated.into_inner(),
            pruned: pruned.into_inner(),
            evaluated: evaluated.into_inner(),
            invalid: invalid.into_inner(),
        };
        let result =
            best.into_inner()
                .expect("best slot poisoned")
                .map(|(objective, _, mapping)| SearchResult {
                    mapping,
                    objective,
                    stats,
                });
        (result, stats)
    }

    /// Sharded deterministic search: partitions the enumerated candidate
    /// stream into `shards` disjoint sub-streams ([`Mapspace::shards`]),
    /// evaluates them concurrently on the worker pool, and reduces the
    /// per-shard winners by `(objective value, candidate position)`.
    ///
    /// Winners are **bit-identical** to [`par_search`](Mapper::par_search)
    /// / [`search_pruned`](Mapper::search_pruned) at any shard count:
    /// shard candidates carry globally comparable [`CandidateKey`]s whose
    /// order is exactly the unsharded stream order, so the lexicographic
    /// minimum of `(value, key)` is the same candidate the sequential
    /// scan keeps. A hybrid strategy shards its enumerated prefix and
    /// runs the (inherently sequential) seeded sample tail afterwards,
    /// deduplicated against the full prefix exactly like the unsharded
    /// stream; a pure random strategy has no enumeration to shard and
    /// falls back to [`par_search`](Mapper::par_search).
    pub fn search_sharded<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        shards: usize,
    ) -> Option<SearchResult> {
        self.search_sharded_counted(space, evaluator, shards).0
    }

    /// Like [`search_sharded`](Mapper::search_sharded), but the run's
    /// counters are returned even when no candidate evaluates
    /// successfully (see
    /// [`search_pruned_counted`](Mapper::search_pruned_counted)).
    pub fn search_sharded_counted<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        shards: usize,
    ) -> (Option<SearchResult>, SearchStats) {
        match *self {
            Mapper::Exhaustive { limit } => {
                let (best, stats) = sharded_enumerate_search(space, evaluator, limit, shards, None);
                finish_sharded(best, stats)
            }
            Mapper::Random { .. } => self.par_search_counted(space, evaluator, None),
            Mapper::Hybrid {
                enumerate,
                samples,
                seed,
                sampling,
            } => {
                if samples == 0 {
                    let (best, stats) =
                        sharded_enumerate_search(space, evaluator, enumerate, shards, None);
                    return finish_sharded(best, stats);
                }
                let record = Mutex::new(HashSet::new());
                let (mut best, mut stats) =
                    sharded_enumerate_search(space, evaluator, enumerate, shards, Some(&record));
                // a prefix that ran dry *below* its cap enumerated the
                // whole space: every sample would dedup away, so the
                // tail (and its 20x-samples draw budget) is skipped —
                // same shortcut as the unsharded stream, read off the
                // already-summed counters for free. (A space of exactly
                // `enumerate` candidates falls through to the tail,
                // where the dedup filter still drops every draw.)
                if stats.generated < enumerate {
                    return finish_sharded(best, stats);
                }
                let seen = record.into_inner().expect("hybrid dedup set");
                walk_sample_tail(
                    space, samples, seed, sampling, &seen, evaluator, &mut best, &mut stats,
                );
                finish_sharded(best, stats)
            }
        }
    }

    /// Evaluates **one** shard of the sharded search on this process,
    /// returning its raw local winner (objective value, globally
    /// comparable [`CandidateKey`], mapping) and counters — the
    /// per-worker half of a multi-process sharded search. Feeding every
    /// shard's return through [`merge_shard_results`] reproduces
    /// [`search_sharded_counted`](Mapper::search_sharded_counted)
    /// bit-identically (winner, objective, and summed stats), because
    /// both run the same [`walk_shard`] / [`walk_sample_tail`] code over
    /// the same disjoint sub-streams.
    ///
    /// Division of labor by strategy:
    ///
    /// * `Exhaustive` (and `Hybrid` with no samples) — shard `shard` of
    ///   the enumerated stream.
    /// * `Hybrid` — shard `shard` of the enumerated prefix; shard 0
    ///   additionally owns the (inherently sequential) seeded sample
    ///   tail, regenerating the *full* prefix locally to rebuild the
    ///   dedup set and the cover-check counter the unsharded stream
    ///   maintains for free.
    /// * `Random` — one seeded sequence with nothing to shard: shard 0
    ///   walks it whole (matching the in-process fallback's winner);
    ///   other shards return empty.
    ///
    /// Panics if `shard >= shards` or `shards == 0`.
    pub fn search_shard_counted<E: CandidateEvaluator + ?Sized>(
        &self,
        space: &Mapspace,
        evaluator: &E,
        shard: usize,
        shards: usize,
    ) -> (Option<ShardWinner>, SearchStats) {
        assert!(shards > 0, "shard count must be positive");
        assert!(shard < shards, "shard index {shard} out of {shards}");
        let enumerated_shard = |limit: usize| {
            let mut own = space.shards(shards, limit).swap_remove(shard);
            walk_shard(&mut own, evaluator, None)
        };
        match *self {
            Mapper::Exhaustive { limit } => enumerated_shard(limit),
            Mapper::Random { .. } => {
                if shard != 0 {
                    return (None, SearchStats::default());
                }
                // the whole seeded stream, keyed like a sample tail: the
                // first strict minimum wins, exactly the candidate the
                // in-process fallback keeps
                let mut best: Option<ShardWinner> = None;
                let mut stats = SearchStats::default();
                let mut worker = evaluator.worker();
                for (i, (depth, m)) in self.delta_candidates(space).enumerate() {
                    let key = CandidateKey::sampled(i as u64);
                    stats.generated += 1;
                    if !worker.precheck(&m, depth) {
                        stats.pruned += 1;
                        continue;
                    }
                    match worker.evaluate(&m, depth) {
                        Some(v) if !v.is_nan() => {
                            stats.evaluated += 1;
                            if beats_key(v, key, &best) {
                                best = Some((v, key, m));
                            }
                        }
                        _ => stats.invalid += 1,
                    }
                }
                (best, stats)
            }
            Mapper::Hybrid {
                enumerate,
                samples,
                seed,
                sampling,
            } => {
                let (mut best, mut stats) = enumerated_shard(enumerate);
                if samples == 0 || shard != 0 {
                    return (best, stats);
                }
                // shard 0 owns the sample tail. The tail's dedup set and
                // the cover-check counter span the *whole* prefix, so
                // regenerate it locally (generation only — no evaluation;
                // shards are disjoint and collectively exhaustive, so
                // this count equals the union of every shard's
                // `generated`).
                let mut seen: HashSet<Mapping> = HashSet::new();
                let mut prefix = space.iter_enumerate(enumerate);
                let mut total_generated = 0usize;
                while let Some((_, m)) = prefix.next_delta() {
                    total_generated += 1;
                    seen.insert(m);
                }
                // a prefix that ran dry below its cap covered the space:
                // every sample would dedup away, so the tail is skipped —
                // the same shortcut search_sharded_counted takes on the
                // summed counters
                if total_generated < enumerate {
                    return (best, stats);
                }
                walk_sample_tail(
                    space, samples, seed, sampling, &seen, evaluator, &mut best, &mut stats,
                );
                (best, stats)
            }
        }
    }
}

/// One shard's raw winner: `(objective value, candidate key, mapping)`,
/// as returned by [`Mapper::search_shard_counted`].
pub type ShardWinner = (f64, CandidateKey, Mapping);

/// Reduces per-shard partial results (one per shard index, any order)
/// into the full search outcome: the `(value, key)`-lexicographic
/// minimum winner plus summed counters — bit-identical to
/// [`Mapper::search_sharded_counted`] when fed every shard of the same
/// search.
pub fn merge_shard_results(
    parts: impl IntoIterator<Item = (Option<ShardWinner>, SearchStats)>,
) -> (Option<SearchResult>, SearchStats) {
    let mut best: Option<ShardWinner> = None;
    let mut stats = SearchStats::default();
    for (winner, s) in parts {
        stats.absorb(&s);
        if let Some((v, key, m)) = winner {
            if beats_key(v, key, &best) {
                best = Some((v, key, m));
            }
        }
    }
    finish_sharded(best, stats)
}

/// The hybrid strategy's sample tail as a boxed stream (uniform RNG or
/// Halton low-discrepancy draws).
fn sample_tail<'a>(
    space: &'a Mapspace,
    samples: usize,
    seed: u64,
    sampling: SampleStrategy,
) -> Box<dyn Iterator<Item = Mapping> + Send + 'a> {
    match sampling {
        SampleStrategy::Uniform => {
            Box::new(space.iter_sample(samples, StdRng::seed_from_u64(seed)))
        }
        SampleStrategy::Halton => Box::new(space.iter_sample_halton(samples, seed)),
    }
}

/// `(value, key)` lexicographic improvement test of the sharded
/// reduction — the exact analogue of `par_search`'s `(value, index)`
/// rule under the globally comparable shard keys.
fn beats_key(v: f64, key: CandidateKey, cur: &Option<(f64, CandidateKey, Mapping)>) -> bool {
    match cur {
        None => true,
        Some((bv, bkey, _)) => v < *bv || (v == *bv && key < *bkey),
    }
}

fn finish_sharded(
    best: Option<(f64, CandidateKey, Mapping)>,
    stats: SearchStats,
) -> (Option<SearchResult>, SearchStats) {
    let result = best.map(|(objective, _, mapping)| SearchResult {
        mapping,
        objective,
        stats,
    });
    (result, stats)
}

/// Walks one shard's candidate sub-stream to completion, returning its
/// local `(value, key)`-minimal winner and counters. Shared verbatim by
/// the in-process concurrent sharded search and the per-process
/// [`Mapper::search_shard_counted`] path, so the two cannot diverge.
/// `record` (the hybrid prefix dedup set) receives every produced
/// candidate when present.
fn walk_shard<E: CandidateEvaluator + ?Sized>(
    shard: &mut MapspaceShard<'_>,
    evaluator: &E,
    record: Option<&Mutex<HashSet<Mapping>>>,
) -> (Option<(f64, CandidateKey, Mapping)>, SearchStats) {
    let mut local: Option<(f64, CandidateKey, Mapping)> = None;
    let mut stats = SearchStats::default();
    // one worker per shard: the shard is one contiguous sub-stream, so
    // its change depths hold end to end
    let mut worker = evaluator.worker();
    while let Some((key, depth, m)) = shard.next_delta() {
        stats.generated += 1;
        if let Some(rec) = record {
            rec.lock().expect("hybrid dedup set").insert(m.clone());
        }
        if !worker.precheck(&m, depth) {
            stats.pruned += 1;
            continue;
        }
        match worker.evaluate(&m, depth) {
            // NaN counted invalid, as in every other search path:
            // unordered values would break the deterministic reduction
            Some(v) if !v.is_nan() => {
                stats.evaluated += 1;
                if beats_key(v, key, &local) {
                    local = Some((v, key, m));
                }
            }
            _ => stats.invalid += 1,
        }
    }
    (local, stats)
}

/// Walks the hybrid strategy's seeded sample tail, folding survivors of
/// the prefix dedup filter into `best`/`stats` under sampled candidate
/// keys. Shared by the in-process sharded search and shard 0 of the
/// per-process path.
#[allow(clippy::too_many_arguments)]
fn walk_sample_tail<E: CandidateEvaluator + ?Sized>(
    space: &Mapspace,
    samples: usize,
    seed: u64,
    sampling: SampleStrategy,
    seen: &HashSet<Mapping>,
    evaluator: &E,
    best: &mut Option<(f64, CandidateKey, Mapping)>,
    stats: &mut SearchStats,
) {
    // the sample tail is one seeded sequence: it runs sequentially,
    // deduplicated against the complete prefix exactly like the
    // unsharded hybrid stream (sampled keys order after all enumerated
    // keys, matching the tail's stream position); sampled draws share
    // no prefix, so every one is a Reset
    let mut worker = evaluator.worker();
    for (i, m) in sample_tail(space, samples, seed, sampling)
        .filter(|m| !seen.contains(m))
        .enumerate()
    {
        let key = CandidateKey::sampled(i as u64);
        stats.generated += 1;
        if !worker.precheck(&m, ChangeDepth::Reset) {
            stats.pruned += 1;
            continue;
        }
        match worker.evaluate(&m, ChangeDepth::Reset) {
            Some(v) if !v.is_nan() => {
                stats.evaluated += 1;
                if beats_key(v, key, best) {
                    *best = Some((v, key, m));
                }
            }
            _ => stats.invalid += 1,
        }
    }
}

/// Evaluates every shard of the space's enumerated stream concurrently,
/// returning the `(value, key)`-minimal winner plus summed counters.
/// `record` (the hybrid prefix dedup set) receives every produced
/// candidate when present.
fn sharded_enumerate_search<E: CandidateEvaluator + ?Sized>(
    space: &Mapspace,
    evaluator: &E,
    limit: usize,
    shards: usize,
    record: Option<&Mutex<HashSet<Mapping>>>,
) -> (Option<(f64, CandidateKey, Mapping)>, SearchStats) {
    let generated = AtomicUsize::new(0);
    let pruned = AtomicUsize::new(0);
    let evaluated = AtomicUsize::new(0);
    let invalid = AtomicUsize::new(0);
    let best: Mutex<Option<(f64, CandidateKey, Mapping)>> = Mutex::new(None);

    rayon::scope(|s| {
        let (generated, pruned, evaluated, invalid, best) =
            (&generated, &pruned, &evaluated, &invalid, &best);
        for mut shard in space.shards(shards, limit) {
            s.spawn(move |_| {
                let (local, s) = walk_shard(&mut shard, evaluator, record);
                generated.fetch_add(s.generated, Ordering::Relaxed);
                pruned.fetch_add(s.pruned, Ordering::Relaxed);
                evaluated.fetch_add(s.evaluated, Ordering::Relaxed);
                invalid.fetch_add(s.invalid, Ordering::Relaxed);
                if let Some((v, key, m)) = local {
                    let mut global = best.lock().expect("best slot poisoned");
                    if beats_key(v, key, &global) {
                        *global = Some((v, key, m));
                    }
                }
            });
        }
    });

    let stats = SearchStats {
        generated: generated.into_inner(),
        pruned: pruned.into_inner(),
        evaluated: evaluated.into_inner(),
        invalid: invalid.into_inner(),
    };
    (best.into_inner().expect("best slot poisoned"), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
    use sparseloop_tensor::einsum::Einsum;

    fn setup() -> Mapspace {
        let e = Einsum::matmul(8, 8, 8);
        let a = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        Mapspace::all_temporal(&e, &a)
    }

    /// A toy objective: prefer large innermost-level loop products
    /// (maximizing on-chip work per DRAM visit).
    fn toy_objective(m: &Mapping) -> Option<f64> {
        let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
        Some(1.0 / inner as f64)
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 100_000 }
            .search(&space, toy_objective)
            .unwrap();
        // optimum puts everything innermost: product 512
        assert!((r.objective - 1.0 / 512.0).abs() < 1e-12);
        assert!(r.stats.evaluated > 0);
    }

    #[test]
    fn random_search_reproducible() {
        let space = setup();
        let m = Mapper::Random {
            samples: 64,
            seed: 42,
        };
        let a = m.search(&space, toy_objective).unwrap();
        let b = m.search(&space, toy_objective).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn invalid_candidates_counted() {
        let space = setup();
        let mut calls = 0usize;
        let r = Mapper::Exhaustive { limit: 50 }
            .search(&space, |m| {
                calls += 1;
                if calls.is_multiple_of(2) {
                    None
                } else {
                    toy_objective(m)
                }
            })
            .unwrap();
        assert!(r.stats.invalid > 0);
        assert_eq!(r.stats.invalid + r.stats.evaluated, r.stats.generated);
    }

    #[test]
    fn all_invalid_returns_none() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 10 }.search(&space, |_| None);
        assert!(r.is_none());
    }

    #[test]
    fn hybrid_covers_both_sources() {
        let space = setup();
        let r = Mapper::Hybrid {
            enumerate: 10,
            samples: 10,
            seed: 1,
            sampling: SampleStrategy::Uniform,
        }
        .search(&space, toy_objective)
        .unwrap();
        // at least the enumerated prefix; sampled duplicates of the
        // prefix are dropped, so the total may fall short of 20
        assert!(r.stats.generated >= 10 && r.stats.generated <= 20);
    }

    #[test]
    fn hybrid_samples_never_repeat_the_enumerated_prefix() {
        // enumerate below the 64-candidate space size so a sample tail
        // actually runs (a covering prefix would skip it entirely)
        let space = setup();
        let mapper = Mapper::Hybrid {
            enumerate: 40,
            samples: 500,
            seed: 3,
            sampling: SampleStrategy::Uniform,
        };
        let stream: Vec<Mapping> = mapper.candidates(&space).collect();
        assert!(stream.len() > 40, "tail must contribute candidates");
        let prefix: std::collections::HashSet<&Mapping> = stream.iter().take(40).collect();
        for m in stream.iter().skip(40) {
            assert!(!prefix.contains(m), "sampled candidate repeats prefix");
        }
    }

    #[test]
    fn covered_prefix_skips_the_sample_tail() {
        // setup()'s space has exactly 64 candidates; an enumeration cap
        // at or above that covers the space, so the hybrid stream must
        // end after the prefix instead of burning the 20x-samples draw
        // budget on draws that all dedup away (the ROADMAP's hybrid
        // sample-tail cost note)
        let space = setup();
        assert_eq!(space.iter_enumerate(usize::MAX).count(), 64);
        let covered = Mapper::Hybrid {
            enumerate: 64,
            samples: 1_000_000,
            seed: 9,
            sampling: SampleStrategy::Uniform,
        };
        let stream: Vec<(ChangeDepth, Mapping)> = covered.delta_candidates(&space).collect();
        assert_eq!(stream.len(), 64, "no sampled candidate can be new");
        // the searches agree with plain exhaustive enumeration, counters
        // included (sampled duplicates were never generated)
        let exhaustive = Mapper::Exhaustive { limit: 64 }
            .search(&space, toy_objective)
            .unwrap();
        let hybrid = covered.search(&space, toy_objective).unwrap();
        assert_eq!(hybrid.mapping, exhaustive.mapping);
        assert_eq!(hybrid.objective, exhaustive.objective);
        assert_eq!(hybrid.stats, exhaustive.stats);
        // sharded path takes the same shortcut and stays bit-identical
        let sharded = covered.search_sharded(&space, &EvenPruner, 3).unwrap();
        let unsharded = covered.search_pruned(&space, &EvenPruner).unwrap();
        assert_eq!(sharded.mapping, unsharded.mapping);
        assert_eq!(sharded.objective, unsharded.objective);
        assert_eq!(sharded.stats, unsharded.stats);
    }

    #[test]
    fn zero_enumerate_hybrid_is_pure_sampling() {
        // enumerate == 0 exhausts the prefix immediately — that must
        // read as "no prefix", not "prefix covered the space"
        let space = setup();
        let stream: Vec<Mapping> = Mapper::Hybrid {
            enumerate: 0,
            samples: 16,
            seed: 2,
            sampling: SampleStrategy::Uniform,
        }
        .candidates(&space)
        .collect();
        assert!(!stream.is_empty(), "sample tail must run with no prefix");
    }

    #[test]
    fn uncovered_prefix_still_samples() {
        let space = setup();
        let mapper = Mapper::Hybrid {
            enumerate: 63, // one short of the 64-candidate space
            samples: 200,
            seed: 5,
            sampling: SampleStrategy::Uniform,
        };
        let stream: Vec<Mapping> = mapper.candidates(&space).collect();
        assert!(
            stream.len() > 63,
            "a non-covering prefix must keep its sample tail"
        );
    }

    #[test]
    fn generated_counted_from_stream() {
        // the stream is lazy: generated reflects candidates actually
        // drawn, and a tiny limit draws no more than that
        let space = setup();
        let r = Mapper::Exhaustive { limit: 7 }
            .search(&space, toy_objective)
            .unwrap();
        assert_eq!(r.stats.generated, 7);
    }

    /// Evaluator pruning even innermost-products, matching an objective
    /// that rejects them.
    struct EvenPruner;

    impl CandidateEvaluator for EvenPruner {
        fn precheck(&self, m: &Mapping) -> bool {
            let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
            !inner.is_multiple_of(2)
        }

        fn evaluate(&self, m: &Mapping) -> Option<f64> {
            let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
            if inner.is_multiple_of(2) {
                None
            } else {
                Some(1.0 / inner as f64)
            }
        }
    }

    #[test]
    fn precheck_prunes_and_accounts() {
        let space = setup();
        let r = Mapper::Exhaustive { limit: 10_000 }
            .search_pruned(&space, &EvenPruner)
            .unwrap();
        assert!(r.stats.pruned > 0, "some candidates must be pruned");
        assert_eq!(
            r.stats.pruned + r.stats.evaluated + r.stats.invalid,
            r.stats.generated
        );
        // pruning must not change the winner vs. the plain objective
        let plain = Mapper::Exhaustive { limit: 10_000 }
            .search(&space, |m| EvenPruner.evaluate(m))
            .unwrap();
        assert_eq!(r.objective, plain.objective);
        assert_eq!(r.mapping, plain.mapping);
    }

    #[test]
    fn par_search_matches_sequential_exhaustive() {
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        let seq = Mapper::Exhaustive { limit: 100_000 }
            .search_pruned(&space, &objective)
            .unwrap();
        for threads in [2, 3, 8] {
            let par = Mapper::Exhaustive { limit: 100_000 }
                .par_search(&space, &objective, Some(threads))
                .unwrap();
            assert_eq!(par.objective, seq.objective, "threads={threads}");
            assert_eq!(par.mapping, seq.mapping, "threads={threads}");
            assert_eq!(par.stats, seq.stats, "threads={threads}");
        }
    }

    #[test]
    fn par_search_matches_sequential_random_and_hybrid() {
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        for mapper in [
            Mapper::Random {
                samples: 200,
                seed: 9,
            },
            Mapper::Hybrid {
                enumerate: 64,
                samples: 64,
                seed: 5,
                sampling: SampleStrategy::Uniform,
            },
        ] {
            let seq = mapper.search_pruned(&space, &objective).unwrap();
            let par = mapper.par_search(&space, &objective, Some(4)).unwrap();
            assert_eq!(par.objective, seq.objective);
            assert_eq!(par.mapping, seq.mapping);
        }
    }

    #[test]
    fn par_search_with_pruning_evaluator() {
        let space = setup();
        let seq = Mapper::Exhaustive { limit: 50_000 }
            .search_pruned(&space, &EvenPruner)
            .unwrap();
        let par = Mapper::Exhaustive { limit: 50_000 }
            .par_search(&space, &EvenPruner, Some(4))
            .unwrap();
        assert_eq!(par.objective, seq.objective);
        assert_eq!(par.mapping, seq.mapping);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn nan_objectives_counted_invalid_and_deterministic() {
        let space = setup();
        // poison the optimum with NaN: it must be rejected, not win
        let nan_obj = |m: &Mapping| {
            let inner: u64 = m.nests()[1].iter().map(|l| l.bound).product();
            if inner == 512 {
                Some(f64::NAN)
            } else {
                Some(1.0 / inner as f64)
            }
        };
        let seq = Mapper::Exhaustive { limit: 100_000 }
            .search(&space, nan_obj)
            .unwrap();
        assert!(seq.stats.invalid > 0, "NaN candidates count as invalid");
        assert!(!seq.objective.is_nan());
        let par = Mapper::Exhaustive { limit: 100_000 }
            .par_search(&space, &nan_obj, Some(4))
            .unwrap();
        assert_eq!(par.objective, seq.objective);
        assert_eq!(par.mapping, seq.mapping);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn search_sharded_matches_par_search_exhaustive() {
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        // limits both above and *below* the space size: the census must
        // reproduce the exact global cutoff
        for limit in [7, 100, 100_000] {
            let mapper = Mapper::Exhaustive { limit };
            let (seq, seq_stats) = mapper.search_pruned_counted(&space, &objective);
            for shards in [1, 2, 3, 7] {
                let (got, stats) = mapper.search_sharded_counted(&space, &objective, shards);
                match (&got, &seq) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.objective, b.objective, "shards={shards} limit={limit}");
                        assert_eq!(a.mapping, b.mapping, "shards={shards} limit={limit}");
                    }
                    (None, None) => {}
                    other => panic!("sharded/sequential disagree: {other:?}"),
                }
                assert_eq!(stats, seq_stats, "shards={shards} limit={limit}");
            }
        }
    }

    #[test]
    fn search_sharded_matches_par_search_hybrid_and_random() {
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        for mapper in [
            Mapper::Hybrid {
                enumerate: 64,
                samples: 64,
                seed: 5,
                sampling: SampleStrategy::Uniform,
            },
            Mapper::Hybrid {
                enumerate: 32,
                samples: 100,
                seed: 11,
                sampling: SampleStrategy::Halton,
            },
            Mapper::Random {
                samples: 200,
                seed: 9,
            },
        ] {
            let (seq, seq_stats) = mapper.search_pruned_counted(&space, &objective);
            for shards in [1, 2, 3] {
                let (got, stats) = mapper.search_sharded_counted(&space, &objective, shards);
                let (a, b) = (got.unwrap(), seq.clone().unwrap());
                assert_eq!(a.objective, b.objective, "shards={shards} {mapper:?}");
                assert_eq!(a.mapping, b.mapping, "shards={shards} {mapper:?}");
                assert_eq!(stats, seq_stats, "shards={shards} {mapper:?}");
            }
        }
    }

    #[test]
    fn search_sharded_with_pruning_evaluator() {
        let space = setup();
        let seq = Mapper::Exhaustive { limit: 50_000 }
            .search_pruned(&space, &EvenPruner)
            .unwrap();
        let sharded = Mapper::Exhaustive { limit: 50_000 }
            .search_sharded(&space, &EvenPruner, 4)
            .unwrap();
        assert_eq!(sharded.objective, seq.objective);
        assert_eq!(sharded.mapping, seq.mapping);
        assert_eq!(sharded.stats, seq.stats);
    }

    #[test]
    fn search_sharded_all_invalid_returns_none_with_stats() {
        let space = setup();
        let reject = |_: &Mapping| -> Option<f64> { None };
        let (result, stats) =
            Mapper::Exhaustive { limit: 10 }.search_sharded_counted(&space, &reject, 3);
        assert!(result.is_none());
        assert_eq!(stats.generated, 10);
        assert_eq!(stats.invalid, 10);
    }

    #[test]
    fn hybrid_halton_tail_skips_enumerated_prefix() {
        let space = setup();
        let mapper = Mapper::Hybrid {
            enumerate: 200,
            samples: 300,
            seed: 3,
            sampling: SampleStrategy::Halton,
        };
        let stream: Vec<Mapping> = mapper.candidates(&space).collect();
        let prefix: std::collections::HashSet<&Mapping> = stream.iter().take(200).collect();
        for m in stream.iter().skip(200) {
            assert!(!prefix.contains(m), "halton sample repeats prefix");
        }
    }

    #[test]
    fn per_shard_merge_matches_in_process_sharded_search() {
        // the multi-process contract: running search_shard_counted for
        // every shard index (as worker processes would) and merging must
        // reproduce search_sharded_counted bit-identically — winner
        // mapping, objective bits, and summed counters — for every
        // strategy and shard count
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        for mapper in [
            Mapper::Exhaustive { limit: 100_000 },
            Mapper::Exhaustive { limit: 7 },
            Mapper::Hybrid {
                enumerate: 64,
                samples: 64,
                seed: 5,
                sampling: SampleStrategy::Uniform,
            },
            Mapper::Hybrid {
                enumerate: 32,
                samples: 100,
                seed: 11,
                sampling: SampleStrategy::Halton,
            },
            Mapper::Hybrid {
                enumerate: 100,
                samples: 50,
                seed: 2,
                sampling: SampleStrategy::Uniform,
            },
            Mapper::Random {
                samples: 200,
                seed: 9,
            },
        ] {
            let (whole, whole_stats) = mapper.search_sharded_counted(&space, &objective, 3);
            for shards in [1, 2, 3] {
                let parts =
                    (0..shards).map(|k| mapper.search_shard_counted(&space, &objective, k, shards));
                let (merged, stats) = merge_shard_results(parts);
                match (&merged, &whole) {
                    (Some(a), Some(b)) => {
                        assert_eq!(
                            a.objective.to_bits(),
                            b.objective.to_bits(),
                            "shards={shards} {mapper:?}"
                        );
                        assert_eq!(a.mapping, b.mapping, "shards={shards} {mapper:?}");
                    }
                    (None, None) => {}
                    other => panic!("merged/in-process disagree: {other:?}"),
                }
                assert_eq!(stats, whole_stats, "shards={shards} {mapper:?}");
            }
        }
    }

    #[test]
    fn per_shard_merge_with_pruning_evaluator() {
        let space = setup();
        let whole = Mapper::Exhaustive { limit: 50_000 }
            .search_sharded(&space, &EvenPruner, 4)
            .unwrap();
        let parts = (0..4).map(|k| {
            Mapper::Exhaustive { limit: 50_000 }.search_shard_counted(&space, &EvenPruner, k, 4)
        });
        let merged = merge_shard_results(parts).0.unwrap();
        assert_eq!(merged.objective, whole.objective);
        assert_eq!(merged.mapping, whole.mapping);
        assert_eq!(merged.stats, whole.stats);
    }

    #[test]
    fn shard_results_survive_the_wire() {
        // encode each shard's winner exactly as the worker protocol does
        // and merge the decoded parts: still bit-identical
        use crate::wire::{
            decode_key, decode_mapping, decode_stats, encode_key, encode_mapping, encode_stats,
            WireReader, WireWriter,
        };
        let space = setup();
        let objective = |m: &Mapping| toy_objective(m);
        let mapper = Mapper::Hybrid {
            enumerate: 40,
            samples: 60,
            seed: 7,
            sampling: SampleStrategy::Uniform,
        };
        let (whole, whole_stats) = mapper.search_sharded_counted(&space, &objective, 3);
        let mut parts = Vec::new();
        for k in 0..3 {
            let (winner, stats) = mapper.search_shard_counted(&space, &objective, k, 3);
            let mut w = WireWriter::new();
            encode_stats(&mut w, &stats);
            match &winner {
                Some((v, key, m)) => {
                    w.put_bool(true);
                    w.put_f64_bits(*v);
                    encode_key(&mut w, key);
                    encode_mapping(&mut w, m);
                }
                None => w.put_bool(false),
            }
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let stats = decode_stats(&mut r).unwrap();
            let winner = if r.get_bool("have").unwrap() {
                let v = r.get_f64_bits("value").unwrap();
                let key = decode_key(&mut r).unwrap();
                let m = decode_mapping(&mut r).unwrap();
                Some((v, key, m))
            } else {
                None
            };
            assert!(r.is_done());
            parts.push((winner, stats));
        }
        let (merged, stats) = merge_shard_results(parts);
        let (a, b) = (merged.unwrap(), whole.unwrap());
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(stats, whole_stats);
    }

    #[test]
    fn par_search_all_invalid_returns_none() {
        let space = setup();
        let reject = |_: &Mapping| -> Option<f64> { None };
        assert!(Mapper::Exhaustive { limit: 10 }
            .par_search(&space, &reject, Some(4))
            .is_none());
    }
}
