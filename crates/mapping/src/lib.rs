//! # sparseloop-mapping
//!
//! Mappings, mapspaces, and the mapper (Sparseloop §5.1, Fig. 6/10).
//!
//! A *mapping* is an exact schedule: per storage level, an ordered list of
//! `for` (temporal) and `parallel-for` (spatial) loops, plus per-level
//! bypass choices saying which tensors each level actually stores. The
//! dataflow-modeling step consumes the mapping to derive dense traffic;
//! the gating/skipping analyzer consumes it to identify leader/follower
//! tiles (mapping-dependent intersection behavior, Fig. 10).
//!
//! A *mapspace* is the set of mappings compatible with user constraints
//! (allowed loop orders, dims eligible for spatial distribution). The
//! [`mapper`] searches a mapspace — exhaustively for small spaces, by
//! seeded random sampling for large ones — ranking candidates with a
//! caller-supplied objective (the paper searches for best energy-delay
//! product or latency given the analytical model).

pub mod loops;
pub mod mapper;
pub mod mapspace;
pub mod wire;

pub use loops::{Loop, LoopKind, Mapping, MappingBuilder, MappingError};
pub use mapper::{
    merge_shard_results, CandidateEvaluator, Mapper, SampleStrategy, SearchResult, SearchStats,
    ShardWinner, WorkerEvaluator,
};
pub use mapspace::{
    factorizations, CandidateKey, ChangeDepth, EnumerateIter, HaltonSampleIter, Mapspace,
    MapspaceShard, SampleIter,
};
pub use wire::{WireError, WireReader, WireWriter};
