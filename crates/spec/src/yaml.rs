//! A self-contained YAML-subset parser for scenario spec documents.
//!
//! The subset covers what the spec grammar (see the crate docs) needs
//! and nothing more: block mappings and sequences nested by indentation,
//! single-line flow collections (`[a, b]`, `{k: v}`), plain and quoted
//! scalars, and `#` comments. Anchors, aliases, multi-document streams,
//! multi-line flow nodes, tags, and block scalars are out of scope — a
//! document using them gets a positioned error, not silent misparsing.
//!
//! Every node carries its source [`Span`], so the compiler one layer up
//! can report *where* a value is wrong, not just that it is.

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Source line (1-based).
    pub line: usize,
    /// Source column (1-based).
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One parsed node: a value plus where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Where the node begins in the source.
    pub span: Span,
    /// The node's value.
    pub value: Value,
}

/// One `key: value` entry of a mapping, with the key's own span.
#[derive(Debug, Clone, PartialEq)]
pub struct MapEntry {
    /// The (unquoted) key text.
    pub key: String,
    /// Where the key begins.
    pub key_span: Span,
    /// The entry's value.
    pub value: Node,
}

/// A parsed YAML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An empty value (`key:` with nothing nested).
    Null,
    /// A scalar, unquoted; numbers/booleans are interpreted by the
    /// consumer, which knows the expected type.
    Scalar(String),
    /// A sequence (block `- item` or flow `[a, b]`).
    Seq(Vec<Node>),
    /// A mapping (block `key: value` or flow `{k: v}`), in source order.
    Map(Vec<MapEntry>),
}

impl Value {
    /// Short name for error messages ("mapping", "sequence", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "empty value",
            Value::Scalar(_) => "scalar",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "mapping",
        }
    }
}

/// A positioned parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where parsing failed.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(span: Span, message: impl Into<String>) -> ParseError {
    ParseError {
        span,
        message: message.into(),
    }
}

/// One non-blank, non-comment source line.
#[derive(Debug)]
struct Line<'a> {
    /// 1-based source line number.
    number: usize,
    /// Leading-space count.
    indent: usize,
    /// Content with indentation stripped (comments removed, trailing
    /// whitespace trimmed); never empty.
    content: &'a str,
}

/// Parses a whole document into its root node.
///
/// # Errors
/// Returns a [`ParseError`] with the position of the first problem.
pub fn parse_document(source: &str) -> Result<Node, ParseError> {
    let lines = logical_lines(source)?;
    if lines.is_empty() {
        return Err(err(
            Span { line: 1, col: 1 },
            "document is empty (comments and blank lines only)",
        ));
    }
    let mut parser = Parser {
        lines: &lines,
        pos: 0,
    };
    let root_indent = lines[0].indent;
    let node = parser.parse_block(root_indent)?;
    if let Some(extra) = parser.peek() {
        return Err(err(
            Span {
                line: extra.number,
                col: extra.indent + 1,
            },
            format!(
                "trailing content outdented past the document root (expected indent >= {})",
                root_indent
            ),
        ));
    }
    Ok(node)
}

/// Splits the source into content-bearing lines, stripping comments.
fn logical_lines(source: &str) -> Result<Vec<Line<'_>>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        if raw.contains('\t') {
            let col = raw.find('\t').unwrap_or(0) + 1;
            return Err(err(
                Span { line: number, col },
                "tab characters are not allowed; indent with spaces",
            ));
        }
        let indent = raw.len() - raw.trim_start_matches(' ').len();
        let content = strip_comment(&raw[indent..]);
        let content = content.trim_end();
        if content.is_empty() {
            continue;
        }
        if content.starts_with("---") {
            return Err(err(
                Span {
                    line: number,
                    col: indent + 1,
                },
                "multi-document streams ('---') are not supported",
            ));
        }
        out.push(Line {
            number,
            indent,
            content,
        });
    }
    Ok(out)
}

/// Whether a quote at byte `i` can *open* a quoted scalar: only at the
/// start of a value position (line start, or after a separator). An
/// apostrophe inside a plain scalar (`Tim's data`) is just a character —
/// treating it as a quote would silently swallow a trailing comment.
fn opens_quote(bytes: &[u8], i: usize) -> bool {
    i == 0 || matches!(bytes[i - 1], b' ' | b'[' | b'{' | b',' | b':')
}

/// Removes a trailing `#` comment, respecting quoted strings.
fn strip_comment(content: &str) -> &str {
    let bytes = content.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'"' if in_double => in_double = false,
            b'"' if !in_single && opens_quote(bytes, i) => in_double = true,
            b'\'' if in_single => in_single = false,
            b'\'' if !in_double && opens_quote(bytes, i) => in_single = true,
            // a comment starts at line start or after whitespace
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1] == b' ') => {
                return &content[..i];
            }
            _ => {}
        }
    }
    content
}

struct Parser<'a> {
    lines: &'a [Line<'a>],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Line<'a>> {
        self.lines.get(self.pos)
    }

    /// Parses the block starting at the current line, which must be
    /// indented exactly `indent`.
    fn parse_block(&mut self, indent: usize) -> Result<Node, ParseError> {
        let first = self.peek().expect("parse_block called with lines left");
        let span = Span {
            line: first.number,
            col: first.indent + 1,
        };
        if first.indent != indent {
            return Err(err(
                span,
                format!(
                    "inconsistent indentation: expected {} spaces, found {}",
                    indent, first.indent
                ),
            ));
        }
        if first.content == "-" || first.content.starts_with("- ") {
            self.parse_block_seq(indent)
        } else {
            self.parse_block_map(indent)
        }
    }

    /// Parses consecutive `- item` lines at `indent` into a sequence.
    fn parse_block_seq(&mut self, indent: usize) -> Result<Node, ParseError> {
        let span = {
            let l = self.peek().expect("sequence start");
            Span {
                line: l.number,
                col: l.indent + 1,
            }
        };
        let mut items = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent != indent || !(line.content == "-" || line.content.starts_with("- ")) {
                if line.indent > indent {
                    return Err(err(
                        Span {
                            line: line.number,
                            col: line.indent + 1,
                        },
                        format!("expected a '-' sequence item indented {} spaces", indent),
                    ));
                }
                break;
            }
            let item_line = line.number;
            let rest = line.content[1..].trim_start();
            let rest_col = line.indent + 1 + (line.content.len() - rest.len());
            if rest.is_empty() {
                // `-` alone: the item is the nested block below
                self.pos += 1;
                let item = match self.peek() {
                    Some(next) if next.indent > indent => self.parse_block(next.indent)?,
                    _ => Node {
                        span: Span {
                            line: item_line,
                            col: indent + 1,
                        },
                        value: Value::Null,
                    },
                };
                items.push(item);
            } else if let Some((key, key_col, value_text, value_col)) = split_key(rest, rest_col) {
                // `- key: …` starts an inline mapping whose further keys
                // sit at the column of this first key
                let item = self.parse_seq_item_map(
                    item_line,
                    &key,
                    key_col,
                    value_text,
                    value_col,
                    key_col - 1,
                )?;
                items.push(item);
            } else {
                self.pos += 1;
                items.push(parse_inline(
                    rest,
                    Span {
                        line: item_line,
                        col: rest_col,
                    },
                )?);
            }
        }
        Ok(Node {
            span,
            value: Value::Seq(items),
        })
    }

    /// Parses a sequence item of the `- key: value` form: a mapping whose
    /// first entry shares the dash's line and whose remaining entries are
    /// indented to the first key's column (`map_indent`).
    #[allow(clippy::too_many_arguments)]
    fn parse_seq_item_map(
        &mut self,
        first_line: usize,
        key: &str,
        key_col: usize,
        value_text: &str,
        value_col: usize,
        map_indent: usize,
    ) -> Result<Node, ParseError> {
        let span = Span {
            line: first_line,
            col: key_col,
        };
        let mut entries = Vec::new();
        self.pos += 1;
        let first_value = self.entry_value(value_text, first_line, value_col, map_indent)?;
        entries.push(MapEntry {
            key: key.to_string(),
            key_span: span,
            value: first_value,
        });
        self.collect_map_entries(map_indent, &mut entries)?;
        Ok(Node {
            span,
            value: Value::Map(entries),
        })
    }

    /// Parses consecutive `key: value` lines at `indent` into a mapping.
    fn parse_block_map(&mut self, indent: usize) -> Result<Node, ParseError> {
        let span = {
            let l = self.peek().expect("mapping start");
            Span {
                line: l.number,
                col: l.indent + 1,
            }
        };
        let mut entries = Vec::new();
        // first entry
        {
            let line = self.peek().expect("mapping start");
            let line_no = line.number;
            let Some((key, key_col, value_text, value_col)) =
                split_key(line.content, line.indent + 1)
            else {
                return Err(err(
                    span,
                    "expected 'key: value' (plain scalars cannot stand alone here)",
                ));
            };
            self.pos += 1;
            let value = self.entry_value(value_text, line_no, value_col, indent)?;
            entries.push(MapEntry {
                key,
                key_span: Span {
                    line: line_no,
                    col: key_col,
                },
                value,
            });
        }
        self.collect_map_entries(indent, &mut entries)?;
        Ok(Node {
            span,
            value: Value::Map(entries),
        })
    }

    /// Collects further `key: value` entries at exactly `indent` into
    /// `entries`, erroring on duplicates and stray deeper lines.
    fn collect_map_entries(
        &mut self,
        indent: usize,
        entries: &mut Vec<MapEntry>,
    ) -> Result<(), ParseError> {
        while let Some(line) = self.peek() {
            if line.indent < indent {
                break;
            }
            let line_span = Span {
                line: line.number,
                col: line.indent + 1,
            };
            if line.indent > indent {
                return Err(err(
                    line_span,
                    format!(
                        "unexpected indentation (expected a key at {} spaces)",
                        indent
                    ),
                ));
            }
            if line.content == "-" || line.content.starts_with("- ") {
                break; // sibling sequence: belongs to the enclosing key
            }
            let line_no = line.number;
            let Some((key, key_col, value_text, value_col)) =
                split_key(line.content, line.indent + 1)
            else {
                return Err(err(line_span, "expected 'key: value'"));
            };
            if entries.iter().any(|e| e.key == key) {
                return Err(err(
                    Span {
                        line: line_no,
                        col: key_col,
                    },
                    format!("duplicate key {key:?}"),
                ));
            }
            self.pos += 1;
            let value = self.entry_value(value_text, line_no, value_col, indent)?;
            entries.push(MapEntry {
                key,
                key_span: Span {
                    line: line_no,
                    col: key_col,
                },
                value,
            });
        }
        Ok(())
    }

    /// The value of a map entry: inline text if present, otherwise the
    /// nested block below (deeper than `key_indent`, or a sequence at the
    /// key's own indent — both standard YAML).
    fn entry_value(
        &mut self,
        value_text: &str,
        line_no: usize,
        value_col: usize,
        key_indent: usize,
    ) -> Result<Node, ParseError> {
        if !value_text.is_empty() {
            return parse_inline(
                value_text,
                Span {
                    line: line_no,
                    col: value_col,
                },
            );
        }
        match self.peek() {
            Some(next) if next.indent > key_indent => self.parse_block(next.indent),
            Some(next)
                if next.indent == key_indent
                    && (next.content == "-" || next.content.starts_with("- ")) =>
            {
                self.parse_block_seq(key_indent)
            }
            _ => Ok(Node {
                span: Span {
                    line: line_no,
                    col: value_col,
                },
                value: Value::Null,
            }),
        }
    }
}

/// Splits `key: value` at the first top-level unquoted `: ` (or a
/// trailing `:`). Returns `(key, key_col, value_text, value_col)`; `None`
/// when the line has no key separator. `start_col` is the 1-based column
/// of the first content character.
fn split_key(content: &str, start_col: usize) -> Option<(String, usize, &str, usize)> {
    let bytes = content.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    let mut depth = 0usize; // inside flow collections ':' is not a key sep
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'"' if in_double => in_double = false,
            b'"' if !in_single && opens_quote(bytes, i) => in_double = true,
            b'\'' if in_single => in_single = false,
            b'\'' if !in_double && opens_quote(bytes, i) => in_single = true,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b':' if !in_single && !in_double && depth == 0 => {
                let at_end = i + 1 == bytes.len();
                if at_end || bytes[i + 1] == b' ' {
                    let key = content[..i].trim_end();
                    let key = unquote_key(key);
                    let value = if at_end {
                        ""
                    } else {
                        content[i + 1..].trim_start()
                    };
                    let value_col = start_col + (content.len() - value.len());
                    return Some((key, start_col, value, value_col));
                }
            }
            _ => {}
        }
    }
    None
}

/// Strips surrounding quotes from a key, unescaping the contents with
/// the same rules as quoted scalar values (`\"`, `\\`, `\n`, `\t` in
/// double quotes; `''` in single quotes) — the emitter quotes keys with
/// the same `scalar()` helper it uses for values, so both must decode
/// identically or emitted names with quotes/backslashes fail to reparse.
fn unquote_key(key: &str) -> String {
    let b = key.as_bytes();
    if b.len() < 2 {
        return key.to_string();
    }
    let quote = b[0];
    if (quote != b'"' && quote != b'\'') || b[b.len() - 1] != quote {
        return key.to_string();
    }
    let inner = &key[1..key.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match (quote, c) {
            (b'"', '\\') => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other), // \" and \\ and anything else
                None => out.push('\\'),
            },
            (b'\'', '\'') => {
                // '' is an escaped quote; a lone ' cannot occur in a
                // well-formed single-quoted key
                if chars.next().is_some() {
                    out.push('\'');
                }
            }
            (_, other) => out.push(other),
        }
    }
    out
}

/// Parses an inline value: a flow collection or a scalar.
fn parse_inline(text: &str, span: Span) -> Result<Node, ParseError> {
    let mut cursor = Cursor {
        text,
        byte: 0,
        span,
    };
    let node = cursor.parse_value(false)?;
    cursor.skip_spaces();
    if cursor.byte < text.len() {
        return Err(err(
            cursor.here(),
            format!(
                "trailing characters after value: {:?}",
                &text[cursor.byte..]
            ),
        ));
    }
    Ok(node)
}

/// A character cursor over one line's inline value text.
struct Cursor<'a> {
    text: &'a str,
    byte: usize,
    /// Span of the text's first character (column math offsets from it).
    span: Span,
}

impl Cursor<'_> {
    fn here(&self) -> Span {
        Span {
            line: self.span.line,
            col: self.span.col + self.byte,
        }
    }

    fn rest(&self) -> &str {
        &self.text[self.byte..]
    }

    fn skip_spaces(&mut self) {
        while self.rest().starts_with(' ') {
            self.byte += 1;
        }
    }

    /// Parses one value; `in_flow` bounds plain scalars at `,`/`]`/`}`.
    fn parse_value(&mut self, in_flow: bool) -> Result<Node, ParseError> {
        self.skip_spaces();
        let span = self.here();
        match self.rest().as_bytes().first() {
            None => Ok(Node {
                span,
                value: Value::Null,
            }),
            Some(b'[') => self.parse_flow_seq(),
            Some(b'{') => self.parse_flow_map(),
            Some(b'"') | Some(b'\'') => {
                let s = self.parse_quoted()?;
                Ok(Node {
                    span,
                    value: Value::Scalar(s),
                })
            }
            Some(_) => {
                let s = if in_flow {
                    self.parse_plain_until(b",]}")
                } else {
                    self.parse_plain()
                };
                if s == "~" || s == "null" {
                    Ok(Node {
                        span,
                        value: Value::Null,
                    })
                } else {
                    Ok(Node {
                        span,
                        value: Value::Scalar(s),
                    })
                }
            }
        }
    }

    fn parse_flow_seq(&mut self) -> Result<Node, ParseError> {
        let span = self.here();
        self.byte += 1; // '['
        let mut items = Vec::new();
        loop {
            self.skip_spaces();
            match self.rest().as_bytes().first() {
                None => return Err(err(self.here(), "unterminated flow sequence (missing ']')")),
                Some(b']') => {
                    self.byte += 1;
                    break;
                }
                _ => {}
            }
            items.push(self.parse_value(true)?);
            self.skip_spaces();
            match self.rest().as_bytes().first() {
                Some(b',') => {
                    self.byte += 1;
                }
                Some(b']') => {}
                None => return Err(err(self.here(), "unterminated flow sequence (missing ']')")),
                _ => return Err(err(self.here(), "expected ',' or ']' in flow sequence")),
            }
        }
        Ok(Node {
            span,
            value: Value::Seq(items),
        })
    }

    fn parse_flow_map(&mut self) -> Result<Node, ParseError> {
        let span = self.here();
        self.byte += 1; // '{'
        let mut entries: Vec<MapEntry> = Vec::new();
        loop {
            self.skip_spaces();
            match self.rest().as_bytes().first() {
                None => return Err(err(self.here(), "unterminated flow mapping (missing '}')")),
                Some(b'}') => {
                    self.byte += 1;
                    break;
                }
                _ => {}
            }
            let key_span = self.here();
            let key = match self.rest().as_bytes().first() {
                Some(b'"') | Some(b'\'') => self.parse_quoted()?,
                _ => {
                    let k = self.parse_plain_until(b":,}");
                    if k.is_empty() {
                        return Err(err(key_span, "expected a key in flow mapping"));
                    }
                    k
                }
            };
            self.skip_spaces();
            if self.rest().as_bytes().first() != Some(&b':') {
                return Err(err(self.here(), "expected ':' after flow mapping key"));
            }
            self.byte += 1;
            let value = self.parse_value(true)?;
            if entries.iter().any(|e| e.key == key) {
                return Err(err(key_span, format!("duplicate key {key:?}")));
            }
            entries.push(MapEntry {
                key,
                key_span,
                value,
            });
            self.skip_spaces();
            match self.rest().as_bytes().first() {
                Some(b',') => {
                    self.byte += 1;
                }
                Some(b'}') => {}
                None => return Err(err(self.here(), "unterminated flow mapping (missing '}')")),
                _ => return Err(err(self.here(), "expected ',' or '}' in flow mapping")),
            }
        }
        Ok(Node {
            span,
            value: Value::Map(entries),
        })
    }

    /// A quoted scalar; the cursor sits on the opening quote.
    fn parse_quoted(&mut self) -> Result<String, ParseError> {
        let quote = self.rest().as_bytes()[0];
        let start = self.here();
        self.byte += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.rest().as_bytes().first() else {
                return Err(err(start, "unterminated quoted string"));
            };
            if b == quote {
                self.byte += 1;
                // '' inside single quotes is an escaped quote
                if quote == b'\'' && self.rest().as_bytes().first() == Some(&b'\'') {
                    out.push('\'');
                    self.byte += 1;
                    continue;
                }
                return Ok(out);
            }
            if b == b'\\' && quote == b'"' {
                self.byte += 1;
                let Some(&e) = self.rest().as_bytes().first() else {
                    return Err(err(start, "unterminated escape in quoted string"));
                };
                out.push(match e {
                    b'n' => '\n',
                    b't' => '\t',
                    b'"' => '"',
                    b'\\' => '\\',
                    other => {
                        return Err(err(
                            self.here(),
                            format!("unsupported escape '\\{}'", other as char),
                        ))
                    }
                });
                self.byte += 1;
                continue;
            }
            let ch_len = self.rest().chars().next().map(char::len_utf8).unwrap_or(1);
            out.push_str(&self.rest()[..ch_len]);
            self.byte += ch_len;
        }
    }

    /// A plain (unquoted) scalar running to the end of the line.
    fn parse_plain(&mut self) -> String {
        let s = self.rest().trim_end().to_string();
        self.byte = self.text.len();
        s
    }

    /// A plain scalar terminated by any of `stops` (flow context).
    fn parse_plain_until(&mut self, stops: &[u8]) -> String {
        let rest = self.rest();
        let end = rest
            .bytes()
            .position(|b| stops.contains(&b))
            .unwrap_or(rest.len());
        let s = rest[..end].trim().to_string();
        self.byte += end;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(node: &Node) -> &[MapEntry] {
        match &node.value {
            Value::Map(entries) => entries,
            other => panic!("expected map, got {}", other.kind()),
        }
    }

    fn scalar(node: &Node) -> &str {
        match &node.value {
            Value::Scalar(s) => s,
            other => panic!("expected scalar, got {}", other.kind()),
        }
    }

    #[test]
    fn block_map_and_nesting() {
        let doc = parse_document("a: 1\nb:\n  c: hi\n  d: [1, 2]\n").unwrap();
        let root = map(&doc);
        assert_eq!(root[0].key, "a");
        assert_eq!(scalar(&root[0].value), "1");
        let b = map(&root[1].value);
        assert_eq!(b[0].key, "c");
        assert_eq!(scalar(&b[0].value), "hi");
        assert!(matches!(b[1].value.value, Value::Seq(ref s) if s.len() == 2));
    }

    #[test]
    fn block_seq_of_maps() {
        let doc = parse_document("items:\n  - name: x\n    n: 1\n  - name: y\n    n: 2\n").unwrap();
        let root = map(&doc);
        let Value::Seq(items) = &root[0].value.value else {
            panic!("expected seq");
        };
        assert_eq!(items.len(), 2);
        let first = map(&items[0]);
        assert_eq!(first[0].key, "name");
        assert_eq!(scalar(&first[0].value), "x");
        assert_eq!(first[1].key, "n");
    }

    #[test]
    fn seq_at_key_indent() {
        let doc = parse_document("items:\n- a\n- b\n").unwrap();
        let root = map(&doc);
        let Value::Seq(items) = &root[0].value.value else {
            panic!("expected seq");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(scalar(&items[0]), "a");
    }

    #[test]
    fn flow_collections() {
        let doc =
            parse_document("x: {a: 1, b: [p, q], c: \"s: t\"}\ny: [{n: 1}, {n: 2}]\n").unwrap();
        let root = map(&doc);
        let x = map(&root[0].value);
        assert_eq!(scalar(&x[0].value), "1");
        let Value::Seq(b) = &x[1].value.value else {
            panic!()
        };
        assert_eq!(scalar(&b[1]), "q");
        assert_eq!(scalar(&x[2].value), "s: t");
        let Value::Seq(y) = &root[1].value.value else {
            panic!()
        };
        assert_eq!(map(&y[1])[0].key, "n");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = parse_document("# header\n\na: 1  # trailing\n\n# middle\nb: 2\n").unwrap();
        let root = map(&doc);
        assert_eq!(root.len(), 2);
        assert_eq!(scalar(&root[1].value), "2");
    }

    #[test]
    fn hash_inside_quotes_kept() {
        let doc = parse_document("a: \"x # y\"\n").unwrap();
        assert_eq!(scalar(&map(&doc)[0].value), "x # y");
    }

    #[test]
    fn apostrophe_in_plain_scalar_does_not_eat_comments() {
        // a mid-word apostrophe is a character, not a quote opener: the
        // trailing comment must still be stripped
        let doc = parse_document("title: Tim's data  # a comment\nn: 1\n").unwrap();
        let root = map(&doc);
        assert_eq!(scalar(&root[0].value), "Tim's data");
        assert_eq!(scalar(&root[1].value), "1");
        // ...while a value-position quote still protects its contents
        let doc = parse_document("a: 'kept # here'\n").unwrap();
        assert_eq!(scalar(&map(&doc)[0].value), "kept # here");
    }

    #[test]
    fn plain_scalar_with_spaces_in_flow_seq() {
        let doc = parse_document("loops: [for m in 8, parallel-for n in 16]\n").unwrap();
        let Value::Seq(items) = &map(&doc)[0].value.value else {
            panic!()
        };
        assert_eq!(scalar(&items[0]), "for m in 8");
        assert_eq!(scalar(&items[1]), "parallel-for n in 16");
    }

    #[test]
    fn quoted_escapes() {
        let doc = parse_document("a: \"q\\\"w\\\\e\"\nb: 'it''s'\n").unwrap();
        let root = map(&doc);
        assert_eq!(scalar(&root[0].value), "q\"w\\e");
        assert_eq!(scalar(&root[1].value), "it's");
    }

    #[test]
    fn quoted_keys_unescape_like_values() {
        // block keys must decode exactly like quoted values — the
        // emitter quotes both with the same helper
        let doc = parse_document("\"A\\\"B\": 1\n'it''s': 2\n\"x:y\": 3\n").unwrap();
        let root = map(&doc);
        assert_eq!(root[0].key, "A\"B");
        assert_eq!(root[1].key, "it's");
        assert_eq!(root[2].key, "x:y");
    }

    #[test]
    fn null_values() {
        let doc = parse_document("a:\nb: 1\n").unwrap();
        let root = map(&doc);
        assert!(matches!(root[0].value.value, Value::Null));
    }

    #[test]
    fn spans_point_at_source() {
        let doc = parse_document("a: 1\nnested:\n  deep: [1, 2]\n").unwrap();
        let root = map(&doc);
        assert_eq!(root[1].key_span, Span { line: 2, col: 1 });
        let nested = map(&root[1].value);
        assert_eq!(nested[0].key_span, Span { line: 3, col: 3 });
        assert_eq!(nested[0].value.span, Span { line: 3, col: 9 });
    }

    #[test]
    fn error_on_tab() {
        let e = parse_document("a:\n\tb: 1\n").unwrap_err();
        assert_eq!(e.span.line, 2);
        assert!(e.message.contains("tab"));
    }

    #[test]
    fn error_on_bad_indent() {
        let e = parse_document("a:\n  b: 1\n   c: 2\n").unwrap_err();
        assert_eq!(e.span.line, 3);
        assert!(e.message.contains("indent"), "{}", e.message);
    }

    #[test]
    fn error_on_duplicate_key() {
        let e = parse_document("a: 1\na: 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{}", e.message);
        assert_eq!(e.span.line, 2);
    }

    #[test]
    fn error_on_unterminated_flow() {
        let e = parse_document("a: [1, 2\n").unwrap_err();
        assert!(e.message.contains("unterminated"), "{}", e.message);
    }

    #[test]
    fn error_on_scalar_line_in_map() {
        let e = parse_document("a: 1\njust a scalar\n").unwrap_err();
        assert_eq!(e.span.line, 2);
    }

    #[test]
    fn error_on_empty_document() {
        assert!(parse_document("# nothing\n\n").is_err());
    }
}
