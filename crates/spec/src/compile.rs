//! Compiles parsed spec documents into runnable scenarios.
//!
//! The compiler walks the [`yaml`](crate::yaml) node tree and builds the
//! existing model types — [`Architecture`], [`Layer`], [`SafSpec`],
//! [`Mapping`]/[`Mapspace`], composed into [`DesignPoint`] /
//! [`Experiment`] / [`Scenario`] — validating as it goes. Every failure
//! is a [`SpecError`] carrying the offending line:column and a source
//! excerpt; nothing in here panics on malformed input.

use crate::error::SpecError;
use crate::yaml::{MapEntry, Node, Span, Value};
use sparseloop_arch::{Architecture, ComputeSpec, StorageLevel};
use sparseloop_core::{ActionOpt, Objective, SafSpec};
use sparseloop_designs::scenario::MappingPolicy;
use sparseloop_designs::{DesignPoint, Experiment, Scenario};
use sparseloop_format::{FormatLevel, RankFormat, TensorFormat};
use sparseloop_mapping::{Loop, Mapper, Mapping, Mapspace, SampleStrategy};
use sparseloop_tensor::einsum::{
    Dim, DimId, Einsum, ProjectionTerm, RankProjection, TensorKind, TensorSpec,
};
use sparseloop_workloads::Layer;
use std::collections::HashMap;

use sparseloop_density::DensityModelSpec;

/// A fully compiled spec document: the scenario identity plus its
/// materialized experiment list.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Registry name.
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// The experiments, in document order.
    pub experiments: Vec<Experiment>,
}

impl CompiledScenario {
    /// Wraps the compiled experiments as a registry [`Scenario`] (the
    /// build closure clones the compiled list).
    pub fn into_scenario(self) -> Scenario {
        let CompiledScenario {
            name,
            title,
            experiments,
        } = self;
        Scenario::new(name, title, move || experiments.clone())
    }
}

/// Parses and compiles a spec document from text.
///
/// # Errors
/// Returns a positioned [`SpecError`] on the first parse or compile
/// problem.
pub fn compile_str(source: &str) -> Result<CompiledScenario, SpecError> {
    let doc = crate::yaml::parse_document(source).map_err(|e| SpecError::from_parse(e, source))?;
    Compiler { source }.compile(&doc)
}

struct Compiler<'a> {
    source: &'a str,
}

/// A design definition before its SAFs are bound to a concrete workload
/// (SAF tensor references are *names*; ids depend on the experiment's
/// einsum).
struct DesignDef {
    point_name: String,
    arch: Architecture,
    formats: Vec<(usize, Spanned<String>, TensorFormat)>,
    actions: Vec<ActionDef>,
    compute: Option<ActionOpt>,
}

/// One gating/skipping SAF with unresolved tensor names.
struct ActionDef {
    level: usize,
    action: ActionOpt,
    target: Spanned<String>,
    leaders: Vec<Spanned<String>>,
}

struct Spanned<T> {
    value: T,
    span: Span,
}

impl<'a> Compiler<'a> {
    fn err(&self, span: Span, message: impl Into<String>) -> SpecError {
        SpecError::new(span, message, self.source)
    }

    fn compile(&self, doc: &Node) -> Result<CompiledScenario, SpecError> {
        let root = self.map(doc, "document root")?;
        self.deny_unknown(
            root,
            &[
                "spec_version",
                "scenario",
                "designs",
                "workloads",
                "experiments",
            ],
        )?;
        if let Some(v) = self.get(root, "spec_version") {
            let version = self.u64_value(v)?;
            if version != 1 {
                return Err(self.err(
                    v.span,
                    format!("unsupported spec_version {version} (expected 1)"),
                ));
            }
        }
        let scenario = self.map(self.req(root, doc.span, "scenario")?, "scenario")?;
        self.deny_unknown(scenario, &["name", "title"])?;
        let name = self
            .str_value(self.req(scenario, doc.span, "name")?)?
            .to_string();
        let title = match self.get(scenario, "title") {
            Some(t) => self.str_value(t)?.to_string(),
            None => name.clone(),
        };

        let mut designs: HashMap<String, DesignDef> = HashMap::new();
        for node in self.seq(self.req(root, doc.span, "designs")?, "designs")? {
            let (key, def) = self.compile_design(node)?;
            if designs.insert(key.value.clone(), def).is_some() {
                return Err(self.err(key.span, format!("duplicate design name {:?}", key.value)));
            }
        }

        let mut workloads: HashMap<String, Layer> = HashMap::new();
        for node in self.seq(self.req(root, doc.span, "workloads")?, "workloads")? {
            let (key, layer) = self.compile_workload(node)?;
            if workloads.insert(key.value.clone(), layer).is_some() {
                return Err(self.err(key.span, format!("duplicate workload name {:?}", key.value)));
            }
        }

        let mut experiments = Vec::new();
        for node in self.seq(self.req(root, doc.span, "experiments")?, "experiments")? {
            experiments.push(self.compile_experiment(node, &designs, &workloads)?);
        }
        if experiments.is_empty() {
            return Err(self.err(doc.span, "spec defines no experiments"));
        }
        let mut labels: Vec<&str> = experiments.iter().map(|e| e.label.as_str()).collect();
        labels.sort_unstable();
        if let Some(w) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(self.err(doc.span, format!("duplicate experiment label {:?}", w[0])));
        }
        Ok(CompiledScenario {
            name,
            title,
            experiments,
        })
    }

    // ---- designs ---------------------------------------------------------

    fn compile_design(&self, node: &Node) -> Result<(Spanned<String>, DesignDef), SpecError> {
        let m = self.map(node, "design")?;
        self.deny_unknown(
            m,
            &[
                "name",
                "design_name",
                "architecture",
                "sparse_optimizations",
            ],
        )?;
        let name_node = self.req(m, node.span, "name")?;
        let name = Spanned {
            value: self.str_value(name_node)?.to_string(),
            span: name_node.span,
        };
        let point_name = match self.get(m, "design_name") {
            Some(n) => self.str_value(n)?.to_string(),
            None => name.value.clone(),
        };
        let arch = self.compile_architecture(self.req(m, node.span, "architecture")?)?;
        let mut formats = Vec::new();
        let mut actions = Vec::new();
        let mut compute = None;
        if let Some(safs_node) = self.get(m, "sparse_optimizations") {
            let safs = self.map(safs_node, "sparse_optimizations")?;
            self.deny_unknown(safs, &["formats", "actions", "compute"])?;
            if let Some(fmts) = self.get(safs, "formats") {
                for f in self.seq(fmts, "formats")? {
                    let fm = self.map(f, "format entry")?;
                    self.deny_unknown(fm, &["level", "tensor", "format"])?;
                    let level = self.usize_value(self.req(fm, f.span, "level")?)?;
                    self.check_level(level, &arch, self.req(fm, f.span, "level")?.span)?;
                    let tensor_node = self.req(fm, f.span, "tensor")?;
                    let tensor = Spanned {
                        value: self.str_value(tensor_node)?.to_string(),
                        span: tensor_node.span,
                    };
                    let fmt_node = self.req(fm, f.span, "format")?;
                    let fmt = parse_tensor_format(self.str_value(fmt_node)?)
                        .map_err(|e| self.err(fmt_node.span, e))?;
                    formats.push((level, tensor, fmt));
                }
            }
            if let Some(acts) = self.get(safs, "actions") {
                for a in self.seq(acts, "actions")? {
                    let am = self.map(a, "action entry")?;
                    self.deny_unknown(am, &["level", "action", "target", "leaders"])?;
                    let level = self.usize_value(self.req(am, a.span, "level")?)?;
                    self.check_level(level, &arch, self.req(am, a.span, "level")?.span)?;
                    let action = self.action_value(self.req(am, a.span, "action")?)?;
                    let target_node = self.req(am, a.span, "target")?;
                    let target = Spanned {
                        value: self.str_value(target_node)?.to_string(),
                        span: target_node.span,
                    };
                    let mut leaders = Vec::new();
                    for l in self.seq(self.req(am, a.span, "leaders")?, "leaders")? {
                        leaders.push(Spanned {
                            value: self.str_value(l)?.to_string(),
                            span: l.span,
                        });
                    }
                    if leaders.is_empty() {
                        return Err(self.err(a.span, "an action needs at least one leader tensor"));
                    }
                    actions.push(ActionDef {
                        level,
                        action,
                        target,
                        leaders,
                    });
                }
            }
            if let Some(c) = self.get(safs, "compute") {
                compute = Some(self.action_value(c)?);
            }
        }
        Ok((
            name,
            DesignDef {
                point_name,
                arch,
                formats,
                actions,
                compute,
            },
        ))
    }

    fn check_level(&self, level: usize, arch: &Architecture, span: Span) -> Result<(), SpecError> {
        if level >= arch.num_levels() {
            return Err(self.err(
                span,
                format!(
                    "storage level {level} out of range (architecture {:?} has {} levels)",
                    arch.name,
                    arch.num_levels()
                ),
            ));
        }
        Ok(())
    }

    fn compile_architecture(&self, node: &Node) -> Result<Architecture, SpecError> {
        let m = self.map(node, "architecture")?;
        self.deny_unknown(m, &["name", "levels", "compute"])?;
        let name = self.str_value(self.req(m, node.span, "name")?)?.to_string();
        let mut levels = Vec::new();
        for l in self.seq(self.req(m, node.span, "levels")?, "levels")? {
            levels.push(self.compile_storage_level(l)?);
        }
        let compute_node = self.req(m, node.span, "compute")?;
        let cm = self.map(compute_node, "compute")?;
        self.deny_unknown(cm, &["name", "instances", "datawidth"])?;
        let mut compute = ComputeSpec::new(
            self.str_value(self.req(cm, compute_node.span, "name")?)?,
            match self.get(cm, "instances") {
                Some(v) => self.u64_value(v)?,
                None => 1,
            },
        );
        if let Some(v) = self.get(cm, "datawidth") {
            compute.datawidth = self.u32_value(v)?;
        }
        let arch = Architecture::new(name, levels, compute);
        arch.validate()
            .map_err(|e| self.err(node.span, format!("invalid architecture: {e}")))?;
        Ok(arch)
    }

    fn compile_storage_level(&self, node: &Node) -> Result<StorageLevel, SpecError> {
        let m = self.map(node, "storage level")?;
        self.deny_unknown(
            m,
            &[
                "name",
                "class",
                "capacity_words",
                "word_bits",
                "bandwidth",
                "instances",
                "metadata_capacity_bits",
            ],
        )?;
        let mut level = StorageLevel::new(self.str_value(self.req(m, node.span, "name")?)?);
        if let Some(c) = self.get(m, "class") {
            level.class = match self.str_value(c)? {
                "dram" => sparseloop_arch::ComponentClass::Dram,
                "sram" => sparseloop_arch::ComponentClass::Sram,
                "regfile" => sparseloop_arch::ComponentClass::RegFile,
                other => {
                    return Err(self.err(
                        c.span,
                        format!(
                            "unknown component class {other:?} (expected dram, sram or regfile)"
                        ),
                    ))
                }
            };
        }
        if let Some(v) = self.get(m, "capacity_words") {
            level.capacity_words = Some(self.u64_value(v)?);
        }
        if let Some(v) = self.get(m, "word_bits") {
            level.word_bits = self.u32_value(v)?;
        }
        if let Some(v) = self.get(m, "bandwidth") {
            level.bandwidth_words_per_cycle = Some(self.f64_value(v)?);
        }
        if let Some(v) = self.get(m, "instances") {
            level.instances = self.u64_value(v)?;
        }
        if let Some(v) = self.get(m, "metadata_capacity_bits") {
            level.metadata_capacity_bits = Some(self.u64_value(v)?);
        }
        Ok(level)
    }

    // ---- workloads -------------------------------------------------------

    fn compile_workload(&self, node: &Node) -> Result<(Spanned<String>, Layer), SpecError> {
        let m = self.map(node, "workload")?;
        self.deny_unknown(m, &["name", "layer", "einsum", "densities"])?;
        let name_node = self.req(m, node.span, "name")?;
        let name = Spanned {
            value: self.str_value(name_node)?.to_string(),
            span: name_node.span,
        };
        let layer_name = match self.get(m, "layer") {
            Some(n) => self.str_value(n)?.to_string(),
            None => name.value.clone(),
        };
        let einsum = self.compile_einsum(self.req(m, node.span, "einsum")?)?;
        let densities_node = self.req(m, node.span, "densities")?;
        let dm = self.map(densities_node, "densities")?;
        let mut densities: Vec<Option<DensityModelSpec>> = vec![None; einsum.tensors().len()];
        for entry in dm {
            let Some(tid) = einsum.tensor_id(&entry.key) else {
                return Err(self.err(
                    entry.key_span,
                    format!(
                        "density for unknown tensor {:?} (workload tensors: {})",
                        entry.key,
                        tensor_names(&einsum)
                    ),
                ));
            };
            if densities[tid.0].is_some() {
                return Err(self.err(
                    entry.key_span,
                    format!("duplicate density for tensor {:?}", entry.key),
                ));
            }
            densities[tid.0] = Some(self.compile_density(&entry.value, &einsum, tid.0)?);
        }
        let mut specs = Vec::with_capacity(densities.len());
        for (i, d) in densities.into_iter().enumerate() {
            match d {
                Some(spec) => specs.push(spec),
                None => {
                    return Err(self.err(
                        densities_node.span,
                        format!("missing density for tensor {:?}", einsum.tensors()[i].name),
                    ))
                }
            }
        }
        Ok((
            name,
            Layer {
                name: layer_name,
                einsum,
                densities: specs,
            },
        ))
    }

    fn compile_einsum(&self, node: &Node) -> Result<Einsum, SpecError> {
        let m = self.map(node, "einsum")?;
        self.deny_unknown(m, &["name", "dims", "tensors"])?;
        let name = self.str_value(self.req(m, node.span, "name")?)?.to_string();
        let dims_node = self.req(m, node.span, "dims")?;
        let dims_map = self.map(dims_node, "dims")?;
        let mut dims = Vec::new();
        let mut dim_ids: HashMap<&str, DimId> = HashMap::new();
        for entry in dims_map {
            let bound = self.u64_value(&entry.value)?;
            if bound == 0 {
                return Err(self.err(entry.value.span, "dimension bounds must be positive"));
            }
            if dim_ids
                .insert(entry.key.as_str(), DimId(dims.len()))
                .is_some()
            {
                return Err(self.err(
                    entry.key_span,
                    format!("duplicate dimension {:?}", entry.key),
                ));
            }
            dims.push(Dim {
                name: entry.key.clone(),
                bound,
            });
        }
        if dims.is_empty() {
            return Err(self.err(dims_node.span, "einsum needs at least one dimension"));
        }
        let mut tensors = Vec::new();
        let mut tensor_names_seen: Vec<String> = Vec::new();
        for t in self.seq(self.req(m, node.span, "tensors")?, "tensors")? {
            let tm = self.map(t, "tensor")?;
            self.deny_unknown(tm, &["name", "kind", "projection"])?;
            let tname_node = self.req(tm, t.span, "name")?;
            let tname = self.str_value(tname_node)?.to_string();
            if tensor_names_seen.contains(&tname) {
                return Err(self.err(tname_node.span, format!("duplicate tensor name {tname:?}")));
            }
            tensor_names_seen.push(tname.clone());
            let kind_node = self.req(tm, t.span, "kind")?;
            let kind = match self.str_value(kind_node)? {
                "input" => TensorKind::Input,
                "output" => TensorKind::Output,
                other => {
                    return Err(self.err(
                        kind_node.span,
                        format!("unknown tensor kind {other:?} (expected input or output)"),
                    ))
                }
            };
            let mut ranks = Vec::new();
            for r in self.seq(self.req(tm, t.span, "projection")?, "projection")? {
                let text = self.str_value(r)?;
                ranks.push(parse_projection(text, &dim_ids).map_err(|e| self.err(r.span, e))?);
            }
            tensors.push(TensorSpec {
                name: tname,
                kind,
                ranks,
            });
        }
        if tensors.is_empty() {
            return Err(self.err(node.span, "einsum needs at least one tensor"));
        }
        Ok(Einsum::new(name, dims, tensors))
    }

    fn compile_density(
        &self,
        node: &Node,
        einsum: &Einsum,
        tensor: usize,
    ) -> Result<DensityModelSpec, SpecError> {
        if let Value::Scalar(s) = &node.value {
            if s == "dense" {
                return Ok(DensityModelSpec::Dense);
            }
            return Err(self.err(
                node.span,
                format!("unknown density shorthand {s:?} (expected dense or a mapping)"),
            ));
        }
        let m = self.map(node, "density")?;
        let dist_node = self.req(m, node.span, "distribution")?;
        match self.str_value(dist_node)? {
            "dense" => {
                self.deny_unknown(m, &["distribution"])?;
                Ok(DensityModelSpec::Dense)
            }
            "uniform" => {
                self.deny_unknown(m, &["distribution", "density"])?;
                let d_node = self.req(m, node.span, "density")?;
                let density = self.f64_value(d_node)?;
                if !(0.0..=1.0).contains(&density) {
                    return Err(self.err(
                        d_node.span,
                        format!("density {density} out of range (must be within [0, 1])"),
                    ));
                }
                Ok(DensityModelSpec::Uniform { density })
            }
            "fixed_structured" => {
                self.deny_unknown(m, &["distribution", "n", "m", "axis"])?;
                let n = self.u64_value(self.req(m, node.span, "n")?)?;
                let block_node = self.req(m, node.span, "m")?;
                let block = self.u64_value(block_node)?;
                if n > block || block == 0 {
                    return Err(self.err(
                        block_node.span,
                        format!("invalid n:m structure {n}:{block} (need 0 < n <= m)"),
                    ));
                }
                let axis_node = self.req(m, node.span, "axis")?;
                let axis = self.usize_value(axis_node)?;
                let rank = einsum.tensors()[tensor].ranks.len().max(1);
                if axis >= rank {
                    return Err(self.err(
                        axis_node.span,
                        format!("axis {axis} out of range (tensor has {rank} ranks)"),
                    ));
                }
                Ok(DensityModelSpec::FixedStructured { n, m: block, axis })
            }
            "banded" => {
                self.deny_unknown(m, &["distribution", "half_width", "fill"])?;
                let rank = einsum.tensors()[tensor].ranks.len();
                if rank != 2 {
                    return Err(self.err(
                        node.span,
                        format!("banded density requires a matrix tensor (this one has {rank} ranks)"),
                    ));
                }
                let half_width = self.u64_value(self.req(m, node.span, "half_width")?)?;
                let fill_node = self.req(m, node.span, "fill")?;
                let fill = self.f64_value(fill_node)?;
                if !(0.0..=1.0).contains(&fill) {
                    return Err(self.err(
                        fill_node.span,
                        format!("fill {fill} out of range (must be within [0, 1])"),
                    ));
                }
                Ok(DensityModelSpec::Banded { half_width, fill })
            }
            other => Err(self.err(
                dist_node.span,
                format!(
                    "unknown distribution {other:?} (expected dense, uniform, fixed_structured or banded)"
                ),
            )),
        }
    }

    // ---- experiments -----------------------------------------------------

    fn compile_experiment(
        &self,
        node: &Node,
        designs: &HashMap<String, DesignDef>,
        workloads: &HashMap<String, Layer>,
    ) -> Result<Experiment, SpecError> {
        let m = self.map(node, "experiment")?;
        self.deny_unknown(
            m,
            &[
                "label", "design", "workload", "mapping", "search", "optional",
            ],
        )?;
        let label = self
            .str_value(self.req(m, node.span, "label")?)?
            .to_string();
        let design_node = self.req(m, node.span, "design")?;
        let design_name = self.str_value(design_node)?;
        let Some(def) = designs.get(design_name) else {
            return Err(self.err(
                design_node.span,
                format!("unknown design {design_name:?} (not in the designs section)"),
            ));
        };
        let workload_node = self.req(m, node.span, "workload")?;
        let workload_name = self.str_value(workload_node)?;
        let Some(layer) = workloads.get(workload_name) else {
            return Err(self.err(
                workload_node.span,
                format!("unknown workload {workload_name:?} (not in the workloads section)"),
            ));
        };
        let layer = layer.clone();
        let safs = self.bind_safs(def, &layer.einsum)?;
        let design = DesignPoint {
            name: def.point_name.clone(),
            arch: def.arch.clone(),
            safs,
        };
        let policy = match (self.get(m, "mapping"), self.get(m, "search")) {
            (Some(fixed), None) => {
                MappingPolicy::Fixed(self.compile_mapping(fixed, &layer.einsum, &def.arch)?)
            }
            (None, Some(search)) => self.compile_search(search, &layer.einsum, &def.arch)?,
            (Some(_), Some(_)) => {
                return Err(self.err(
                    node.span,
                    "experiment has both 'mapping' and 'search' (exactly one required)",
                ))
            }
            (None, None) => {
                return Err(self.err(
                    node.span,
                    "experiment needs a 'mapping' (fixed) or 'search' (mapper) section",
                ))
            }
        };
        let required = match self.get(m, "optional") {
            Some(v) => !self.bool_value(v)?,
            None => true,
        };
        Ok(Experiment {
            label,
            design,
            layer,
            policy,
            required,
        })
    }

    /// Resolves a design's SAF tensor names against a concrete einsum.
    fn bind_safs(&self, def: &DesignDef, einsum: &Einsum) -> Result<SafSpec, SpecError> {
        let resolve = |name: &Spanned<String>| {
            einsum.tensor_id(&name.value).ok_or_else(|| {
                self.err(
                    name.span,
                    format!(
                        "SAF references tensor {:?}, which the workload does not have (tensors: {})",
                        name.value,
                        tensor_names(einsum)
                    ),
                )
            })
        };
        let mut safs = SafSpec::dense();
        for (level, tensor, fmt) in &def.formats {
            safs = safs.with_format(*level, resolve(tensor)?, fmt.clone());
        }
        for a in &def.actions {
            let target = resolve(&a.target)?;
            let leaders = a
                .leaders
                .iter()
                .map(resolve)
                .collect::<Result<Vec<_>, _>>()?;
            safs = match a.action {
                ActionOpt::Gate => safs.with_gate(a.level, target, leaders),
                ActionOpt::Skip => safs.with_skip(a.level, target, leaders),
            };
        }
        match def.compute {
            Some(ActionOpt::Gate) => safs = safs.with_gate_compute(),
            Some(ActionOpt::Skip) => safs = safs.with_skip_compute(),
            None => {}
        }
        Ok(safs)
    }

    fn compile_mapping(
        &self,
        node: &Node,
        einsum: &Einsum,
        arch: &Architecture,
    ) -> Result<Mapping, SpecError> {
        let m = self.map(node, "mapping")?;
        self.deny_unknown(m, &["nests", "bypass"])?;
        let nests_node = self.req(m, node.span, "nests")?;
        let nest_nodes = self.seq(nests_node, "nests")?;
        if nest_nodes.len() != arch.num_levels() {
            return Err(self.err(
                nests_node.span,
                format!(
                    "mapping has {} level nests but the architecture has {} storage levels",
                    nest_nodes.len(),
                    arch.num_levels()
                ),
            ));
        }
        let mut nests = Vec::with_capacity(nest_nodes.len());
        for level in nest_nodes {
            let mut loops = Vec::new();
            for l in self.seq(level, "loop nest")? {
                let text = self.str_value(l)?;
                loops.push(parse_loop(text, einsum).map_err(|e| self.err(l.span, e))?);
            }
            nests.push(loops);
        }
        let mut keep = vec![vec![true; einsum.tensors().len()]; arch.num_levels()];
        if let Some(bypass) = self.get(m, "bypass") {
            for (level, tensor) in self.compile_bypass(bypass, einsum, arch)? {
                keep[level][tensor] = false;
            }
        }
        let mapping = Mapping::new(nests, keep);
        mapping
            .validate(einsum, arch)
            .map_err(|e| self.err(node.span, format!("invalid mapping: {e}")))?;
        Ok(mapping)
    }

    fn compile_bypass(
        &self,
        node: &Node,
        einsum: &Einsum,
        arch: &Architecture,
    ) -> Result<Vec<(usize, usize)>, SpecError> {
        let mut out = Vec::new();
        for b in self.seq(node, "bypass")? {
            let bm = self.map(b, "bypass entry")?;
            self.deny_unknown(bm, &["level", "tensor"])?;
            let level_node = self.req(bm, b.span, "level")?;
            let level = self.usize_value(level_node)?;
            self.check_level(level, arch, level_node.span)?;
            let tensor_node = self.req(bm, b.span, "tensor")?;
            let tname = self.str_value(tensor_node)?;
            let Some(tid) = einsum.tensor_id(tname) else {
                return Err(self.err(
                    tensor_node.span,
                    format!(
                        "bypass references unknown tensor {tname:?} (tensors: {})",
                        tensor_names(einsum)
                    ),
                ));
            };
            out.push((level, tid.0));
        }
        Ok(out)
    }

    fn compile_search(
        &self,
        node: &Node,
        einsum: &Einsum,
        arch: &Architecture,
    ) -> Result<MappingPolicy, SpecError> {
        let m = self.map(node, "search")?;
        self.deny_unknown(m, &["objective", "mapper", "mapspace"])?;
        let objective = match self.get(m, "objective") {
            Some(o) => match self.str_value(o)? {
                "edp" => Objective::Edp,
                "latency" => Objective::Latency,
                "energy" => Objective::Energy,
                other => {
                    return Err(self.err(
                        o.span,
                        format!("unknown objective {other:?} (expected edp, latency or energy)"),
                    ))
                }
            },
            None => Objective::Edp,
        };
        let mapper = self.compile_mapper(self.req(m, node.span, "mapper")?)?;
        let space = self.compile_mapspace(self.req(m, node.span, "mapspace")?, einsum, arch)?;
        Ok(MappingPolicy::Search {
            space,
            mapper,
            objective,
        })
    }

    fn compile_mapper(&self, node: &Node) -> Result<Mapper, SpecError> {
        let m = self.map(node, "mapper")?;
        let strategy_node = self.req(m, node.span, "strategy")?;
        match self.str_value(strategy_node)? {
            "exhaustive" => {
                self.deny_unknown(m, &["strategy", "limit"])?;
                Ok(Mapper::Exhaustive {
                    limit: self.usize_value(self.req(m, node.span, "limit")?)?,
                })
            }
            "random" => {
                self.deny_unknown(m, &["strategy", "samples", "seed"])?;
                Ok(Mapper::Random {
                    samples: self.usize_value(self.req(m, node.span, "samples")?)?,
                    seed: self.u64_value(self.req(m, node.span, "seed")?)?,
                })
            }
            "hybrid" => {
                self.deny_unknown(m, &["strategy", "enumerate", "samples", "seed", "sampling"])?;
                let sampling = match self.get(m, "sampling") {
                    Some(s) => match self.str_value(s)? {
                        "uniform" => SampleStrategy::Uniform,
                        "halton" => SampleStrategy::Halton,
                        other => {
                            return Err(self.err(
                                s.span,
                                format!("unknown sampling {other:?} (expected uniform or halton)"),
                            ))
                        }
                    },
                    None => SampleStrategy::Uniform,
                };
                Ok(Mapper::Hybrid {
                    enumerate: self.usize_value(self.req(m, node.span, "enumerate")?)?,
                    samples: self.usize_value(self.req(m, node.span, "samples")?)?,
                    seed: self.u64_value(self.req(m, node.span, "seed")?)?,
                    sampling,
                })
            }
            other => Err(self.err(
                strategy_node.span,
                format!(
                    "unknown mapper strategy {other:?} (expected exhaustive, random or hybrid)"
                ),
            )),
        }
    }

    fn compile_mapspace(
        &self,
        node: &Node,
        einsum: &Einsum,
        arch: &Architecture,
    ) -> Result<Mapspace, SpecError> {
        let m = self.map(node, "mapspace")?;
        self.deny_unknown(m, &["temporal_order", "spatial_dims", "bypass"])?;
        let mut space = Mapspace::all_temporal(einsum, arch);
        let dim_list = |node: &Node| -> Result<Vec<DimId>, SpecError> {
            let mut dims = Vec::new();
            for d in self.seq(node, "dimension list")? {
                let name = self.str_value(d)?;
                let Some(id) = einsum.dim_id(name) else {
                    return Err(self.err(
                        d.span,
                        format!("unknown dimension {name:?} (dims: {})", dim_names(einsum)),
                    ));
                };
                dims.push(id);
            }
            Ok(dims)
        };
        let per_level = |key: &str| -> Result<Option<Vec<Vec<DimId>>>, SpecError> {
            let Some(list_node) = self.get(m, key) else {
                return Ok(None);
            };
            let levels = self.seq(list_node, key)?;
            if levels.len() != arch.num_levels() {
                return Err(self.err(
                    list_node.span,
                    format!(
                        "{key} has {} levels but the architecture has {}",
                        levels.len(),
                        arch.num_levels()
                    ),
                ));
            }
            levels
                .iter()
                .map(&dim_list)
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        };
        if let Some(orders) = per_level("temporal_order")? {
            for (l, dims) in orders.into_iter().enumerate() {
                space = space.with_temporal_order(l, dims);
            }
        }
        if let Some(spatials) = per_level("spatial_dims")? {
            for (l, dims) in spatials.into_iter().enumerate() {
                space = space.with_spatial_dims(l, dims);
            }
        }
        if let Some(bypass) = self.get(m, "bypass") {
            for (level, tensor) in self.compile_bypass(bypass, einsum, arch)? {
                space = space.with_bypass(level, sparseloop_tensor::einsum::TensorId(tensor));
            }
        }
        Ok(space)
    }

    // ---- node access helpers ---------------------------------------------

    fn map<'n>(&self, node: &'n Node, what: &str) -> Result<&'n [MapEntry], SpecError> {
        match &node.value {
            Value::Map(entries) => Ok(entries),
            other => Err(self.err(
                node.span,
                format!("expected {what} to be a mapping, found {}", other.kind()),
            )),
        }
    }

    fn seq<'n>(&self, node: &'n Node, what: &str) -> Result<&'n [Node], SpecError> {
        match &node.value {
            Value::Seq(items) => Ok(items),
            other => Err(self.err(
                node.span,
                format!("expected {what} to be a sequence, found {}", other.kind()),
            )),
        }
    }

    fn get<'n>(&self, entries: &'n [MapEntry], key: &str) -> Option<&'n Node> {
        entries.iter().find(|e| e.key == key).map(|e| &e.value)
    }

    fn req<'n>(
        &self,
        entries: &'n [MapEntry],
        span: Span,
        key: &str,
    ) -> Result<&'n Node, SpecError> {
        self.get(entries, key)
            .ok_or_else(|| self.err(span, format!("missing required key {key:?}")))
    }

    fn deny_unknown(&self, entries: &[MapEntry], allowed: &[&str]) -> Result<(), SpecError> {
        for e in entries {
            if !allowed.contains(&e.key.as_str()) {
                return Err(self.err(
                    e.key_span,
                    format!(
                        "unknown key {:?} (expected one of: {})",
                        e.key,
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }

    fn str_value<'n>(&self, node: &'n Node) -> Result<&'n str, SpecError> {
        match &node.value {
            Value::Scalar(s) => Ok(s),
            other => Err(self.err(
                node.span,
                format!("expected a string, found {}", other.kind()),
            )),
        }
    }

    fn u64_value(&self, node: &Node) -> Result<u64, SpecError> {
        let s = self.str_value(node)?;
        s.parse::<u64>().map_err(|_| {
            self.err(
                node.span,
                format!("expected a non-negative integer, found {s:?}"),
            )
        })
    }

    fn usize_value(&self, node: &Node) -> Result<usize, SpecError> {
        Ok(self.u64_value(node)? as usize)
    }

    fn u32_value(&self, node: &Node) -> Result<u32, SpecError> {
        let v = self.u64_value(node)?;
        u32::try_from(v)
            .map_err(|_| self.err(node.span, format!("value {v} does not fit in 32 bits")))
    }

    fn f64_value(&self, node: &Node) -> Result<f64, SpecError> {
        let s = self.str_value(node)?;
        let v = s
            .parse::<f64>()
            .map_err(|_| self.err(node.span, format!("expected a number, found {s:?}")))?;
        if !v.is_finite() {
            return Err(self.err(node.span, format!("expected a finite number, found {s:?}")));
        }
        Ok(v)
    }

    fn bool_value(&self, node: &Node) -> Result<bool, SpecError> {
        match self.str_value(node)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(self.err(
                node.span,
                format!("expected true or false, found {other:?}"),
            )),
        }
    }

    fn action_value(&self, node: &Node) -> Result<ActionOpt, SpecError> {
        match self.str_value(node)? {
            "gate" => Ok(ActionOpt::Gate),
            "skip" => Ok(ActionOpt::Skip),
            other => Err(self.err(
                node.span,
                format!("unknown action {other:?} (expected gate or skip)"),
            )),
        }
    }
}

fn tensor_names(einsum: &Einsum) -> String {
    einsum
        .tensors()
        .iter()
        .map(|t| t.name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn dim_names(einsum: &Einsum) -> String {
    einsum
        .dims()
        .iter()
        .map(|d| d.name.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses the loop DSL: `for <dim> in <bound>` /
/// `parallel-for <dim> in <bound>`.
fn parse_loop(text: &str, einsum: &Einsum) -> Result<Loop, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let (spatial, rest) = match tokens.as_slice() {
        ["for", rest @ ..] => (false, rest),
        ["parallel-for", rest @ ..] => (true, rest),
        _ => {
            return Err(format!(
                "expected 'for <dim> in <bound>' or 'parallel-for <dim> in <bound>', found {text:?}"
            ))
        }
    };
    let [dim_name, "in", bound_text] = rest else {
        return Err(format!(
            "expected '<dim> in <bound>' after the loop keyword, found {text:?}"
        ));
    };
    let dim = einsum.dim_id(dim_name).ok_or_else(|| {
        format!(
            "unknown dimension {dim_name:?} (dims: {})",
            dim_names(einsum)
        )
    })?;
    let bound: u64 = bound_text
        .parse()
        .map_err(|_| format!("loop bound {bound_text:?} is not an integer"))?;
    if bound == 0 {
        return Err("loop bounds must be positive".to_string());
    }
    Ok(if spatial {
        Loop::spatial(dim, bound)
    } else {
        Loop::temporal(dim, bound)
    })
}

/// Parses a projection rank: terms of `dim` or `coef*dim` joined by `+`
/// (e.g. `m`, `4*p + r`).
fn parse_projection(text: &str, dims: &HashMap<&str, DimId>) -> Result<RankProjection, String> {
    let mut terms = Vec::new();
    for raw in text.split('+') {
        let term = raw.trim();
        if term.is_empty() {
            return Err(format!("empty projection term in {text:?}"));
        }
        let (coef, dim_name) = match term.split_once('*') {
            Some((c, d)) => {
                let coef: u64 = c
                    .trim()
                    .parse()
                    .map_err(|_| format!("stride {:?} is not an integer", c.trim()))?;
                (coef, d.trim())
            }
            None => (1, term),
        };
        if coef == 0 {
            return Err(format!("stride must be positive in {text:?}"));
        }
        let Some(&dim) = dims.get(dim_name) else {
            return Err(format!(
                "unknown dimension {dim_name:?} in projection {text:?}"
            ));
        };
        terms.push(ProjectionTerm { dim, coef });
    }
    Ok(RankProjection { terms })
}

/// Parses the format DSL: per-level `U | B | CP | RLE | UOP`, an optional
/// explicit bit width `(bits)`, and an optional flattening `^ranks`,
/// joined by `-` (e.g. `UOP-CP`, `CP^2`, `B-RLE(5)`).
pub(crate) fn parse_tensor_format(text: &str) -> Result<TensorFormat, String> {
    let mut levels = Vec::new();
    for part in text.split('-') {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("empty format level in {text:?}"));
        }
        let (head, flattened) = match part.split_once('^') {
            Some((h, r)) => {
                let ranks: usize = r
                    .parse()
                    .map_err(|_| format!("flattening {r:?} is not an integer"))?;
                if ranks == 0 {
                    return Err("flattening must cover at least one rank".to_string());
                }
                (h, ranks)
            }
            None => (part, 1),
        };
        let (name, bits) = match head.split_once('(') {
            Some((n, rest)) => {
                let Some(bits_text) = rest.strip_suffix(')') else {
                    return Err(format!("unclosed bit width in {head:?}"));
                };
                let bits: u32 = bits_text
                    .parse()
                    .map_err(|_| format!("bit width {bits_text:?} is not an integer"))?;
                (n, Some(bits))
            }
            None => (head, None),
        };
        let format = match (name, bits) {
            ("U", None) => RankFormat::Uncompressed,
            ("B", None) => RankFormat::Bitmask,
            ("CP", bits) => RankFormat::CoordinatePayload { coord_bits: bits },
            ("RLE", bits) => RankFormat::RunLength { run_bits: bits },
            ("UOP", bits) => RankFormat::OffsetPairs { offset_bits: bits },
            ("U" | "B", Some(_)) => {
                return Err(format!("{name} takes no explicit bit width"));
            }
            _ => {
                return Err(format!(
                    "unknown rank format {name:?} (expected U, B, CP, RLE or UOP)"
                ))
            }
        };
        levels.push(FormatLevel {
            format,
            flattened_ranks: flattened,
        });
    }
    if levels.is_empty() {
        return Err("format needs at least one level".to_string());
    }
    Ok(TensorFormat::new(levels))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
scenario:
  name: mini
  title: "A tiny spec"
designs:
  - name: demo
    architecture:
      name: demo-arch
      levels:
        - {name: DRAM, class: dram}
        - {name: Buf, capacity_words: 2048, instances: 1}
      compute: {name: MAC, instances: 4}
    sparse_optimizations:
      formats:
        - {level: 0, tensor: A, format: CP^2}
      actions:
        - {level: 1, action: skip, target: A, leaders: [B]}
      compute: gate
workloads:
  - name: tiny
    einsum:
      name: matmul
      dims: {m: 4, n: 4, k: 8}
      tensors:
        - {name: A, kind: input, projection: [m, k]}
        - {name: B, kind: input, projection: [k, n]}
        - {name: Z, kind: output, projection: [m, n]}
    densities:
      A: {distribution: uniform, density: 0.5}
      B: dense
      Z: dense
experiments:
  - label: "demo@tiny"
    design: demo
    workload: tiny
    mapping:
      nests:
        - [for m in 4, for n in 2]
        - [parallel-for n in 2, for k in 8]
  - label: "demo@tiny-search"
    design: demo
    workload: tiny
    search:
      objective: edp
      mapper: {strategy: hybrid, enumerate: 16, samples: 4, seed: 7, sampling: uniform}
      mapspace:
        temporal_order:
          - [m, n, k]
          - [m, n, k]
        spatial_dims:
          - []
          - [n]
"#;

    #[test]
    fn mini_spec_compiles() {
        let c = compile_str(MINI).unwrap();
        assert_eq!(c.name, "mini");
        assert_eq!(c.experiments.len(), 2);
        let e = &c.experiments[0];
        assert_eq!(e.design.arch.num_levels(), 2);
        assert_eq!(e.layer.einsum.num_computes(), 4 * 4 * 8);
        assert!(e.design.safs.has_skipping());
        assert!(matches!(e.policy, MappingPolicy::Fixed(_)));
        assert!(matches!(
            c.experiments[1].policy,
            MappingPolicy::Search { .. }
        ));
    }

    #[test]
    fn mini_spec_runs() {
        let session = sparseloop_core::EvalSession::new();
        let out = compile_str(MINI)
            .unwrap()
            .into_scenario()
            .run(&session, None);
        assert!(out.results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn unknown_key_is_positioned() {
        let bad = MINI.replace("compute: gate", "compuet: gate");
        let e = compile_str(&bad).unwrap_err();
        assert!(e.message.contains("unknown key \"compuet\""), "{e}");
        assert!(e.context.contains("compuet"), "{e}");
    }

    #[test]
    fn out_of_range_density_is_rejected() {
        let bad = MINI.replace("density: 0.5", "density: 1.5");
        let e = compile_str(&bad).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        assert!(e.context.contains("1.5"), "{e}");
    }

    #[test]
    fn wrong_type_is_rejected() {
        let bad = MINI.replace("instances: 4}", "instances: lots}");
        let e = compile_str(&bad).unwrap_err();
        assert!(e.message.contains("integer"), "{e}");
    }

    #[test]
    fn bad_indent_is_rejected() {
        let bad = MINI.replace("      name: matmul", "       name: matmul");
        let e = compile_str(&bad).unwrap_err();
        assert!(e.message.contains("indent"), "{e}");
    }

    #[test]
    fn unknown_tensor_in_saf_is_rejected() {
        let bad = MINI.replace("target: A", "target: Q");
        let e = compile_str(&bad).unwrap_err();
        assert!(e.message.contains("\"Q\""), "{e}");
        assert!(e.message.contains("tensors: A, B, Z"), "{e}");
    }

    #[test]
    fn invalid_mapping_is_rejected() {
        let bad = MINI.replace("for k in 8]", "for k in 4]");
        let e = compile_str(&bad).unwrap_err();
        assert!(e.message.contains("invalid mapping"), "{e}");
    }

    #[test]
    fn format_dsl_round_trips() {
        for (text, display) in [
            ("UOP-CP", "UOP-CP"),
            ("CP^2", "CP^2"),
            ("B-RLE", "B-RLE"),
            ("U-U", "U-U"),
            ("CP(2)", "CP"),
            ("RLE(5)", "RLE"),
        ] {
            let f = parse_tensor_format(text).unwrap();
            assert_eq!(f.to_string(), display, "{text}");
        }
        assert_eq!(
            parse_tensor_format("CP(2)").unwrap().levels()[0].format,
            RankFormat::CoordinatePayload {
                coord_bits: Some(2)
            }
        );
        assert!(parse_tensor_format("XY").is_err());
        assert!(parse_tensor_format("B(3)").is_err());
    }

    #[test]
    fn projection_dsl() {
        let mut dims = HashMap::new();
        dims.insert("p", DimId(0));
        dims.insert("r", DimId(1));
        let pr = parse_projection("4*p + r", &dims).unwrap();
        assert_eq!(pr.terms.len(), 2);
        assert_eq!(pr.terms[0].coef, 4);
        assert_eq!(pr.terms[1].dim, DimId(1));
        assert!(parse_projection("q", &dims).is_err());
        assert!(parse_projection("0*p", &dims).is_err());
    }
}
