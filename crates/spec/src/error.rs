//! Positioned spec errors: every parse or compile failure names its
//! file, line:column, and a one-line excerpt of the offending source.

use crate::yaml::{ParseError, Span};
use std::fmt;

/// A spec front-end failure (parsing or compilation).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Originating file, when known (`None` for in-memory text).
    pub file: Option<String>,
    /// Where the problem is.
    pub span: Span,
    /// What the problem is.
    pub message: String,
    /// The offending source line, trimmed (empty when unavailable).
    pub context: String,
}

impl SpecError {
    /// Builds an error with the excerpt pulled from `source`.
    pub fn new(span: Span, message: impl Into<String>, source: &str) -> Self {
        let context = source
            .lines()
            .nth(span.line.saturating_sub(1))
            .unwrap_or("")
            .trim()
            .to_string();
        SpecError {
            file: None,
            span,
            message: message.into(),
            context,
        }
    }

    /// Attaches the originating file name (builder-style).
    pub fn in_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Lifts a parser failure, attaching the excerpt.
    pub fn from_parse(e: ParseError, source: &str) -> Self {
        SpecError::new(e.span, e.message, source)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.file {
            Some(file) => write!(f, "{file}:{}: {}", self.span, self.message)?,
            None => write!(f, "<spec>:{}: {}", self.span, self.message)?,
        }
        if !self.context.is_empty() {
            write!(f, "\n  | {}", self.context)?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_file_position_and_excerpt() {
        let source = "a: 1\nbad line here\n";
        let e = SpecError::new(Span { line: 2, col: 1 }, "unexpected thing", source)
            .in_file("demo.yaml");
        let text = e.to_string();
        assert!(text.contains("demo.yaml:2:1"), "{text}");
        assert!(text.contains("unexpected thing"), "{text}");
        assert!(text.contains("bad line here"), "{text}");
    }

    #[test]
    fn excerpt_empty_past_eof() {
        let e = SpecError::new(Span { line: 99, col: 1 }, "m", "one line\n");
        assert!(e.context.is_empty());
        assert!(!e.to_string().contains("|"));
    }
}
