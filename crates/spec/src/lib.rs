//! # sparseloop-spec
//!
//! The declarative spec front-end: parse architecture/workload/SAF/
//! mapper specs into runnable scenarios, and serialize scenarios back
//! to spec form.
//!
//! The real Sparseloop tool is driven entirely by declarative YAML —
//! architecture, sparse-optimization features, mapping constraints and
//! workloads are data, not code. This crate gives the reproduction the
//! same front-end without external dependencies: a self-contained
//! YAML-subset parser ([`yaml`]) with line:column-tracked errors, a
//! compiler ([`compile_str`]) from parsed documents into the existing
//! model types ([`Architecture`], [`Layer`], [`SafSpec`], mappings and
//! mapspaces, composed into `DesignPoint`/`Experiment`/`Scenario`), and
//! an emitter ([`emit_scenario`]) that serializes any scenario back to
//! spec text. Emit → parse → compile reproduces bit-identical
//! [`ScenarioOutcome`]s for every scenario in
//! [`ScenarioRegistry::standard`] — the `examples/specs/` corpus is
//! generated exactly this way.
//!
//! ## The grammar subset
//!
//! A spec is one YAML document using block mappings/sequences, one-line
//! flow collections (`[a, b]`, `{k: v}`), plain or double-quoted
//! scalars, and `#` comments. The top level is:
//!
//! ```yaml
//! spec_version: 1
//! scenario:              # registry identity
//!   name: my_experiment
//!   title: "What this measures"
//! designs:               # named architecture + SAF bundles
//!   - name: demo
//!     architecture:
//!       name: demo-arch
//!       levels:          # outermost first; defaults omitted
//!         - {name: DRAM, class: dram}
//!         - {name: Buf, capacity_words: 2048, instances: 4}
//!       compute: {name: MAC, instances: 8}
//!     sparse_optimizations:            # optional
//!       formats:
//!         - {level: 0, tensor: A, format: UOP-CP}
//!       actions:
//!         - {level: 1, action: skip, target: A, leaders: [B]}
//!       compute: gate
//! workloads:             # named einsum + density bundles
//!   - name: tiny
//!     einsum:
//!       name: matmul
//!       dims: {m: 4, n: 4, k: 8}
//!       tensors:
//!         - {name: A, kind: input, projection: [m, k]}
//!         - {name: B, kind: input, projection: [k, n]}
//!         - {name: Z, kind: output, projection: [m, n]}
//!     densities:
//!       A: {distribution: uniform, density: 0.5}
//!       B: dense
//!       Z: dense
//! experiments:           # design x workload, fixed mapping or search
//!   - label: "demo@tiny"
//!     design: demo
//!     workload: tiny
//!     search:
//!       objective: edp
//!       mapper: {strategy: hybrid, enumerate: 256, samples: 128, seed: 7, sampling: uniform}
//!       mapspace:
//!         temporal_order:
//!           - [m, n, k]
//!           - [m, n, k]
//!         spatial_dims:
//!           - []
//!           - [n]
//! ```
//!
//! Fixed-mapping experiments replace `search:` with the loop-nest DSL
//! (`for <dim> in <bound>` / `parallel-for <dim> in <bound>`):
//!
//! ```yaml
//!     mapping:
//!       nests:
//!         - [for m in 4]
//!         - [parallel-for n in 4, for k in 8]
//! ```
//!
//! Projections support strides (`4*p + r`), formats support explicit
//! bit widths and rank flattening (`CP(2)`, `CP^2`, `B-RLE`), and
//! densities cover `dense`, `uniform`, `fixed_structured` (n:m) and
//! `banded`. Every parse or compile failure reports its file, line:
//! column, and a source excerpt ([`SpecError`]).
//!
//! [`Architecture`]: sparseloop_arch::Architecture
//! [`Layer`]: sparseloop_workloads::Layer
//! [`SafSpec`]: sparseloop_core::SafSpec
//! [`ScenarioOutcome`]: sparseloop_designs::ScenarioOutcome
//! [`ScenarioRegistry::standard`]: sparseloop_designs::ScenarioRegistry::standard

pub mod compile;
pub mod emit;
pub mod error;
pub mod yaml;

pub use compile::{compile_str, CompiledScenario};
pub use emit::{emit_experiments, emit_scenario};
pub use error::SpecError;

use sparseloop_designs::{Scenario, ScenarioOutcome, ScenarioRegistry};
use std::path::Path;

/// Compares two scenario outcomes for bit-identity (labels, winning
/// mappings, evaluation metrics *by float bits*, search counters; wall
/// time excluded). Returns a description of the first drift, `None` when
/// identical — the contract the spec round-trip tests and smoke binaries
/// enforce between a scenario and its emit→parse→compile twin.
pub fn outcome_drift(reference: &ScenarioOutcome, candidate: &ScenarioOutcome) -> Option<String> {
    if reference.experiments.len() != candidate.experiments.len() {
        return Some(format!(
            "experiment count differs: {} vs {}",
            reference.experiments.len(),
            candidate.experiments.len()
        ));
    }
    for (i, (re, ce)) in reference
        .experiments
        .iter()
        .zip(&candidate.experiments)
        .enumerate()
    {
        if re.label != ce.label {
            return Some(format!(
                "experiment {i} label differs: {:?} vs {:?}",
                re.label, ce.label
            ));
        }
        if re.required != ce.required {
            return Some(format!("{}: required flag differs", re.label));
        }
        match (&reference.results[i], &candidate.results[i]) {
            (Ok(r), Ok(c)) => {
                if r.mapping != c.mapping {
                    return Some(format!("{}: winning mapping differs", re.label));
                }
                if r.eval.cycles.to_bits() != c.eval.cycles.to_bits()
                    || r.eval.energy_pj.to_bits() != c.eval.energy_pj.to_bits()
                    || r.eval.edp.to_bits() != c.eval.edp.to_bits()
                    || r.eval.utilization.to_bits() != c.eval.utilization.to_bits()
                {
                    return Some(format!(
                        "{}: evaluation differs: (edp {}, cycles {}, pJ {}) vs ({}, {}, {})",
                        re.label,
                        r.eval.edp,
                        r.eval.cycles,
                        r.eval.energy_pj,
                        c.eval.edp,
                        c.eval.cycles,
                        c.eval.energy_pj
                    ));
                }
                if r.stats != c.stats {
                    return Some(format!(
                        "{}: search stats differ: {:?} vs {:?}",
                        re.label, r.stats, c.stats
                    ));
                }
            }
            (Err(r), Err(c)) => {
                if r != c {
                    return Some(format!("{}: error differs: {r} vs {c}", re.label));
                }
            }
            (Ok(_), Err(c)) => {
                return Some(format!(
                    "{}: reference succeeded, candidate failed: {c}",
                    re.label
                ))
            }
            (Err(r), Ok(_)) => {
                return Some(format!(
                    "{}: reference failed ({r}), candidate succeeded",
                    re.label
                ))
            }
        }
    }
    None
}

/// Parses and compiles a spec file into a registry [`Scenario`].
///
/// # Errors
/// Returns a [`SpecError`] naming the file on I/O, parse or compile
/// failure.
pub fn load_file(path: impl AsRef<Path>) -> Result<CompiledScenario, SpecError> {
    let path = path.as_ref();
    let file = path.display().to_string();
    let source = std::fs::read_to_string(path).map_err(|e| {
        SpecError::new(
            yaml::Span { line: 1, col: 1 },
            format!("cannot read spec file: {e}"),
            "",
        )
        .in_file(file.clone())
    })?;
    compile_str(&source).map_err(|e| e.in_file(file))
}

/// Loads every `*.yaml` / `*.yml` file under `dir` (sorted by file
/// name), compiled into scenarios.
///
/// # Errors
/// Fails on the first unreadable or invalid spec file, naming it.
pub fn load_dir(dir: impl AsRef<Path>) -> Result<Vec<CompiledScenario>, SpecError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| {
        SpecError::new(
            yaml::Span { line: 1, col: 1 },
            format!("cannot read spec directory: {e}"),
            "",
        )
        .in_file(dir.display().to_string())
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("yaml") | Some("yml")
            )
        })
        .collect();
    paths.sort();
    paths.into_iter().map(load_file).collect()
}

/// Spec-loading extension for [`ScenarioRegistry`] (imported via this
/// trait because the registry lives below the spec crate in the
/// dependency graph).
pub trait SpecRegistryExt: Sized {
    /// Extends the registry with every spec file under `dir` (see
    /// [`load_dir`]). Spec scenarios whose names collide with already
    /// registered ones are an error — a spec cannot silently shadow a
    /// built-in scenario.
    ///
    /// # Errors
    /// Fails on unreadable/invalid files or duplicate scenario names.
    fn with_specs(self, dir: impl AsRef<Path>) -> Result<Self, SpecError>;
}

impl SpecRegistryExt for ScenarioRegistry {
    fn with_specs(mut self, dir: impl AsRef<Path>) -> Result<Self, SpecError> {
        for compiled in load_dir(&dir)? {
            let scenario: Scenario = compiled.into_scenario();
            let name = scenario.name().to_string();
            if self.push(scenario).is_err() {
                return Err(SpecError::new(
                    yaml::Span { line: 1, col: 1 },
                    format!("duplicate scenario name {name:?} (already registered)"),
                    "",
                )
                .in_file(dir.as_ref().display().to_string()));
            }
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_file_names_the_file_on_errors() {
        let e = load_file("/nonexistent/spec.yaml").unwrap_err();
        assert_eq!(e.file.as_deref(), Some("/nonexistent/spec.yaml"));
        assert!(e.message.contains("cannot read"), "{e}");
    }

    #[test]
    fn with_specs_loads_and_rejects_duplicates() {
        let dir = std::env::temp_dir().join(format!("sparseloop-spec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let registry = ScenarioRegistry::standard();
        let text = emit_scenario(registry.expect("fig1_format_tradeoff"));
        std::fs::write(dir.join("fig1.yaml"), &text).unwrap();
        // collides with the built-in name
        let err = ScenarioRegistry::standard().with_specs(&dir).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        // under a fresh name it loads and is runnable by lookup
        let renamed = text.replace("name: fig1_format_tradeoff", "name: fig1_from_spec");
        std::fs::write(dir.join("fig1.yaml"), renamed).unwrap();
        let registry = ScenarioRegistry::standard().with_specs(&dir).unwrap();
        assert!(registry.get("fig1_from_spec").is_some());
        assert!(registry.get("fig1_format_tradeoff").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
