//! The round-trip contract: every standard scenario serializes to spec
//! form, parses and compiles back, and behaves bit-identically.
//!
//! Structural equality is asserted for the *whole* registry (cheap — no
//! evaluation); outcome bit-identity is asserted here for fast
//! scenarios, and for every scenario by the release-mode
//! `scenario_smoke` CI gate (same [`outcome_drift`] comparator).

use sparseloop_core::EvalSession;
use sparseloop_designs::scenario::MappingPolicy;
use sparseloop_designs::ScenarioRegistry;
use sparseloop_spec::{compile_str, emit_scenario, outcome_drift};

#[test]
fn every_standard_scenario_round_trips_structurally() {
    let registry = ScenarioRegistry::standard();
    for scenario in registry.scenarios() {
        let text = emit_scenario(scenario);
        let compiled = compile_str(&text)
            .unwrap_or_else(|e| panic!("{} failed to recompile: {e}", scenario.name()));
        assert_eq!(compiled.name, scenario.name());
        assert_eq!(compiled.title, scenario.title());
        let original = scenario.experiments();
        assert_eq!(
            compiled.experiments.len(),
            original.len(),
            "{}",
            scenario.name()
        );
        for (a, b) in original.iter().zip(&compiled.experiments) {
            let at = format!("{}::{}", scenario.name(), a.label);
            assert_eq!(a.label, b.label, "{at}");
            assert_eq!(a.required, b.required, "{at}");
            assert_eq!(a.design.name, b.design.name, "{at}");
            assert_eq!(a.design.arch, b.design.arch, "{at}");
            assert_eq!(a.design.safs, b.design.safs, "{at}");
            assert_eq!(a.layer.name, b.layer.name, "{at}");
            assert_eq!(a.layer.einsum, b.layer.einsum, "{at}");
            assert_eq!(a.layer.densities, b.layer.densities, "{at}");
            match (&a.policy, &b.policy) {
                (MappingPolicy::Fixed(ma), MappingPolicy::Fixed(mb)) => {
                    assert_eq!(ma, mb, "{at}");
                }
                (
                    MappingPolicy::Search {
                        mapper: mpa,
                        objective: oa,
                        ..
                    },
                    MappingPolicy::Search {
                        mapper: mpb,
                        objective: ob,
                        ..
                    },
                ) => {
                    // mapspace equality is covered by emit idempotence
                    // below (the type has no Eq; its serialized form is
                    // its canonical identity)
                    assert_eq!(mpa, mpb, "{at}");
                    assert_eq!(oa, ob, "{at}");
                }
                _ => panic!("{at}: policy kind changed through the round trip"),
            }
        }
        // canonical form is a fixed point: emit(compile(emit(s))) == emit(s)
        let reparsed = compiled.into_scenario();
        assert_eq!(
            emit_scenario(&reparsed),
            text,
            "{}: emit is not idempotent",
            scenario.name()
        );
    }
}

/// Runs a scenario and its spec twin through fresh sessions and demands
/// bit-identical outcomes.
fn assert_bit_identical(name: &str) {
    let registry = ScenarioRegistry::standard();
    let scenario = registry.expect(name);
    let twin = compile_str(&emit_scenario(scenario))
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .into_scenario();
    let reference = scenario.run(&EvalSession::new(), Some(2));
    let candidate = twin.run(&EvalSession::new(), Some(2));
    if let Some(drift) = outcome_drift(&reference, &candidate) {
        panic!("{name}: spec twin drifted: {drift}");
    }
}

#[test]
fn fig1_outcome_bit_identical_through_spec() {
    assert_bit_identical("fig1_format_tradeoff");
}

#[test]
fn fig13_outcome_bit_identical_through_spec() {
    assert_bit_identical("fig13_dstc_validation");
}

#[test]
fn fig11_search_outcome_bit_identical_through_spec() {
    // a mapspace-search scenario: round-trips the mapper, objective and
    // mapspace constraints, not just fixed nests
    assert_bit_identical("fig11_scnn_validation");
}

#[test]
fn shared_designs_are_interned_once() {
    // fig17's grid reuses four designs and one workload per density:
    // the emitted document must not repeat architectures per experiment
    let registry = ScenarioRegistry::standard();
    let text = emit_scenario(registry.expect("fig17_codesign_study"));
    let experiments = registry.expect("fig17_codesign_study").experiments().len();
    let archs = text.matches("architecture:").count();
    assert!(
        archs < experiments,
        "expected interned designs: {archs} architectures for {experiments} experiments"
    );
}
