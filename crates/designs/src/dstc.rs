//! Dual-side sparse tensor core (DSTC, Table 3 / Fig. 13 / Fig. 15).
//!
//! DSTC exploits *arbitrary* sparsity in both operands: two-rank B-B
//! bitmask compression on A and B, double-sided skipping at the two
//! innermost storage levels (`Skip A ↔ B`, `Skip Z ← A & B`), and an
//! outer-product-style dataflow whose frequent operand streaming puts
//! extra pressure on SMEM bandwidth (the §7.1 comparison point against
//! STC).

use crate::common::{matmul_ids, matmul_mapping_3level, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::{RankFormat, TensorFormat};
use sparseloop_mapping::Mapping;
use sparseloop_tensor::einsum::Einsum;

/// Same SMEM → RF → tensor-core resource budget as the STC designs
/// (§7.1.1 controls hardware resources for the apples-to-apples
/// comparison).
fn arch() -> Architecture {
    ArchitectureBuilder::new("dstc")
        .level(
            StorageLevel::new("DRAM")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(64.0),
        )
        .level(
            StorageLevel::new("SMEM")
                .with_capacity(48 * 1024)
                .with_bandwidth(50.0),
        )
        .level(
            StorageLevel::new("RF")
                .with_class(ComponentClass::RegFile)
                .with_capacity(256)
                .with_instances(16)
                .with_bandwidth(4.0),
        )
        .compute(ComputeSpec::new("TensorCore", 16))
        .build()
        .expect("static architecture is valid")
}

/// The DSTC design point.
pub fn design(e: &Einsum) -> DesignPoint {
    let (a, b, z) = matmul_ids(e);
    let fmt = TensorFormat::from_ranks(&[RankFormat::Bitmask, RankFormat::Bitmask]);
    let safs = SafSpec::dense()
        .with_format(1, a, fmt.clone())
        .with_format(1, b, fmt.clone())
        .with_format(2, a, fmt.clone())
        .with_format(2, b, fmt)
        // compressed operand streams skip their own zeros
        .with_skip(2, a, vec![a])
        .with_skip(2, b, vec![b])
        // dual-side intersection at the two innermost levels
        .with_double_sided_skip(1, a, b)
        .with_double_sided_skip(2, a, b)
        .with_skip(1, z, vec![a, b])
        .with_skip(2, z, vec![a, b])
        .with_skip_compute();
    DesignPoint {
        name: "DSTC".into(),
        arch: arch(),
        safs,
    }
}

/// DSTC's outer-product-flavored mapping: the reduction dimension `k`
/// iterates outermost, so operand panels stream repeatedly and partial
/// sums travel up and down the hierarchy — high bandwidth pressure in
/// exchange for dual-side skipping.
pub fn mapping(e: &Einsum) -> Mapping {
    matmul_mapping_3level(e, 16, 8, 16, 4, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_workloads::spmspm;

    #[test]
    fn latency_tracks_density_product() {
        // Fig 13: normalized latency falls as operands get sparser.
        let mut last = f64::INFINITY;
        for d in [1.0, 0.7, 0.4, 0.2] {
            let l = spmspm(32, 32, 32, d, d);
            let dp = design(&l.einsum);
            let m = mapping(&l.einsum);
            let e = dp.evaluate(&l, &m).unwrap();
            assert!(
                e.cycles <= last * 1.001,
                "latency should fall with density: {} at d={d}",
                e.cycles
            );
            last = e.cycles;
        }
    }

    #[test]
    fn dual_side_skipping_beats_single_side_compute() {
        let l = spmspm(32, 32, 32, 0.3, 0.3);
        let dp = design(&l.einsum);
        let m = mapping(&l.einsum);
        let e = dp.evaluate(&l, &m).unwrap();
        // compute survival ~ dA*dB = 0.09
        let frac = e.sparse.compute.ops.actual / e.dense.computes;
        assert!((frac - 0.09).abs() < 0.02, "actual fraction {frac}");
    }

    #[test]
    fn streaming_dataflow_moves_more_data_than_stc() {
        // At full density, DSTC's k-outer streaming incurs more DRAM+SMEM
        // traffic than STC's weight-stationary flow (the §7.1.1 energy
        // story on dense workloads).
        let l = spmspm(32, 32, 48, 1.0, 1.0);
        let dstc_dp = design(&l.einsum);
        let dstc_eval = dstc_dp.evaluate(&l, &mapping(&l.einsum)).unwrap();
        let stc_dp = crate::stc::stc(&l.einsum);
        let stc_eval = stc_dp
            .evaluate(&l, &crate::stc::mapping(&l.einsum))
            .unwrap();
        let traffic = |ev: &sparseloop_core::Evaluation| {
            ev.uarch.levels.iter().map(|l| l.cycle_words).sum::<f64>()
        };
        assert!(traffic(&dstc_eval) > traffic(&stc_eval));
    }
}
