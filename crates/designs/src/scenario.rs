//! The scenario registry: every paper experiment as one declarative
//! (design, workload, mapping-policy) description.
//!
//! A [`Scenario`] names a complete experiment — which [`DesignPoint`]s
//! run which [`Layer`]s under which [`MappingPolicy`] — and
//! [`ScenarioRegistry::standard`] enumerates all of the paper's
//! evaluations (Fig. 1, Figs. 11–17, Table 5 rows, Table 6, Table 7) by
//! name. The bench binaries shrink to "look up scenario, run, print":
//! none of them assembles architecture/SAF/mapspace glue inline anymore,
//! and every run flows through one [`EvalSession`] so format and density
//! aggregates are shared across layers, candidates and design variants.
//!
//! Adding an experiment is three steps: write a builder function
//! returning a [`Scenario`], register it in
//! [`ScenarioRegistry::standard`], and (optionally) give it a binary
//! that post-processes the [`ScenarioOutcome`]. The `scenario_smoke`
//! binary and the CI smoke step pick up new scenarios automatically.

use crate::common::{conv_mapspace, matmul_mapping_2level, matmul_mapping_3level, DesignPoint};
use crate::{dstc, eyeriss, eyeriss_v2, fig1, fig17, scnn, stc};
use sparseloop_core::{EvalJob, EvalSession, JobError, JobOutcome, Objective, Workload};
use sparseloop_density::DensityModelSpec;
use sparseloop_mapping::{Mapping, Mapspace, SearchStats};
use sparseloop_tensor::einsum::Einsum;
use sparseloop_workloads::{
    alexnet, bert_base, mobilenet_v1, resnet50, spmspm, vgg16, Layer, Network,
};
use std::time::Instant;

pub use crate::common::DEFAULT_MAPPER;

/// How an [`Experiment`] obtains its mapping — the core layer's
/// [`JobPlan`] under its registry-facing name (one enum, no conversion
/// layer to keep in sync).
pub use sparseloop_core::JobPlan as MappingPolicy;

/// One fully-bound experiment unit: a design evaluating one layer.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Row label, `"<design>@<variant>"` by convention.
    pub label: String,
    /// The design point (architecture + SAFs bound to the layer).
    pub design: DesignPoint,
    /// The workload layer.
    pub layer: Layer,
    /// Fixed mapping or search.
    pub policy: MappingPolicy,
    /// Whether an empty outcome is a failure. Defaults to `true`; the
    /// Table 5 timing rows mark layers [`optional`](Experiment::optional)
    /// because some deep layers genuinely admit no valid mapping on the
    /// PE-scale designs (the paper's CPHC metric simply excludes them).
    pub required: bool,
}

impl Experiment {
    /// A fixed-mapping experiment.
    pub fn fixed(label: impl Into<String>, design: DesignPoint, layer: Layer, m: Mapping) -> Self {
        Experiment {
            label: label.into(),
            design,
            layer,
            policy: MappingPolicy::Fixed(m),
            required: true,
        }
    }

    /// A default-mapper EDP search experiment over `space`.
    pub fn search(
        label: impl Into<String>,
        design: DesignPoint,
        layer: Layer,
        space: Mapspace,
    ) -> Self {
        Experiment {
            label: label.into(),
            design,
            layer,
            policy: MappingPolicy::Search {
                space,
                mapper: DEFAULT_MAPPER,
                objective: Objective::Edp,
            },
            required: true,
        }
    }

    /// Marks an empty outcome as acceptable for this experiment.
    pub fn optional(mut self) -> Self {
        self.required = false;
        self
    }

    /// The core-layer batch job this experiment compiles to.
    pub fn job(&self) -> EvalJob {
        EvalJob {
            workload: Workload::new(self.layer.einsum.clone(), self.layer.densities.clone()),
            arch: self.design.arch.clone(),
            safs: self.design.safs.clone(),
            plan: self.policy.clone(),
        }
    }
}

/// A named, registered experiment: builds its [`Experiment`] list on
/// demand (construction is cheap; evaluation happens in
/// [`Scenario::run`]).
pub struct Scenario {
    name: String,
    title: String,
    build: Box<dyn Fn() -> Vec<Experiment> + Send + Sync>,
}

impl Scenario {
    /// Registers a scenario under `name`.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        build: impl Fn() -> Vec<Experiment> + Send + Sync + 'static,
    ) -> Self {
        Scenario {
            name: name.into(),
            title: title.into(),
            build: Box::new(build),
        }
    }

    /// The lookup key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Materializes the experiment list.
    pub fn experiments(&self) -> Vec<Experiment> {
        (self.build)()
    }

    /// Runs every experiment through `session`'s shared caches (see
    /// [`EvalSession::search_batch`]), timing the whole batch.
    pub fn run(&self, session: &EvalSession, threads: Option<usize>) -> ScenarioOutcome {
        self.run_with(|jobs| session.search_batch(jobs, threads))
    }

    /// Like [`run`](Scenario::run), but each search experiment shards
    /// its candidate stream over `shards` disjoint sub-iterators (see
    /// [`EvalSession::search_batch_sharded`]) — results are
    /// bit-identical to [`run`](Scenario::run) at any shard count. The
    /// serving layer's scenario mode.
    pub fn run_sharded(&self, session: &EvalSession, shards: usize) -> ScenarioOutcome {
        self.run_with(|jobs| session.search_batch_sharded(jobs, shards))
    }

    /// Like [`run_sharded`](Scenario::run_sharded), with a cancellation
    /// probe checked at each experiment seam (see
    /// [`EvalSession::search_batch_sharded_with`]): once the probe
    /// fires, remaining experiments resolve to [`JobError::Canceled`]
    /// instead of running. Experiments that do run stay bit-identical
    /// to [`run_sharded`](Scenario::run_sharded).
    pub fn run_sharded_with(
        &self,
        session: &EvalSession,
        shards: usize,
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> ScenarioOutcome {
        self.run_with(|jobs| session.search_batch_sharded_with(jobs, shards, cancel))
    }

    /// Like [`run`](Scenario::run), through the from-scratch reference
    /// pipeline (scratch arenas and prefix-incremental caching disabled;
    /// see [`EvalSession::search_batch_from_scratch`]). Outcomes are
    /// bit-identical to [`run`](Scenario::run); only the evaluation cost
    /// differs — the before/after throughput benches run both.
    pub fn run_from_scratch(
        &self,
        session: &EvalSession,
        threads: Option<usize>,
    ) -> ScenarioOutcome {
        self.run_with(|jobs| session.search_batch_from_scratch(jobs, threads))
    }

    /// Shared driver: builds the jobs, times the batch, assembles the
    /// outcome.
    fn run_with(
        &self,
        batch: impl FnOnce(&[EvalJob]) -> Vec<Result<JobOutcome, JobError>>,
    ) -> ScenarioOutcome {
        let experiments = self.experiments();
        let jobs: Vec<EvalJob> = experiments.iter().map(Experiment::job).collect();
        let start = Instant::now();
        let results = batch(&jobs);
        ScenarioOutcome {
            name: self.name.clone(),
            experiments,
            results,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("title", &self.title)
            .finish()
    }
}

/// The result of one [`Scenario::run`]: experiments and their outcomes,
/// index-aligned.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The scenario's registry name.
    pub name: String,
    /// The experiments that ran.
    pub experiments: Vec<Experiment>,
    /// Per-experiment outcome; an `Err` preserves *why* a fixed mapping
    /// failed to evaluate or that a search found no valid candidate.
    pub results: Vec<Result<JobOutcome, JobError>>,
    /// Wall time of the whole batch.
    pub wall_seconds: f64,
}

impl ScenarioOutcome {
    /// Looks an outcome up by experiment label.
    pub fn result(&self, label: &str) -> Option<&JobOutcome> {
        self.experiments
            .iter()
            .position(|e| e.label == label)
            .and_then(|i| self.results[i].as_ref().ok())
    }

    /// `(experiment, outcome)` pairs for the experiments that succeeded.
    pub fn succeeded(&self) -> impl Iterator<Item = (&Experiment, &JobOutcome)> {
        self.experiments
            .iter()
            .zip(&self.results)
            .filter_map(|(e, r)| r.as_ref().ok().map(|r| (e, r)))
    }

    /// Summed search counters across experiments — including fruitless
    /// searches (their streams were walked too, and the throughput
    /// record should not jump when an experiment flips between
    /// succeeding and failing).
    pub fn total_stats(&self) -> SearchStats {
        let mut total = SearchStats::default();
        let mut add = |s: &SearchStats| {
            total.generated += s.generated;
            total.pruned += s.pruned;
            total.evaluated += s.evaluated;
            total.invalid += s.invalid;
        };
        for r in &self.results {
            match r {
                Ok(outcome) => add(&outcome.stats),
                Err(JobError::NoValidCandidate { stats }) => add(stats),
                Err(JobError::Eval(_)) | Err(JobError::Canceled) => {}
            }
        }
        total
    }

    /// Dense computes of the layers whose experiments succeeded (the
    /// numerator of Table 5's computes-per-host-cycle metric).
    pub fn modeled_computes(&self) -> f64 {
        self.succeeded()
            .map(|(e, _)| e.layer.computes() as f64)
            .sum()
    }

    /// Mappings drawn from candidate streams per wall second.
    pub fn mappings_per_sec(&self) -> f64 {
        self.total_stats().generated as f64 / self.wall_seconds.max(1e-12)
    }
}

/// The registry of all paper experiments.
#[derive(Debug)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// A registry over caller-supplied scenarios (the serving layer
    /// accepts custom registries; most callers want
    /// [`standard`](ScenarioRegistry::standard)).
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        ScenarioRegistry { scenarios }
    }

    /// All experiments of the paper's evaluation, by name:
    /// `fig1_format_tradeoff`, `fig11_scnn_validation`,
    /// `fig12_eyerissv2_validation`, `fig13_dstc_validation`,
    /// `fig15_stc_case_study`, `fig17_codesign_study`,
    /// `table5_<design>_<net>` (12 rows), `table6_validation_summary`,
    /// `table7_eyeriss_rlc`.
    pub fn standard() -> Self {
        let mut scenarios = vec![
            fig1_scenario(),
            fig11_scenario(),
            fig12_scenario(),
            fig13_scenario(),
            fig15_scenario(),
            fig17_scenario(),
        ];
        for design in Table5Design::ALL {
            for net in Table5Net::ALL {
                scenarios.push(table5_scenario(design, net));
            }
        }
        scenarios.push(table5_baseline_scenario());
        scenarios.push(table6_scenario());
        scenarios.push(table7_scenario());
        ScenarioRegistry { scenarios }
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name() == name)
    }

    /// Registers another scenario; used by the spec front-end's
    /// `with_specs` to extend a registry with spec-file scenarios.
    ///
    /// # Errors
    /// Returns the scenario back when its name is already registered
    /// (names are the lookup keys; silently shadowing one would make
    /// results depend on registration order).
    pub fn push(&mut self, scenario: Scenario) -> Result<(), Scenario> {
        if self.get(scenario.name()).is_some() {
            return Err(scenario);
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Like [`get`](ScenarioRegistry::get) but panics with the available
    /// names on a miss — the bench binaries' lookup.
    pub fn expect(&self, name: &str) -> &Scenario {
        self.get(name)
            .unwrap_or_else(|| panic!("no scenario named {name:?}; registered: {:?}", self.names()))
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// The registered scenarios.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }
}

/// The operand densities Fig. 1 sweeps.
pub const FIG1_DENSITIES: [f64; 9] = [0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0];

fn fig1_scenario() -> Scenario {
    Scenario::new(
        "fig1_format_tradeoff",
        "Fig. 1: bitmask vs coordinate-list across spMspM densities",
        || {
            let mut out = Vec::new();
            for d in FIG1_DENSITIES {
                let l = spmspm(64, 64, 64, d, d);
                let m = matmul_mapping_2level(&l.einsum, 16, 8);
                out.push(Experiment::fixed(
                    format!("Bitmask@{d}"),
                    fig1::bitmask_design(&l.einsum),
                    l.clone(),
                    m.clone(),
                ));
                out.push(Experiment::fixed(
                    format!("CoordinateList@{d}"),
                    fig1::coordinate_list_design(&l.einsum),
                    l,
                    m,
                ));
            }
            out
        },
    )
}

/// The Fig. 11 validation layer: scaled AlexNet conv3 with 35%-dense
/// weights (shared by the scenario and the refsim half of the binary).
pub fn fig11_layer() -> Layer {
    let mut layer = alexnet().layers[2].scaled_to(300_000);
    layer.densities[0] = DensityModelSpec::Uniform { density: 0.35 };
    layer
}

fn fig11_scenario() -> Scenario {
    Scenario::new(
        "fig11_scnn_validation",
        "Fig. 11: SCNN per-component runtime activity (scaled AlexNet conv3)",
        || {
            let layer = fig11_layer();
            let dp = scnn::design(&layer.einsum);
            // single-PE (temporal-only) space: Fig. 11 validates one PE
            let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
            vec![Experiment::search("SCNN@conv3", dp, layer, space)]
        },
    )
}

/// The MobileNet layers Fig. 12 validates (every fifth, scaled).
pub fn fig12_layers() -> Vec<Layer> {
    mobilenet_v1()
        .layers
        .iter()
        .skip(1)
        .step_by(5)
        .take(5)
        .map(|l| l.scaled_to(120_000))
        .collect()
}

fn fig12_scenario() -> Scenario {
    Scenario::new(
        "fig12_eyerissv2_validation",
        "Fig. 12: Eyeriss V2 PE latency (scaled MobileNet layers)",
        || {
            fig12_layers()
                .into_iter()
                .map(|layer| {
                    let dp = eyeriss_v2::design(&layer.einsum);
                    let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
                    Experiment::search(format!("EyerissV2-PE@{}", layer.name), dp, layer, space)
                })
                .collect()
        },
    )
}

/// The operand densities Fig. 13 sweeps (densest first: the first row is
/// the normalization baseline).
pub const FIG13_DENSITIES: [f64; 10] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];

/// The single-PE (temporal-only) DSTC validation mapping.
pub fn fig13_mapping(e: &Einsum) -> Mapping {
    matmul_mapping_3level(e, 1, 8, 16, 4, true)
}

fn fig13_scenario() -> Scenario {
    Scenario::new(
        "fig13_dstc_validation",
        "Fig. 13: DSTC normalized latency vs operand density (matmul 32^3)",
        || {
            FIG13_DENSITIES
                .iter()
                .map(|&d| {
                    let l = spmspm(32, 32, 32, d, d);
                    let dp = dstc::design(&l.einsum);
                    let m = fig13_mapping(&l.einsum);
                    Experiment::fixed(format!("DSTC@{d}"), dp, l, m)
                })
                .collect()
        },
    )
}

/// Fig. 15's ResNet50 res4a-like implicit GEMM
/// (M=256, N=14*14→192, K=64*9=576) at the given structured-sparsity
/// block (`None` = dense weights) and input density.
pub fn fig15_layer(m_block: Option<u64>, input_density: f64) -> Layer {
    let e = Einsum::matmul(256, 192, 576).with_name("res4a_gemm");
    let weights = match m_block {
        None => DensityModelSpec::Dense,
        Some(m) => DensityModelSpec::FixedStructured { n: 2, m, axis: 1 },
    };
    let inputs = if input_density >= 1.0 {
        DensityModelSpec::Dense
    } else {
        DensityModelSpec::Uniform {
            density: input_density,
        }
    };
    Layer {
        name: "res4a".into(),
        einsum: e,
        densities: vec![weights, inputs, DensityModelSpec::Dense],
    }
}

/// The sparsity grid Fig. 15 sweeps: `(row tag, block size)`.
pub const FIG15_SPARSITIES: [(&str, Option<u64>); 4] = [
    ("dense", None),
    ("2:4", Some(4)),
    ("2:6", Some(6)),
    ("2:8", Some(8)),
];

/// Fig. 15's input density.
pub const FIG15_INPUT_DENSITY: f64 = 0.45;

fn fig15_scenario() -> Scenario {
    Scenario::new(
        "fig15_stc_case_study",
        "Fig. 15: next-generation sparse-tensor-core case study",
        || {
            let dense = fig15_layer(None, FIG15_INPUT_DENSITY);
            let stc_map = stc::mapping(&dense.einsum);
            let dstc_map = dstc::mapping(&dense.einsum);
            let mut out = Vec::new();
            for (tag, mb) in FIG15_SPARSITIES {
                let l = fig15_layer(mb, FIG15_INPUT_DENSITY);
                // STC can only exploit 2:4; on other ratios it treats
                // weights as unstructured-dense streams — the flexible
                // variants bind their selection logic to the actual block
                let m_block = mb.unwrap_or(4);
                let designs: Vec<(DesignPoint, &Mapping)> = vec![
                    (dstc::design(&l.einsum), &dstc_map),
                    (stc::stc(&l.einsum), &stc_map),
                    (stc::stc_flexible(&l.einsum, m_block), &stc_map),
                    (stc::stc_flexible_rle(&l.einsum, m_block), &stc_map),
                    (stc::stc_flexible_rle_dual(&l.einsum, m_block), &stc_map),
                ];
                for (dp, map) in designs {
                    out.push(Experiment::fixed(
                        format!("{}@{tag}", dp.name),
                        dp,
                        l.clone(),
                        map.clone(),
                    ));
                }
            }
            out
        },
    )
}

fn fig17_scenario() -> Scenario {
    Scenario::new(
        "fig17_codesign_study",
        "Fig. 17: dataflow x SAF co-design grid across spMspM densities",
        || {
            let grid = [
                (
                    fig17::Dataflow::ReuseAbz,
                    fig17::SafChoice::InnermostSkip,
                    "ABZ.Inner",
                ),
                (
                    fig17::Dataflow::ReuseAbz,
                    fig17::SafChoice::HierarchicalSkip,
                    "ABZ.Hier",
                ),
                (
                    fig17::Dataflow::ReuseAz,
                    fig17::SafChoice::InnermostSkip,
                    "AZ.Inner",
                ),
                (
                    fig17::Dataflow::ReuseAz,
                    fig17::SafChoice::HierarchicalSkip,
                    "AZ.Hier",
                ),
            ];
            let mut out = Vec::new();
            for d in sparseloop_workloads::spmspm::density_sweep() {
                let l = spmspm(256, 256, 256, d, d);
                for (df, saf, cell) in grid {
                    out.push(Experiment::fixed(
                        format!("{cell}@{d}"),
                        fig17::design(&l.einsum, df, saf),
                        l.clone(),
                        fig17::mapping(&l.einsum, df),
                    ));
                }
            }
            out
        },
    )
}

/// The designs Table 5 times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table5Design {
    /// Eyeriss (conv layers; Fig. 1 bitmask on matmul layers).
    Eyeriss,
    /// Eyeriss V2 PE (coordinate-list fallback on matmul layers).
    EyerissV2Pe,
    /// SCNN (coordinate-list fallback on matmul layers).
    Scnn,
}

impl Table5Design {
    /// All rows, in the paper's order.
    pub const ALL: [Table5Design; 3] = [
        Table5Design::Eyeriss,
        Table5Design::EyerissV2Pe,
        Table5Design::Scnn,
    ];

    /// Display / registry name fragment.
    pub fn name(self) -> &'static str {
        match self {
            Table5Design::Eyeriss => "Eyeriss",
            Table5Design::EyerissV2Pe => "EyerissV2-PE",
            Table5Design::Scnn => "SCNN",
        }
    }

    fn key(self) -> &'static str {
        match self {
            Table5Design::Eyeriss => "eyeriss",
            Table5Design::EyerissV2Pe => "eyerissv2pe",
            Table5Design::Scnn => "scnn",
        }
    }

    /// Binds the design to a layer's Einsum; matmul workloads (BERT) run
    /// on the designs' matmul-compatible Fig. 1 counterparts, since the
    /// conv designs bind SAFs per conv tensor name.
    pub fn design_for(self, e: &Einsum) -> DesignPoint {
        let is_conv = e.tensor_id("Weights").is_some();
        match (self, is_conv) {
            (Table5Design::Eyeriss, true) => eyeriss::design(e),
            (Table5Design::Eyeriss, false) => fig1::bitmask_design(e),
            (Table5Design::EyerissV2Pe, true) => eyeriss_v2::design(e),
            (Table5Design::Scnn, true) => scnn::design(e),
            (_, false) => fig1::coordinate_list_design(e),
        }
    }
}

/// The networks Table 5 times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table5Net {
    /// ResNet50.
    ResNet50,
    /// BERT-base at sequence length 512.
    BertBase,
    /// VGG16.
    Vgg16,
    /// AlexNet.
    AlexNet,
}

impl Table5Net {
    /// All columns, in the paper's order.
    pub const ALL: [Table5Net; 4] = [
        Table5Net::ResNet50,
        Table5Net::BertBase,
        Table5Net::Vgg16,
        Table5Net::AlexNet,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Table5Net::ResNet50 => "ResNet50",
            Table5Net::BertBase => "BERT-base",
            Table5Net::Vgg16 => "VGG16",
            Table5Net::AlexNet => "AlexNet",
        }
    }

    fn key(self) -> &'static str {
        match self {
            Table5Net::ResNet50 => "resnet50",
            Table5Net::BertBase => "bert",
            Table5Net::Vgg16 => "vgg16",
            Table5Net::AlexNet => "alexnet",
        }
    }

    /// Instantiates the network.
    pub fn network(self) -> Network {
        match self {
            Table5Net::ResNet50 => resnet50(),
            Table5Net::BertBase => bert_base(512),
            Table5Net::Vgg16 => vgg16(),
            Table5Net::AlexNet => alexnet(),
        }
    }
}

/// The registry name of one Table 5 row (`table5_<design>_<net>`).
pub fn table5_name(design: Table5Design, net: Table5Net) -> String {
    format!("table5_{}_{}", design.key(), net.key())
}

fn table5_scenario(design: Table5Design, net: Table5Net) -> Scenario {
    Scenario::new(
        table5_name(design, net),
        format!("Table 5 row: {} on {}", design.name(), net.name()),
        move || {
            net.network()
                .layers
                .into_iter()
                .map(|layer| {
                    let dp = design.design_for(&layer.einsum);
                    let spatial_level = dp.arch.num_levels() - 1;
                    let space = conv_mapspace(&layer.einsum, &dp.arch, spatial_level);
                    Experiment::search(
                        format!("{}@{}", design.name(), layer.name),
                        dp,
                        layer,
                        space,
                    )
                    .optional()
                })
                .collect()
        },
    )
}

fn table5_baseline_scenario() -> Scenario {
    Scenario::new(
        "table5_refsim_baseline",
        "Table 5 baseline: the layer the per-element reference simulator walks",
        || {
            // scaled so the simulator's every-compute walk stays tractable
            let layer = alexnet().layers[2].scaled_to(200_000);
            let dp = eyeriss::design(&layer.einsum);
            let space = conv_mapspace(&layer.einsum, &dp.arch, 2);
            vec![Experiment::search(
                format!("Eyeriss@{}", layer.name),
                dp,
                layer,
                space,
            )]
        },
    )
}

/// The Table 6 STC rows' matmul and structured/dense layers.
pub fn table6_stc_layers() -> (Layer, Layer) {
    let e = Einsum::matmul(64, 64, 64);
    let sparse = Layer {
        name: "stc".into(),
        einsum: e.clone(),
        densities: vec![
            DensityModelSpec::FixedStructured {
                n: 2,
                m: 4,
                axis: 1,
            },
            DensityModelSpec::Dense,
            DensityModelSpec::Dense,
        ],
    };
    let dense = Layer {
        name: "stc-dense".into(),
        einsum: e,
        densities: vec![DensityModelSpec::Dense; 3],
    };
    (sparse, dense)
}

/// The densities of Table 6's DSTC latency rows.
pub const TABLE6_DSTC_DENSITIES: [f64; 3] = [1.0, 0.6, 0.3];

fn table6_scenario() -> Scenario {
    Scenario::new(
        "table6_validation_summary",
        "Table 6: per-design validation summary",
        || {
            let mut out = Vec::new();
            // SCNN: runtime activities on scaled AlexNet conv3
            {
                let mut layer = alexnet().layers[2].scaled_to(200_000);
                layer.densities[0] = DensityModelSpec::Uniform { density: 0.35 };
                let dp = scnn::design(&layer.einsum);
                let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
                out.push(Experiment::search("SCNN@conv3", dp, layer, space));
            }
            // Eyeriss V2 PE: processing latency on a MobileNet layer
            {
                let layer = mobilenet_v1().layers[2].scaled_to(120_000);
                let dp = eyeriss_v2::design(&layer.einsum);
                let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
                out.push(Experiment::search("EyerissV2-PE@pw1", dp, layer, space));
            }
            // DSTC: normalized latency across densities
            for d in TABLE6_DSTC_DENSITIES {
                let l = spmspm(32, 32, 32, d, d);
                let dp = dstc::design(&l.einsum);
                let m = fig13_mapping(&l.einsum);
                out.push(Experiment::fixed(format!("DSTC@{d}"), dp, l, m));
            }
            // STC: deterministic 2x on 2:4 (sparse vs dense)
            {
                let (sparse, dense) = table6_stc_layers();
                let dp = stc::stc(&sparse.einsum);
                let m = stc::mapping(&sparse.einsum);
                out.push(Experiment::fixed("STC@2:4", dp.clone(), sparse, m.clone()));
                out.push(Experiment::fixed("STC@dense", dp, dense, m));
            }
            out
        },
    )
}

fn table7_scenario() -> Scenario {
    Scenario::new(
        "table7_eyeriss_rlc",
        "Table 7: Eyeriss DRAM RLC compression on AlexNet activations",
        || {
            // one experiment per conv layer whose output activations the
            // table compresses, with the published post-ReLU *output*
            // density bound into the layer — the table7 binary reads the
            // densities back from these experiments and compares actual
            // RLC encoding against eyeriss::dram_rlc_format()'s model
            alexnet()
                .layers
                .into_iter()
                .zip(sparseloop_workloads::dnn::alexnet_output_densities())
                .map(|(mut layer, (_, out_density))| {
                    let out = layer
                        .einsum
                        .tensors()
                        .iter()
                        .position(|t| t.kind == sparseloop_tensor::einsum::TensorKind::Output)
                        .expect("conv layer has an output");
                    layer.densities[out] = DensityModelSpec::Uniform {
                        density: out_density,
                    };
                    let layer = layer.scaled_to(100_000);
                    let dp = eyeriss::design(&layer.einsum);
                    let spatial_level = dp.arch.num_levels() - 1;
                    let space = conv_mapspace(&layer.einsum, &dp.arch, spatial_level);
                    Experiment::search(format!("Eyeriss@{}", layer.name), dp, layer, space)
                })
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let reg = ScenarioRegistry::standard();
        let names = reg.names();
        assert!(names.len() >= 20, "expected all paper experiments");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
    }

    #[test]
    fn every_scenario_builds_experiments() {
        let reg = ScenarioRegistry::standard();
        for sc in reg.scenarios() {
            let exps = sc.experiments();
            assert!(!exps.is_empty(), "{} has no experiments", sc.name());
            // labels are unique within a scenario (binaries look rows up
            // by label)
            let mut labels: Vec<&str> = exps.iter().map(|e| e.label.as_str()).collect();
            labels.sort_unstable();
            let n = labels.len();
            labels.dedup();
            assert_eq!(labels.len(), n, "{} has duplicate labels", sc.name());
        }
    }

    #[test]
    fn lookup_by_name_works() {
        let reg = ScenarioRegistry::standard();
        assert!(reg.get("fig1_format_tradeoff").is_some());
        assert!(reg
            .get(&table5_name(Table5Design::Scnn, Table5Net::AlexNet))
            .is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn fig1_scenario_runs_and_reproduces_the_crossover() {
        let session = EvalSession::new();
        let out = ScenarioRegistry::standard()
            .expect("fig1_format_tradeoff")
            .run(&session, Some(2));
        assert!(out.results.iter().all(|r| r.is_ok()));
        // sparse regime: coordinate list wins EDP
        let bm = out.result("Bitmask@0.1").unwrap();
        let cl = out.result("CoordinateList@0.1").unwrap();
        assert!(cl.eval.edp < bm.eval.edp);
        // the session interned shared statistics across the sweep
        assert!(session.stats().format.hits > 0);
    }

    #[test]
    fn fig1_energy_crossover_shape_is_locked() {
        // The figure's claim is *relative*: CP more energy-efficient
        // when sparse, bitmask when dense, with one crossover between.
        // This pins the shape so arch tweaks (e.g. buffer sizing, whose
        // energy scales with sqrt(capacity)) cannot silently move it.
        let session = EvalSession::new();
        let out = ScenarioRegistry::standard()
            .expect("fig1_format_tradeoff")
            .run(&session, Some(2));
        let advantage = |d: f64| {
            let bm = out.result(&format!("Bitmask@{d}")).unwrap();
            let cl = out.result(&format!("CoordinateList@{d}")).unwrap();
            cl.eval.energy_pj / bm.eval.energy_pj
        };
        // CP wins energy at the sparse end, bitmask at the dense end
        assert!(advantage(0.05) < 1.0 && advantage(0.1) < 1.0);
        assert!(advantage(0.9) > 1.0 && advantage(1.0) > 1.0);
        // monotone advantage along the sweep -> exactly one crossover
        let ratios: Vec<f64> = FIG1_DENSITIES.iter().map(|&d| advantage(d)).collect();
        assert!(
            ratios.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "bitmask energy advantage must grow with density: {ratios:?}"
        );
        // bitmask never speeds up: CP cycles <= BM cycles everywhere
        for &d in &FIG1_DENSITIES {
            let bm = out.result(&format!("Bitmask@{d}")).unwrap();
            let cl = out.result(&format!("CoordinateList@{d}")).unwrap();
            assert!(cl.eval.cycles <= bm.eval.cycles + 1e-9);
        }
    }

    #[test]
    fn fixed_policy_matches_direct_evaluation() {
        let session = EvalSession::new();
        let sc = ScenarioRegistry::standard();
        let out = sc.expect("fig13_dstc_validation").run(&session, None);
        for (exp, res) in out.succeeded() {
            let direct = exp
                .design
                .evaluate(&exp.layer, &res.mapping)
                .expect("fixed mapping evaluates");
            assert_eq!(direct.cycles, res.eval.cycles, "{}", exp.label);
            assert_eq!(direct.energy_pj, res.eval.energy_pj, "{}", exp.label);
        }
    }
}
