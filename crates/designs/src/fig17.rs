//! The §7.2 co-design grid: {ReuseABZ, ReuseAZ} × {InnermostSkip,
//! HierarchicalSkip} on spMspM (Table 8, Fig. 17).
//!
//! Hardware budget: 256 compute units, 128 KB on-chip storage (64 K
//! 16-bit words). The dataflows differ only in whether B gets on-chip
//! reuse; the SAF sets differ only in whether the double-sided
//! intersection also runs off-chip.

use crate::common::{divisor_at_most, matmul_ids, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::TensorFormat;
use sparseloop_mapping::{Mapping, MappingBuilder};
use sparseloop_tensor::einsum::{DimId, Einsum};

/// Which tensors get on-chip reuse (Table 8a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataflow {
    /// All three tensors reused on chip.
    ReuseAbz,
    /// No on-chip reuse for B (streamed from DRAM).
    ReuseAz,
}

/// Where the double-sided intersection runs (Table 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafChoice {
    /// `Skip B ↔ A` at the innermost on-chip storage only.
    InnermostSkip,
    /// `Skip B ↔ A` at DRAM *and* the innermost storage.
    HierarchicalSkip,
}

fn arch(name: &str) -> Architecture {
    ArchitectureBuilder::new(name)
        .level(
            StorageLevel::new("DRAM")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(16.0),
        )
        .level(
            StorageLevel::new("Buffer")
                .with_capacity(64 * 1024) // 128 KB at 16-bit words
                .with_bandwidth(512.0),
        )
        .compute(ComputeSpec::new("MAC", 256))
        .build()
        .expect("static architecture is valid")
}

/// Builds one grid point.
pub fn design(e: &Einsum, dataflow: Dataflow, saf: SafChoice) -> DesignPoint {
    let (a, b, z) = matmul_ids(e);
    let fmt = TensorFormat::coo(2);
    let mut safs = SafSpec::dense()
        .with_format(0, a, fmt.clone())
        .with_format(0, b, fmt.clone())
        .with_format(1, a, fmt.clone())
        .with_format(1, b, fmt)
        .with_skip(1, a, vec![a])
        .with_skip(1, b, vec![b])
        .with_double_sided_skip(1, a, b)
        .with_skip(1, z, vec![a, b])
        .with_skip_compute();
    if saf == SafChoice::HierarchicalSkip {
        safs = safs
            .with_double_sided_skip(0, a, b)
            .with_skip(0, z, vec![a, b]);
    }
    let name = format!(
        "{}.{}",
        match dataflow {
            Dataflow::ReuseAbz => "ReuseABZ",
            Dataflow::ReuseAz => "ReuseAZ",
        },
        match saf {
            SafChoice::InnermostSkip => "InnermostSkip",
            SafChoice::HierarchicalSkip => "HierarchicalSkip",
        }
    );
    DesignPoint {
        name,
        arch: arch("fig17"),
        safs,
    }
}

/// The dataflow-specific mapping.
///
/// * `ReuseABZ`: `m` iterates *outside* the buffer level, so each B tile
///   is reused across many A tiles — good reuse, but the off-chip leader
///   tile for `Skip B ← A` becomes a tall column block of A that is
///   almost never empty.
/// * `ReuseAZ`: B is bypassed on chip and streamed from DRAM once per
///   A-row tile — no reuse, but the off-chip leader tile is small.
pub fn mapping(e: &Einsum, dataflow: Dataflow) -> Mapping {
    let (m, n, k) = (DimId(0), DimId(1), DimId(2));
    let (mb, nb, kb) = (e.bound(m), e.bound(n), e.bound(k));
    let (_a, b_id, _z) = matmul_ids(e);
    let s = divisor_at_most(nb, 16);
    let tm = divisor_at_most(mb, 16);
    let tn = divisor_at_most(nb, 64);
    match dataflow {
        Dataflow::ReuseAbz => {
            // n1 sits ABOVE m1 so the on-chip B tile stays stationary
            // across the whole m sweep (the defining reuse of ReuseABZ).
            let mut bld = MappingBuilder::new(2, e.tensors().len());
            if nb / tn > 1 {
                bld = bld.temporal(0, n, nb / tn);
            }
            if mb / tm > 1 {
                bld = bld.temporal(0, m, mb / tm);
            }
            if s > 1 {
                bld = bld.spatial(1, n, s);
            }
            if tn / s > 1 {
                bld = bld.temporal(1, n, tn / s);
            }
            if tm > 1 {
                bld = bld.temporal(1, m, tm);
            }
            bld = bld.temporal(1, k, kb);
            bld.build()
        }
        Dataflow::ReuseAz => {
            let mut bld = MappingBuilder::new(2, e.tensors().len());
            if mb / tm > 1 {
                bld = bld.temporal(0, m, mb / tm);
            }
            if nb / s > 1 {
                bld = bld.temporal(0, n, nb / s);
            }
            if s > 1 {
                bld = bld.spatial(1, n, s);
            }
            if tm > 1 {
                bld = bld.temporal(1, m, tm);
            }
            bld = bld.temporal(1, k, kb);
            bld.bypass(1, b_id).build()
        }
    }
}

/// All four grid points with their mappings.
pub fn grid(e: &Einsum) -> Vec<(DesignPoint, Mapping)> {
    let mut out = Vec::new();
    for df in [Dataflow::ReuseAbz, Dataflow::ReuseAz] {
        for saf in [SafChoice::InnermostSkip, SafChoice::HierarchicalSkip] {
            out.push((design(e, df, saf), mapping(e, df)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_workloads::spmspm;

    fn edp(df: Dataflow, saf: SafChoice, density: f64) -> f64 {
        let l = spmspm(256, 256, 256, density, density);
        let dp = design(&l.einsum, df, saf);
        let m = mapping(&l.einsum, df);
        dp.evaluate(&l, &m).expect("fig17 mapping valid").edp
    }

    #[test]
    fn all_grid_points_evaluate() {
        let l = spmspm(256, 256, 256, 0.1, 0.1);
        for (dp, m) in grid(&l.einsum) {
            let e = dp.evaluate(&l, &m).unwrap();
            assert!(e.edp > 0.0, "{}", dp.name);
        }
    }

    #[test]
    fn hierarchical_skip_wins_when_hyper_sparse() {
        // At extremely low density, early off-chip elimination pays off.
        let sparse = 0.001;
        let az_hier = edp(Dataflow::ReuseAz, SafChoice::HierarchicalSkip, sparse);
        let abz_inner = edp(Dataflow::ReuseAbz, SafChoice::InnermostSkip, sparse);
        assert!(
            az_hier < abz_inner,
            "ReuseAZ.Hierarchical {az_hier} should beat ReuseABZ.Innermost {abz_inner}"
        );
    }

    #[test]
    fn reuse_abz_wins_when_denser() {
        let dense = 0.25;
        let az_hier = edp(Dataflow::ReuseAz, SafChoice::HierarchicalSkip, dense);
        let abz_inner = edp(Dataflow::ReuseAbz, SafChoice::InnermostSkip, dense);
        assert!(
            abz_inner < az_hier,
            "ReuseABZ.Innermost {abz_inner} should beat ReuseAZ.Hierarchical {az_hier}"
        );
    }

    #[test]
    fn reuse_abz_hierarchical_never_best() {
        // The paper's headline co-design insight: combining every saving
        // feature is never optimal, because ReuseABZ's reuse makes the
        // off-chip leader tiles nearly never empty.
        for density in [0.0001, 0.001, 0.01, 0.1, 0.5] {
            let abz_h = edp(Dataflow::ReuseAbz, SafChoice::HierarchicalSkip, density);
            let best_other = [
                edp(Dataflow::ReuseAbz, SafChoice::InnermostSkip, density),
                edp(Dataflow::ReuseAz, SafChoice::InnermostSkip, density),
                edp(Dataflow::ReuseAz, SafChoice::HierarchicalSkip, density),
            ]
            .into_iter()
            .fold(f64::INFINITY, f64::min);
            assert!(
                abz_h >= best_other * 0.999,
                "ReuseABZ.Hierarchical should never strictly win at d={density}"
            );
        }
    }
}
