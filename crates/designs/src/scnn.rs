//! SCNN (Table 3, Fig. 11).
//!
//! SCNN streams compressed nonzero weights and input activations
//! (`B-UOP-RLE`-style) through a multiplier array computing their
//! cartesian product — so compute scales with `nnz(W) × nnz(I)` — and
//! scatters products into an accumulator buffer. Output accesses are
//! skipped for ineffectual pairs; leftover compute is gated.

use crate::common::{conv_ids, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::{RankFormat, TensorFormat};
use sparseloop_tensor::einsum::Einsum;

/// DRAM over per-PE IARAM/OARAM + weight FIFOs over a 4×4 multiplier
/// array (one SCNN PE).
pub fn arch() -> Architecture {
    ArchitectureBuilder::new("scnn")
        .level(
            StorageLevel::new("DRAM")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(4.0),
        )
        .level(
            StorageLevel::new("IARAM")
                .with_capacity(8 * 1024)
                .with_bandwidth(8.0),
        )
        .level(
            StorageLevel::new("OperandLatch")
                .with_class(ComponentClass::RegFile)
                .with_capacity(64)
                .with_bandwidth(32.0),
        )
        .compute(ComputeSpec::new("MultArray", 16))
        .build()
        .expect("static architecture is valid")
}

/// UOP-RLE compressed stream format.
fn compressed() -> TensorFormat {
    TensorFormat::from_ranks(&[RankFormat::uop(), RankFormat::rle()])
}

/// SCNN's SAFs for a conv workload.
pub fn safs(e: &Einsum) -> SafSpec {
    let (w, i, o) = conv_ids(e);
    SafSpec::dense()
        .with_format(0, w, compressed())
        .with_format(0, i, compressed())
        .with_format(1, w, compressed())
        .with_format(1, i, compressed())
        .with_format(2, w, compressed())
        .with_format(2, i, compressed())
        // compressed streams skip their own zeros at the innermost level
        .with_skip(2, w, vec![w])
        .with_skip(2, i, vec![i])
        // output accesses only for effectual products
        .with_skip(2, o, vec![i, w])
        .with_gate_compute()
}

/// The SCNN design point.
pub fn design(e: &Einsum) -> DesignPoint {
    DesignPoint {
        name: "SCNN".into(),
        arch: arch(),
        safs: safs(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::conv_mapspace;
    use sparseloop_workloads::alexnet;

    #[test]
    fn compute_scales_with_nnz_product() {
        let mut layer = alexnet().layers[2].scaled_to(500_000);
        // make both operands sparse
        layer.densities[0] = sparseloop_density::DensityModelSpec::Uniform { density: 0.4 };
        let dp = design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 2);
        let (_, eval) = dp.search(&layer, &space).expect("valid mapping");
        let frac = eval.sparse.compute.ops.actual / eval.dense.computes;
        assert!(
            (frac - 0.4 * 0.55).abs() < 0.05,
            "cartesian product fraction {frac}"
        );
    }

    #[test]
    fn output_skipping_reduces_accumulator_traffic() {
        let mut layer = alexnet().layers[2].scaled_to(200_000);
        layer.densities[0] = sparseloop_density::DensityModelSpec::Uniform { density: 0.3 };
        let dp = design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 2);
        let (map, eval) = dp.search(&layer, &space).unwrap();
        let o = layer.einsum.tensor_id("Outputs").unwrap();
        let plain = DesignPoint {
            name: "d".into(),
            arch: arch(),
            safs: SafSpec::dense(),
        }
        .evaluate(&layer, &map)
        .unwrap();
        let skipped = eval
            .sparse
            .get(o, 2)
            .map(|e| e.updates.skipped)
            .unwrap_or(0.0);
        assert!(skipped > 0.0);
        let _ = plain;
    }
}
