//! Eyeriss (Table 3, Table 7, §6.3.4).
//!
//! Off-chip activations are RLC-compressed (`B-RLE`); on chip, data stays
//! uncompressed and the PEs *gate* on zero input activations
//! (`Gate W ← I`, `Gate O ← I` at the innermost storage) — saving energy
//! but never cycles.

use crate::common::{conv_ids, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::TensorFormat;
use sparseloop_tensor::einsum::Einsum;

/// DRAM → 108 KB global buffer → per-PE register files → 168 PEs
/// (the 12×14 Eyeriss array).
pub fn arch() -> Architecture {
    ArchitectureBuilder::new("eyeriss")
        .level(
            StorageLevel::new("DRAM")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(4.0),
        )
        .level(
            StorageLevel::new("GlobalBuffer")
                .with_capacity(54 * 1024) // 108 KB at 16-bit words
                .with_bandwidth(16.0),
        )
        .level(
            StorageLevel::new("RegFile")
                .with_class(ComponentClass::RegFile)
                .with_capacity(256)
                .with_instances(168)
                .with_bandwidth(4.0),
        )
        .compute(ComputeSpec::new("PE", 168))
        .build()
        .expect("static architecture is valid")
}

/// Eyeriss' SAFs for a conv workload.
pub fn safs(e: &Einsum) -> SafSpec {
    let (w, i, o) = conv_ids(e);
    SafSpec::dense()
        // off-chip: activations RLC-compressed, weights uncompressed
        .with_format(0, i, TensorFormat::b_rle())
        .with_format(0, o, TensorFormat::b_rle())
        // innermost storage: gate weight reads and output accumulations
        // on zero input activations
        .with_gate(2, w, vec![i])
        .with_gate(2, o, vec![i])
        .with_gate_compute()
}

/// The Eyeriss design point for a conv workload.
pub fn design(e: &Einsum) -> DesignPoint {
    DesignPoint {
        name: "Eyeriss".into(),
        arch: arch(),
        safs: safs(e),
    }
}

/// Run-length field width of Eyeriss' DRAM RLC codec (5-bit runs).
pub const DRAM_RLC_RUN_BITS: u32 = 5;

/// Value width of Eyeriss' DRAM RLC codec (16-bit activations).
pub const DRAM_RLC_VALUE_BITS: u32 = 16;

/// The DRAM activation codec as a tensor format (Table 7's analytical
/// side): one run-length rank with Eyeriss' 5-bit runs over a flattened
/// activation stream.
pub fn dram_rlc_format() -> TensorFormat {
    TensorFormat::from_ranks(&[sparseloop_format::RankFormat::RunLength {
        run_bits: Some(DRAM_RLC_RUN_BITS),
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::conv_mapspace;
    use sparseloop_workloads::alexnet;

    #[test]
    fn evaluates_alexnet_layer() {
        let layer = alexnet().layers[2].scaled_to(2_000_000);
        let dp = design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 1);
        let (_, eval) = dp.search(&layer, &space).expect("a valid mapping exists");
        assert!(eval.cycles > 0.0 && eval.energy_pj > 0.0);
    }

    #[test]
    fn gating_saves_energy_not_time() {
        let layer = alexnet().layers[2].scaled_to(500_000);
        let dp = design(&layer.einsum);
        let dense_dp = DesignPoint {
            name: "Eyeriss-dense".into(),
            arch: arch(),
            safs: SafSpec::dense(),
        };
        let space = conv_mapspace(&layer.einsum, &dp.arch, 1);
        let (map, gated) = dp.search(&layer, &space).unwrap();
        let plain = dense_dp.evaluate(&layer, &map).unwrap();
        assert!(gated.energy_pj < plain.energy_pj);
        assert!((gated.uarch.compute_cycles - plain.uarch.compute_cycles).abs() < 1e-6);
    }

    #[test]
    fn pe_energy_savings_magnitude() {
        // §6.3.4: Eyeriss claims ~45% PE energy reduction from gating;
        // Sparseloop models ~43%. Check our gating lands in that region
        // for typical mid-network activation density.
        let layer = alexnet().layers[2].scaled_to(500_000); // input density 0.55
        let dp = design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 1);
        let (map, gated) = dp.search(&layer, &space).unwrap();
        let plain = DesignPoint {
            name: "dense".into(),
            arch: arch(),
            safs: SafSpec::dense(),
        }
        .evaluate(&layer, &map)
        .unwrap();
        let saving = 1.0 - gated.uarch.compute_energy_pj / plain.uarch.compute_energy_pj;
        assert!(
            (0.25..0.65).contains(&saving),
            "PE energy saving {saving} should be in the ~45% region"
        );
    }
}
