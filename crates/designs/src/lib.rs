//! # sparseloop-designs
//!
//! A library of accelerator designs expressed in the SAF taxonomy —
//! the reproduction of the paper's Table 3 plus the case-study designs of
//! §7. Each module provides an architecture, a SAF specification bound to
//! a workload's tensor ids, and mapping helpers.
//!
//! | Module | Paper design | Dataflow / SAFs (Table 3) |
//! |---|---|---|
//! | [`fig1`] | Bitmask vs. coordinate-list designs (Fig. 1) | same dataflow; B-B + gating vs. CP + skipping |
//! | [`eyeriss`] | Eyeriss | B-RLE off-chip I/O; `Gate W←I`, `Gate O←I` innermost |
//! | [`eyeriss_v2`] | Eyeriss V2 PE | CSC-like I/W; `Skip W←I`, `Skip O←I&W`; `Gate Compute` |
//! | [`scnn`] | SCNN | compressed I/W streams; `Skip O←I&W`; `Gate Compute` |
//! | [`dstc`] | Dual-side sparse tensor core | B-B both operands; `Skip A↔B`, `Skip Z←A&B` |
//! | [`stc`] | NVIDIA sparse tensor core + §7.1 extensions | 2:4 CP weights; structured skipping; SMEM bandwidth provisioned for 2:4 |
//! | [`fig17`] | §7.2 co-design grid | ReuseABZ/ReuseAZ × InnermostSkip/HierarchicalSkip |

pub mod common;
pub mod dstc;
pub mod eyeriss;
pub mod eyeriss_v2;
pub mod fig1;
pub mod fig17;
pub mod scenario;
pub mod scnn;
pub mod stc;

pub use common::DesignPoint;
pub use scenario::{Experiment, MappingPolicy, Scenario, ScenarioOutcome, ScenarioRegistry};
