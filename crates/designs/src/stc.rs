//! NVIDIA sparse tensor core (STC) and the §7.1 next-generation
//! extensions: STC-flexible, STC-flexible-rle and
//! STC-flexible-rle-dualCompress.
//!
//! All variants share the SMEM → RF → tensor-core hierarchy of Fig. 14,
//! with SMEM bandwidth *provisioned for 2:4 structured sparsity* — the
//! bottleneck §7.1.3 identifies: at 2:m the uncompressed inputs need
//! `m/2 ×` the bandwidth, so naive ratio extensions gain energy but no
//! speed.
//!
//! Weights (tensor A) carry an offset-based CP format (2-bit offsets
//! within each block of four for 2:4); `Skip A ← A` expresses the 4:2
//! input-selection hardware that only processes nonzero weights.

use crate::common::{matmul_ids, matmul_mapping_3level, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::{FormatLevel, RankFormat, TensorFormat};
use sparseloop_mapping::Mapping;
use sparseloop_tensor::einsum::Einsum;

/// Modeled tensor-core slice: 16 MACs fed by a register file under a
/// bandwidth-limited SMEM. SMEM bandwidth is sized for 2:4: per cycle,
/// 16 weight words (1×), 32 input words (2×) and 2 metadata word
/// equivalents.
fn arch(name: &str) -> Architecture {
    ArchitectureBuilder::new(name)
        .level(
            StorageLevel::new("DRAM")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(64.0),
        )
        .level(
            StorageLevel::new("SMEM")
                .with_capacity(48 * 1024)
                .with_bandwidth(50.0), // 16 + 32 + 2, provisioned for 2:4
        )
        .level(
            StorageLevel::new("RF")
                .with_class(ComponentClass::RegFile)
                .with_capacity(256)
                .with_instances(16)
                .with_bandwidth(4.0),
        )
        .compute(ComputeSpec::new("TensorCore", 16))
        .build()
        .expect("static architecture is valid")
}

/// Weight metadata format for a 2:m ratio with CP offsets
/// (`ceil(log2(m))` bits per nonzero).
fn weight_format_cp(m_block: u64) -> TensorFormat {
    let bits = (64 - (m_block - 1).leading_zeros()).max(1);
    TensorFormat::new(vec![
        FormatLevel::simple(RankFormat::Uncompressed),
        FormatLevel::simple(RankFormat::CoordinatePayload {
            coord_bits: Some(bits),
        }),
    ])
}

/// Weight metadata format with RLE runs instead of CP offsets — fewer
/// bits for mid ratios like 2:6 (§7.1.4, STC-flexible-rle).
fn weight_format_rle(m_block: u64) -> TensorFormat {
    // run between nonzeros within a block never exceeds m-2 for 2:m
    let span = (m_block - 1).max(1);
    let bits = (64 - span.leading_zeros()).max(1);
    TensorFormat::new(vec![
        FormatLevel::simple(RankFormat::Uncompressed),
        FormatLevel::simple(RankFormat::RunLength {
            run_bits: Some(bits.saturating_sub(1).max(1)),
        }),
    ])
}

fn base_safs(e: &Einsum, weight_fmt: TensorFormat) -> SafSpec {
    let (a, _b, _z) = matmul_ids(e);
    SafSpec::dense()
        .with_format(1, a, weight_fmt.clone())
        .with_format(2, a, weight_fmt)
        // structured weight skipping: only nonzero weights are processed
        .with_skip(2, a, vec![a])
        .with_skip_compute()
}

/// The production STC: 2:4 structured weights only.
pub fn stc(e: &Einsum) -> DesignPoint {
    DesignPoint {
        name: "STC".into(),
        arch: arch("stc"),
        safs: base_safs(e, weight_format_cp(4)),
    }
}

/// Naive ratio extension: 2:m selection logic, same CP metadata, same
/// bandwidth (§7.1.2).
pub fn stc_flexible(e: &Einsum, m_block: u64) -> DesignPoint {
    DesignPoint {
        name: format!("STC-flexible(2:{m_block})"),
        arch: arch("stc-flexible"),
        safs: base_safs(e, weight_format_cp(m_block)),
    }
}

/// STC-flexible with RLE weight metadata (§7.1.4, step 1).
pub fn stc_flexible_rle(e: &Einsum, m_block: u64) -> DesignPoint {
    DesignPoint {
        name: format!("STC-flexible-rle(2:{m_block})"),
        arch: arch("stc-flexible-rle"),
        safs: base_safs(e, weight_format_rle(m_block)),
    }
}

/// STC-flexible-rle plus bitmask compression of the inputs — no input
/// skipping (compute stays synced); all gains come from bandwidth
/// reduction (§7.1.4, step 2).
pub fn stc_flexible_rle_dual(e: &Einsum, m_block: u64) -> DesignPoint {
    let (_a, b, _z) = matmul_ids(e);
    let b_fmt = TensorFormat::from_ranks(&[RankFormat::Uncompressed, RankFormat::Bitmask]);
    let mut dp = stc_flexible_rle(e, m_block);
    dp.name = format!("STC-flexible-rle-dualCompress(2:{m_block})");
    dp.safs = dp
        .safs
        .with_format(1, b, b_fmt.clone())
        .with_format(2, b, b_fmt);
    dp
}

/// Canonical STC mapping: weight-block tiles resident in RF, inputs
/// streamed through SMEM.
pub fn mapping(e: &Einsum) -> Mapping {
    matmul_mapping_3level(e, 16, 8, 16, 16, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_density::DensityModelSpec;
    use sparseloop_tensor::einsum::Einsum;
    use sparseloop_workloads::Layer;

    /// A matmul layer with 2:m structured weights and input density `id`.
    fn structured_layer(m_block: u64, id: f64) -> Layer {
        let e = Einsum::matmul(32, 32, 48).with_name("stc-layer");
        let input = if id >= 1.0 {
            DensityModelSpec::Dense
        } else {
            DensityModelSpec::Uniform { density: id }
        };
        Layer {
            name: "stc-layer".into(),
            einsum: e,
            densities: vec![
                DensityModelSpec::FixedStructured {
                    n: 2,
                    m: m_block,
                    axis: 1,
                },
                input,
                DensityModelSpec::Dense,
            ],
        }
    }

    fn dense_layer() -> Layer {
        let e = Einsum::matmul(32, 32, 48).with_name("dense-layer");
        Layer {
            name: "dense-layer".into(),
            einsum: e,
            densities: vec![
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        }
    }

    #[test]
    fn stc_achieves_exact_2x_on_24() {
        // §6.3.5: deterministic 2:4 behavior -> exactly 2x compute-cycle
        // speedup over dense processing.
        let l24 = structured_layer(4, 1.0);
        let ld = dense_layer();
        let dp = stc(&l24.einsum);
        let m = mapping(&l24.einsum);
        let sparse = dp.evaluate(&l24, &m).unwrap();
        let dense = dp.evaluate(&ld, &m).unwrap();
        let speedup = dense.uarch.compute_cycles / sparse.uarch.compute_cycles;
        assert!((speedup - 2.0).abs() < 1e-9, "speedup {speedup}");
    }

    #[test]
    fn flexible_ratio_is_bandwidth_bound() {
        // §7.1.3: 2:8 should theoretically run 4x faster, but SMEM
        // bandwidth (provisioned for 2:4) caps the gain well short.
        let l = structured_layer(8, 1.0);
        let dp = stc_flexible(&l.einsum, 8);
        let m = mapping(&l.einsum);
        let e = dp.evaluate(&l, &m).unwrap();
        let d = dp.evaluate(&dense_layer(), &m).unwrap();
        let speedup = d.cycles / e.cycles;
        assert!(
            speedup < 3.0,
            "bandwidth should cap 2:8 speedup below the 4x ideal, got {speedup}"
        );
        // but compute itself would have been 4x faster
        let compute_speedup = d.uarch.compute_cycles / e.uarch.compute_cycles;
        assert!((compute_speedup - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dual_compress_recovers_speed() {
        // §7.1.4: compressing the inputs relieves SMEM bandwidth even
        // without input skipping.
        let l = structured_layer(8, 0.4);
        let m = mapping(&l.einsum);
        let naive = stc_flexible(&l.einsum, 8).evaluate(&l, &m).unwrap();
        let dual = stc_flexible_rle_dual(&l.einsum, 8)
            .evaluate(&l, &m)
            .unwrap();
        assert!(
            dual.cycles < naive.cycles,
            "dual compress should speed up: {} vs {}",
            dual.cycles,
            naive.cycles
        );
    }

    #[test]
    fn rle_metadata_not_worse_than_cp_for_26() {
        let l = structured_layer(6, 1.0);
        let m = mapping(&l.einsum);
        let cp = stc_flexible(&l.einsum, 6).evaluate(&l, &m).unwrap();
        let rle = stc_flexible_rle(&l.einsum, 6).evaluate(&l, &m).unwrap();
        assert!(rle.cycles <= cp.cycles * 1.001);
    }
}
