//! The two motivating designs of Fig. 1: identical dataflow, different
//! representation-format + gating/skipping choices.
//!
//! * **Bitmask (Eyeriss-like):** operands in B-B bitmask format; each
//!   metadata bit gates the storage/compute pipeline — energy saved,
//!   cycles unchanged.
//! * **Coordinate list (SCNN-like):** operands in CP coordinate-list
//!   format; the coordinates point straight at the next effectual
//!   operation — energy *and* cycles saved, at a higher metadata cost
//!   per nonzero.

use crate::common::{matmul_ids, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::{RankFormat, TensorFormat};
use sparseloop_tensor::einsum::Einsum;

/// Shared two-level architecture: DRAM over a banked buffer feeding a
/// 16-MAC array.
fn arch(name: &str) -> Architecture {
    ArchitectureBuilder::new(name)
        .level(
            StorageLevel::new("BackingStorage")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(8.0),
        )
        .level(
            StorageLevel::new("Buffer")
                // sized so the fully-dense 64^3 sweep point fits even in
                // CP format (per-nonzero coordinates roughly double the
                // footprint at density 1.0; 8K words overflowed there).
                // Note the energy table scales access cost with
                // sqrt(capacity), so this raises *both* designs' buffer
                // energy uniformly; the figure's claims are relative and
                // the crossover shape is locked by tests.
                .with_capacity(12 * 1024)
                .with_bandwidth(64.0),
        )
        .compute(ComputeSpec::new("MAC", 16))
        .build()
        .expect("static architecture is valid")
}

/// The bitmask design: B-B format + gating everywhere.
pub fn bitmask_design(e: &Einsum) -> DesignPoint {
    let (a, b, _z) = matmul_ids(e);
    let fmt = TensorFormat::from_ranks(&[RankFormat::Bitmask, RankFormat::Bitmask]);
    let safs = SafSpec::dense()
        .with_format(0, a, fmt.clone())
        .with_format(0, b, fmt.clone())
        .with_format(1, a, fmt.clone())
        .with_format(1, b, fmt)
        // bitmask pipeline stays synchronized to dense order: zeros gate
        .with_gate(1, a, vec![a])
        .with_gate(1, b, vec![b])
        .with_gate_compute();
    DesignPoint {
        name: "Bitmask".into(),
        arch: arch("fig1-bitmask"),
        safs,
    }
}

/// The coordinate-list design: CP format + skipping everywhere.
pub fn coordinate_list_design(e: &Einsum) -> DesignPoint {
    let (a, b, _z) = matmul_ids(e);
    let fmt = TensorFormat::coo(2);
    let safs = SafSpec::dense()
        .with_format(0, a, fmt.clone())
        .with_format(0, b, fmt.clone())
        .with_format(1, a, fmt.clone())
        .with_format(1, b, fmt)
        // coordinates point at the next effectual op: zeros skip
        .with_skip(1, a, vec![a])
        .with_skip(1, b, vec![b])
        .with_skip_compute();
    DesignPoint {
        name: "CoordinateList".into(),
        arch: arch("fig1-coordlist"),
        safs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::matmul_mapping_2level;
    use sparseloop_workloads::spmspm;

    fn eval(dp: &DesignPoint, density: f64) -> sparseloop_core::Evaluation {
        let l = spmspm(32, 32, 32, density, density);
        let m = matmul_mapping_2level(&l.einsum, 16, 4);
        dp.evaluate(&l, &m).expect("fig1 mapping valid")
    }

    #[test]
    fn coordinate_list_faster_at_low_density() {
        let l = spmspm(32, 32, 32, 0.1, 0.1);
        let bm = eval(&bitmask_design(&l.einsum), 0.1);
        let cl = eval(&coordinate_list_design(&l.einsum), 0.1);
        assert!(
            cl.cycles < bm.cycles * 0.5,
            "CP should be much faster at 10% density: {} vs {}",
            cl.cycles,
            bm.cycles
        );
    }

    #[test]
    fn bitmask_never_speeds_up() {
        // gating saves energy but not time: cycles match dense cycles
        let l = spmspm(32, 32, 32, 1.0, 1.0);
        let dense_cycles = eval(&bitmask_design(&l.einsum), 1.0).cycles;
        let sparse_cycles = eval(&bitmask_design(&l.einsum), 0.1).cycles;
        assert!((sparse_cycles - dense_cycles).abs() / dense_cycles < 0.05);
    }

    #[test]
    fn bitmask_saves_energy_when_sparse() {
        let l = spmspm(32, 32, 32, 1.0, 1.0);
        let dense_e = eval(&bitmask_design(&l.einsum), 1.0).energy_pj;
        let sparse_e = eval(&bitmask_design(&l.einsum), 0.1).energy_pj;
        assert!(sparse_e < dense_e * 0.6);
    }

    #[test]
    fn coordinate_list_metadata_hurts_when_dense() {
        // at full density CP's per-nonzero coordinates cost more energy
        // than B's fixed-size bitmask
        let l = spmspm(32, 32, 32, 1.0, 1.0);
        let bm = eval(&bitmask_design(&l.einsum), 0.9);
        let cl = eval(&coordinate_list_design(&l.einsum), 0.9);
        assert!(cl.energy_pj > bm.energy_pj);
    }
}
