//! Shared plumbing for design definitions.

use sparseloop_arch::Architecture;
use sparseloop_core::{Model, SafSpec, Workload};
use sparseloop_mapping::{Mapper, Mapping, Mapspace};
use sparseloop_tensor::einsum::{DimId, Einsum, TensorId};
use sparseloop_workloads::Layer;

/// The default search strategy of [`DesignPoint::search`] and the
/// scenario registry's search experiments: a hybrid that enumerates a
/// deterministic prefix and tops it up with deduplicated random samples.
pub const DEFAULT_MAPPER: Mapper = Mapper::Hybrid {
    enumerate: 256,
    samples: 128,
    seed: 0xD0E5,
    // uniform draws keep every registered scenario's recorded results
    // stable; opt into SampleStrategy::Halton for better coverage per
    // sample on new experiments
    sampling: sparseloop_mapping::SampleStrategy::Uniform,
};

/// A fully-bound design point: architecture + SAFs for a specific
/// workload, ready to evaluate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Design name (e.g. `"STC-flexible-rle"`).
    pub name: String,
    /// The architecture.
    pub arch: Architecture,
    /// SAFs bound to the workload's tensor ids.
    pub safs: SafSpec,
}

impl DesignPoint {
    /// Builds the Sparseloop model for a workload layer.
    pub fn model(&self, layer: &Layer) -> Model {
        let workload = Workload::new(layer.einsum.clone(), layer.densities.clone());
        Model::new(workload, self.arch.clone(), self.safs.clone())
    }

    /// Evaluates the layer with a fixed mapping.
    pub fn evaluate(
        &self,
        layer: &Layer,
        mapping: &Mapping,
    ) -> Result<sparseloop_core::Evaluation, sparseloop_core::EvalError> {
        self.model(layer).evaluate(mapping)
    }

    /// Searches the default constrained mapspace for the best mapping by
    /// EDP. Returns `None` when nothing in the space is valid.
    pub fn search(
        &self,
        layer: &Layer,
        space: &Mapspace,
    ) -> Option<(Mapping, sparseloop_core::Evaluation)> {
        self.model(layer)
            .search(space, DEFAULT_MAPPER, sparseloop_core::Objective::Edp)
    }
}

/// Tensor ids `(A, B, Z)` of a matmul workload.
///
/// # Panics
/// Panics if the Einsum is not a matmul-shaped workload.
pub fn matmul_ids(e: &Einsum) -> (TensorId, TensorId, TensorId) {
    (
        e.tensor_id("A").expect("matmul A"),
        e.tensor_id("B").expect("matmul B"),
        e.tensor_id("Z").expect("matmul Z"),
    )
}

/// Tensor ids `(Weights, Inputs, Outputs)` of a conv workload.
///
/// # Panics
/// Panics if the Einsum is not a conv-shaped workload.
pub fn conv_ids(e: &Einsum) -> (TensorId, TensorId, TensorId) {
    (
        e.tensor_id("Weights").expect("conv Weights"),
        e.tensor_id("Inputs").expect("conv Inputs"),
        e.tensor_id("Outputs").expect("conv Outputs"),
    )
}

/// Largest divisor of `n` that is `<= cap`.
pub fn divisor_at_most(n: u64, cap: u64) -> u64 {
    (1..=cap.min(n))
        .rev()
        .find(|d| n.is_multiple_of(*d))
        .unwrap_or(1)
}

/// A canonical two-level matmul mapping (output-stationary inner loop):
///
/// ```text
/// [outer]  for m in 0..M/Tm
/// [inner]  parallel-for n in 0..S
///          for n0 in 0..N/S
///          for m0 in 0..Tm
///          for k  in 0..K
/// ```
///
/// `tm` controls how much of `m` stays inner (B reuse across `m0`).
pub fn matmul_mapping_2level(e: &Einsum, spatial_n: u64, tm: u64) -> Mapping {
    let (m, n, k) = (DimId(0), DimId(1), DimId(2));
    let (mb, nb, kb) = (e.bound(m), e.bound(n), e.bound(k));
    let s = divisor_at_most(nb, spatial_n);
    let tm = divisor_at_most(mb, tm);
    let mut b = sparseloop_mapping::MappingBuilder::new(2, e.tensors().len());
    if mb / tm > 1 {
        b = b.temporal(0, m, mb / tm);
    }
    if s > 1 {
        b = b.spatial(1, n, s);
    }
    if nb / s > 1 {
        b = b.temporal(1, n, nb / s);
    }
    if tm > 1 {
        b = b.temporal(1, m, tm);
    }
    b = b.temporal(1, k, kb);
    b.build()
}

/// A canonical three-level matmul mapping (DRAM / SMEM / RF):
///
/// ```text
/// [DRAM] for k1 (outer-product position when k_outer=true)
///        for m1
/// [SMEM] for n1
///        parallel-for n in 0..S
/// [RF]   for k0
///        for m0, n0
/// ```
pub fn matmul_mapping_3level(
    e: &Einsum,
    spatial: u64,
    tile_m: u64,
    tile_n: u64,
    tile_k: u64,
    k_outer: bool,
) -> Mapping {
    let (m, n, k) = (DimId(0), DimId(1), DimId(2));
    let (mb, nb, kb) = (e.bound(m), e.bound(n), e.bound(k));
    let tm = divisor_at_most(mb, tile_m);
    let tn = divisor_at_most(nb, tile_n);
    let tk = divisor_at_most(kb, tile_k);
    let s = divisor_at_most(tn, spatial);
    let mut b = sparseloop_mapping::MappingBuilder::new(3, e.tensors().len());
    if k_outer && kb / tk > 1 {
        b = b.temporal(0, k, kb / tk);
    }
    if mb / tm > 1 {
        b = b.temporal(0, m, mb / tm);
    }
    if nb / tn > 1 {
        b = b.temporal(0, n, nb / tn);
    }
    if !k_outer && kb / tk > 1 {
        b = b.temporal(1, k, kb / tk);
    }
    if s > 1 {
        b = b.spatial(1, n, s);
    }
    if tn / s > 1 {
        b = b.temporal(1, n, tn / s);
    }
    if tm > 1 {
        b = b.temporal(2, m, tm);
    }
    b = b.temporal(2, k, tk);
    b.build()
}

/// A constrained conv mapspace: output/channel dims tile at every level,
/// filter dims stay innermost, output channels may go spatial below the
/// given level.
pub fn conv_mapspace(e: &Einsum, arch: &Architecture, spatial_level: usize) -> Mapspace {
    let dims: Vec<DimId> = (0..e.dims().len()).map(DimId).collect();
    let mut space = Mapspace::all_temporal(e, arch);
    // output channels (m) and input channels (c) are the natural spatial
    // candidates in conv accelerators
    let spatial: Vec<DimId> = [e.dim_id("m"), e.dim_id("c")]
        .into_iter()
        .flatten()
        .collect();
    if !spatial.is_empty() {
        space = space.with_spatial_dims(spatial_level, spatial);
    }
    let _ = dims;
    space
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_workloads::spmspm;

    #[test]
    fn divisor_selection() {
        assert_eq!(divisor_at_most(16, 5), 4);
        assert_eq!(divisor_at_most(12, 6), 6);
        assert_eq!(divisor_at_most(7, 4), 1);
        assert_eq!(divisor_at_most(7, 7), 7);
    }

    #[test]
    fn two_level_mapping_valid() {
        let l = spmspm(16, 16, 16, 0.5, 0.5);
        let arch = crate::fig1::bitmask_design(&l.einsum).arch;
        let m = matmul_mapping_2level(&l.einsum, 16, 4);
        m.validate(&l.einsum, &arch).unwrap();
    }

    #[test]
    fn three_level_mapping_valid() {
        let l = spmspm(32, 32, 32, 0.5, 0.5);
        let dp = crate::dstc::design(&l.einsum);
        let m = matmul_mapping_3level(&l.einsum, 16, 8, 16, 8, true);
        m.validate(&l.einsum, &dp.arch).unwrap();
    }
}
