//! Eyeriss V2 processing element (Table 3, Fig. 12).
//!
//! The V2 PE consumes CSC-compressed (`B-UOP-CP`-style) inputs and
//! weights and *skips* cycles: `Skip W ← I` (weights fetched only for
//! nonzero input activations) and `Skip O ← I & W`, with leftover
//! ineffectual computes gated. The paper validates per-layer PE latency
//! on MobileNet against an actual-sparsity analytical baseline; the
//! statistical error comes from the independence approximation of the
//! `I ∩ W` intersection — reproduced here by construction.

use crate::common::{conv_ids, DesignPoint};
use sparseloop_arch::{
    Architecture, ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel,
};
use sparseloop_core::SafSpec;
use sparseloop_format::{RankFormat, TensorFormat};
use sparseloop_tensor::einsum::Einsum;

/// A single V2 PE: scratchpads over one MAC (the Fig. 12 validation
/// target); an unbounded backing level supplies the layer.
pub fn arch() -> Architecture {
    ArchitectureBuilder::new("eyeriss-v2-pe")
        .level(
            StorageLevel::new("Backing")
                .with_class(ComponentClass::Dram)
                .with_bandwidth(8.0),
        )
        .level(
            StorageLevel::new("SPad")
                .with_class(ComponentClass::RegFile)
                .with_capacity(512)
                .with_bandwidth(2.0),
        )
        .compute(ComputeSpec::new("MAC", 1))
        .build()
        .expect("static architecture is valid")
}

/// CSC-like two-rank compressed format (UOP row pointers + CP
/// coordinates).
fn csc() -> TensorFormat {
    TensorFormat::from_ranks(&[RankFormat::uop(), RankFormat::cp()])
}

/// The V2 PE's SAFs for a conv workload.
pub fn safs(e: &Einsum) -> SafSpec {
    let (w, i, o) = conv_ids(e);
    SafSpec::dense()
        .with_format(1, i, csc())
        .with_format(1, w, csc())
        // compressed operand streams skip their own zeros
        .with_skip(1, i, vec![i])
        // weights fetched only for nonzero inputs
        .with_skip(1, w, vec![i, w])
        // output accesses only for effectual computes
        .with_skip(1, o, vec![i, w])
        .with_gate_compute()
}

/// The Eyeriss V2 PE design point.
pub fn design(e: &Einsum) -> DesignPoint {
    DesignPoint {
        name: "EyerissV2-PE".into(),
        arch: arch(),
        safs: safs(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::conv_mapspace;
    use sparseloop_workloads::mobilenet_v1;

    #[test]
    fn evaluates_mobilenet_pointwise_layer() {
        let layer = mobilenet_v1().layers[2].scaled_to(500_000);
        let dp = design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 0);
        let (_, eval) = dp.search(&layer, &space).expect("valid mapping");
        assert!(eval.cycles > 0.0);
        // skipping means fewer compute cycles than dense
        assert!(eval.uarch.compute_cycles < eval.dense.computes);
    }

    #[test]
    fn latency_scales_with_joint_density() {
        // Doubly-sparse layers should finish in roughly d_I * d_W of the
        // dense cycles (the independence-approximation claim).
        let layer = mobilenet_v1().layers[2].scaled_to(200_000);
        let dp = design(&layer.einsum);
        let space = conv_mapspace(&layer.einsum, &dp.arch, 0);
        let (map, eval) = dp.search(&layer, &space).unwrap();
        let w_id = layer.einsum.tensor_id("Weights").unwrap();
        let i_id = layer.einsum.tensor_id("Inputs").unwrap();
        let model = dp.model(&layer);
        let d_joint = model.workload().tensor_density(w_id) * model.workload().tensor_density(i_id);
        let frac = eval.sparse.compute.ops.actual / eval.dense.computes;
        assert!(
            (frac - d_joint).abs() < 0.05,
            "actual compute fraction {frac} vs joint density {d_joint}"
        );
        let _ = map;
    }
}
