//! Property-based tests for the statistical density models.

use proptest::prelude::*;
use sparseloop_density::{
    ActualData, Banded, DensityModel, DensityModelExt, FixedStructured, Uniform,
};
use sparseloop_tensor::{point::Shape, SparseTensor};

fn check_distribution(model: &dyn DensityModel, tile: &[u64]) -> Result<(), TestCaseError> {
    let dist = model.occupancy_distribution(tile);
    let total: f64 = dist.iter().map(|&(_, p)| p).sum();
    prop_assert!(
        (total - 1.0).abs() < 1e-6,
        "distribution sums to 1, got {total}"
    );
    let stats = model.occupancy(tile);
    let mean: f64 = dist.iter().map(|&(k, p)| k as f64 * p).sum();
    prop_assert!(
        (mean - stats.expected).abs() < 1e-6 * stats.expected.max(1.0),
        "expectation consistent: {mean} vs {}",
        stats.expected
    );
    let p0 = dist
        .iter()
        .find(|&&(k, _)| k == 0)
        .map(|&(_, p)| p)
        .unwrap_or(0.0);
    prop_assert!(
        (p0 - stats.prob_empty).abs() < 1e-6,
        "prob_empty consistent: {p0} vs {}",
        stats.prob_empty
    );
    let max_seen = dist.iter().map(|&(k, _)| k).max().unwrap_or(0);
    prop_assert!(max_seen <= stats.max, "support within max");
    Ok(())
}

proptest! {
    #[test]
    fn uniform_invariants(
        rows in 1u64..32, cols in 1u64..32,
        dens_pct in 0u64..=100,
        tr in 1u64..6, tc in 1u64..6,
    ) {
        let m = Uniform::new(vec![rows, cols], dens_pct as f64 / 100.0);
        check_distribution(&m, &[tr, tc])?;
        // expected tile density equals tensor density
        let s = m.occupancy(&[tr.min(rows), tc.min(cols)]);
        let size = (tr.min(rows) * tc.min(cols)) as f64;
        prop_assert!((s.expected - size * m.density()).abs() < 1e-9);
    }

    #[test]
    fn uniform_prob_empty_monotone_in_tile_size(
        dens_pct in 1u64..=60,
        t1 in 1u64..5, extra in 1u64..5,
    ) {
        let m = Uniform::new(vec![16, 16], dens_pct as f64 / 100.0);
        let small = m.occupancy(&[1, t1]).prob_empty;
        let large = m.occupancy(&[1, t1 + extra]).prob_empty;
        prop_assert!(large <= small + 1e-12, "bigger tiles never emptier");
    }

    #[test]
    fn structured_invariants(
        rows in 1u64..8, blocks in 1u64..5,
        n in 0u64..=4,
        tr in 1u64..4, tc in 1u64..10,
    ) {
        let m_block = 4u64;
        let m = FixedStructured::new(vec![rows, blocks * m_block], n.min(m_block), m_block, 1);
        check_distribution(&m, &[tr, tc])?;
        // any tile covering a whole block is non-empty when n > 0
        if n > 0 {
            prop_assert_eq!(m.occupancy(&[1, m_block]).prob_empty, 0.0);
        }
    }

    #[test]
    fn banded_invariants(
        size in 2u64..20, hw in 0u64..5, fill_pct in 0u64..=100,
        tr in 1u64..5, tc in 1u64..5,
    ) {
        let m = Banded::new(size, size, hw, fill_pct as f64 / 100.0);
        check_distribution(&m, &[tr, tc])?;
        prop_assert!(m.density() <= 1.0 + 1e-12);
        // widening the band can only increase density
        let wider = Banded::new(size, size, hw + 1, fill_pct as f64 / 100.0);
        prop_assert!(wider.density() >= m.density() - 1e-12);
    }

    #[test]
    fn actual_data_matches_ground_truth(
        rows in 1u64..16, cols in 1u64..16,
        dens_pct in 0u64..=100,
        tr in 1u64..5, tc in 1u64..5,
        seed in any::<u64>(),
    ) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let shape = Shape::new(vec![rows, cols]);
        let t = SparseTensor::gen_uniform(shape, dens_pct as f64 / 100.0, &mut rng);
        let m = ActualData::new(t.clone());
        check_distribution(&m, &[tr, tc])?;
        let s = m.occupancy(&[tr, tc]);
        prop_assert!((s.prob_empty - t.tile_empty_fraction(&[tr.min(rows), tc.min(cols)])).abs() < 1e-9);
    }

    #[test]
    fn uniform_and_actual_agree_in_expectation(
        rows in 4u64..24, cols in 4u64..24,
        dens_pct in 0u64..=100,
        seed in any::<u64>(),
    ) {
        // actual uniform data has EXACT nnz, so expected occupancy of the
        // whole tensor matches the model exactly
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let d = dens_pct as f64 / 100.0;
        let t = SparseTensor::gen_uniform(Shape::new(vec![rows, cols]), d, &mut rng);
        let act = ActualData::new(t.clone());
        let uni = Uniform::new(vec![rows, cols], d);
        let sa = act.occupancy(&[rows, cols]);
        let su = uni.occupancy(&[rows, cols]);
        prop_assert!((sa.expected - su.expected).abs() < 1.0);
    }

    #[test]
    fn expected_tile_density_bounded(
        rows in 1u64..16, cols in 1u64..16,
        dens_pct in 0u64..=100,
        tr in 1u64..6, tc in 1u64..6,
    ) {
        let m = Uniform::new(vec![rows, cols], dens_pct as f64 / 100.0);
        let d = m.expected_tile_density(&[tr, tc]);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
    }
}
