//! The [`DensityModel`] trait and serde-facing model specification.

use crate::key::DensityKey;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;
use std::sync::Arc;

/// Summary statistics of a tile's occupancy under a density model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyStats {
    /// Expected number of nonzeros in the tile.
    pub expected: f64,
    /// Probability that the tile contains no nonzeros at all.
    pub prob_empty: f64,
    /// Largest occupancy the model considers possible (worst case, used
    /// for conservative capacity checks).
    pub max: u64,
}

impl OccupancyStats {
    /// Expected occupancy *conditioned on the tile being non-empty*.
    /// Returns 0 when the tile is almost surely empty.
    pub fn expected_if_nonempty(&self) -> f64 {
        let p_nonempty = 1.0 - self.prob_empty;
        if p_nonempty <= f64::EPSILON {
            0.0
        } else {
            self.expected / p_nonempty
        }
    }
}

/// A statistical characterization of where a tensor's nonzeros fall.
///
/// Implementations answer occupancy questions for *tiles*: contiguous
/// coordinate-space sub-regions whose shape (per tensor rank) the caller
/// provides. Coordinate-independent models (uniform, structured) ignore
/// tile position; coordinate-dependent models (banded, actual-data)
/// aggregate over all tile positions in the tensor.
pub trait DensityModel: Debug + Send + Sync {
    /// Human-readable model name (e.g. `"uniform"`).
    fn name(&self) -> &str;

    /// The tensor's overall density in `[0, 1]`.
    fn density(&self) -> f64;

    /// The full tensor shape this model describes.
    fn tensor_shape(&self) -> &[u64];

    /// Occupancy summary statistics for a tile of the given per-rank
    /// shape.
    ///
    /// # Panics
    /// Implementations may panic if `tile_shape` has the wrong rank count
    /// or exceeds the tensor bounds.
    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats;

    /// Full occupancy distribution for a tile of the given shape, as
    /// sorted `(occupancy, probability)` pairs summing to ~1.
    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)>;

    /// Shared-ownership variant of
    /// [`occupancy_distribution`](DensityModel::occupancy_distribution).
    ///
    /// The default wraps a fresh computation; caching decorators
    /// ([`Memoized`](crate::Memoized)) override it so warm hits hand
    /// back the cached `Arc` instead of cloning the distribution `Vec`.
    /// Callers that query distributions repeatedly for the same shapes
    /// (or hold one for bucketing/statistics, like the Fig. 9 binary)
    /// should prefer this accessor.
    fn occupancy_distribution_arc(&self, tile_shape: &[u64]) -> Arc<Vec<(u64, f64)>> {
        Arc::new(self.occupancy_distribution(tile_shape))
    }

    /// A stable identity for cross-model result sharing, or `None` when
    /// results must stay private to this instance.
    ///
    /// Two models returning the same key MUST answer every occupancy
    /// query identically — the key therefore encodes the model kind, its
    /// parameters *and* the tensor shape. Statistical models (uniform,
    /// structured, banded) are pure functions of those and return keys;
    /// data-backed models ([`ActualData`](crate::ActualData)) return
    /// `None`. The batch evaluation session uses the key to intern one
    /// memoized model (and one format-analysis cache slot) per distinct
    /// statistic, sharing aggregates across workload layers.
    ///
    /// Keys are built per session `model()` call, so they are
    /// [`DensityKey`]s — pre-hashed packed words rather than formatted
    /// strings — keeping the session's intern probes off the allocator
    /// and away from long-string rehashing (the hot spot at large batch
    /// counts).
    fn cache_key(&self) -> Option<DensityKey> {
        None
    }
}

/// Convenience helpers derived from the required methods.
pub trait DensityModelExt: DensityModel {
    /// Probability that a tile of the given shape holds at least one
    /// nonzero.
    fn prob_nonempty(&self, tile_shape: &[u64]) -> f64 {
        1.0 - self.occupancy(tile_shape).prob_empty
    }

    /// Expected tile density (expected occupancy / dense tile size).
    fn expected_tile_density(&self, tile_shape: &[u64]) -> f64 {
        let size: u64 = tile_shape.iter().product();
        if size == 0 {
            0.0
        } else {
            self.occupancy(tile_shape).expected / size as f64
        }
    }
}

impl<T: DensityModel + ?Sized> DensityModelExt for T {}

/// Serializable specification of a density model, instantiated against a
/// concrete tensor shape. This mirrors the YAML workload inputs in the
/// paper's Fig. 6 (`density: 0.25, distribution: uniform`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "distribution", rename_all = "snake_case")]
pub enum DensityModelSpec {
    /// Fully dense tensor (density 1.0); modeled as uniform.
    Dense,
    /// Uniformly random nonzero placement with the given density.
    Uniform {
        /// Fraction of nonzero coordinates.
        density: f64,
    },
    /// n:m structured sparsity along one rank.
    FixedStructured {
        /// Nonzeros per block.
        n: u64,
        /// Block length.
        m: u64,
        /// Tensor rank the blocks run along.
        axis: usize,
    },
    /// Diagonal band with optional in-band fill density (matrices only).
    Banded {
        /// Band half-width: `(i, j)` in band iff `|i − j| ≤ half_width`.
        half_width: u64,
        /// Probability an in-band element is nonzero.
        fill: f64,
    },
}

impl DensityModelSpec {
    /// Instantiates the model for a tensor of the given shape.
    ///
    /// # Panics
    /// Panics on invalid parameters (e.g. banded on a non-matrix, density
    /// outside `[0, 1]`).
    pub fn instantiate(&self, tensor_shape: &[u64]) -> Arc<dyn DensityModel> {
        match *self {
            DensityModelSpec::Dense => {
                Arc::new(crate::uniform::Uniform::new(tensor_shape.to_vec(), 1.0))
            }
            DensityModelSpec::Uniform { density } => {
                Arc::new(crate::uniform::Uniform::new(tensor_shape.to_vec(), density))
            }
            DensityModelSpec::FixedStructured { n, m, axis } => Arc::new(
                crate::structured::FixedStructured::new(tensor_shape.to_vec(), n, m, axis),
            ),
            DensityModelSpec::Banded { half_width, fill } => {
                assert_eq!(tensor_shape.len(), 2, "banded model requires a matrix");
                Arc::new(crate::banded::Banded::new(
                    tensor_shape[0],
                    tensor_shape[1],
                    half_width,
                    fill,
                ))
            }
        }
    }

    /// The overall density this spec implies for the given shape.
    pub fn nominal_density(&self, tensor_shape: &[u64]) -> f64 {
        self.instantiate(tensor_shape).density()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_instantiation_names() {
        let shape = vec![16, 16];
        assert_eq!(
            DensityModelSpec::Uniform { density: 0.5 }
                .instantiate(&shape)
                .name(),
            "uniform"
        );
        assert_eq!(
            DensityModelSpec::FixedStructured {
                n: 2,
                m: 4,
                axis: 1
            }
            .instantiate(&shape)
            .name(),
            "fixed_structured"
        );
        assert_eq!(
            DensityModelSpec::Banded {
                half_width: 1,
                fill: 1.0
            }
            .instantiate(&shape)
            .name(),
            "banded"
        );
        assert_eq!(
            DensityModelSpec::Dense.instantiate(&shape).name(),
            "uniform"
        );
    }

    #[test]
    fn dense_spec_has_unit_density() {
        assert_eq!(DensityModelSpec::Dense.nominal_density(&[8, 8]), 1.0);
    }

    #[test]
    fn expected_if_nonempty_bounds() {
        let s = OccupancyStats {
            expected: 0.5,
            prob_empty: 0.5,
            max: 4,
        };
        assert!((s.expected_if_nonempty() - 1.0).abs() < 1e-12);
        let sure_empty = OccupancyStats {
            expected: 0.0,
            prob_empty: 1.0,
            max: 0,
        };
        assert_eq!(sure_empty.expected_if_nonempty(), 0.0);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = DensityModelSpec::FixedStructured {
            n: 2,
            m: 4,
            axis: 0,
        };
        let txt = format!("{spec:?}");
        assert!(txt.contains("FixedStructured"));
    }
}
