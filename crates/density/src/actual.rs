//! Actual-data density model.
//!
//! Wraps a concrete [`SparseTensor`] and answers occupancy questions
//! *exactly* by slicing the data into tiles — the paper's highest-fidelity
//! (and slowest) model, used e.g. to drive the Eyeriss V2 validation to
//! ~0% error (§6.3.2) at the cost of modeling speed. Tile histograms are
//! memoized per tile shape because the SAF analyzers query the same shapes
//! repeatedly.

use crate::model::{DensityModel, OccupancyStats};
use sparseloop_tensor::SparseTensor;
use std::collections::HashMap;
use std::sync::Mutex;

/// Exact density model backed by real tensor data.
///
/// # Example
/// ```
/// use sparseloop_density::{ActualData, DensityModel};
/// use sparseloop_tensor::{SparseTensor, point::Shape};
///
/// let t = SparseTensor::from_triplets(
///     Shape::new(vec![4, 4]),
///     &[(vec![0, 0], 1.0), (vec![1, 1], 1.0)],
/// );
/// let m = ActualData::new(t);
/// // Exactly one of the four 2x2 tiles is non-empty.
/// assert!((m.occupancy(&[2, 2]).prob_empty - 0.75).abs() < 1e-12);
/// ```
/// Cached per-shape histograms: tile shape -> (occupancy, tile count).
type HistogramCache = Mutex<HashMap<Vec<u64>, Vec<(u64, u64)>>>;

#[derive(Debug)]
pub struct ActualData {
    tensor: SparseTensor,
    cache: HistogramCache,
}

impl ActualData {
    /// Wraps a concrete tensor.
    pub fn new(tensor: SparseTensor) -> Self {
        ActualData {
            tensor,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Access to the underlying tensor (used by the reference simulator).
    pub fn tensor(&self) -> &SparseTensor {
        &self.tensor
    }

    fn histogram(&self, tile_shape: &[u64]) -> Vec<(u64, u64)> {
        let clamped: Vec<u64> = tile_shape
            .iter()
            .zip(self.tensor.shape().extents())
            .map(|(&t, &e)| t.max(1).min(e))
            .collect();
        let mut cache = self.cache.lock().expect("density cache poisoned");
        cache
            .entry(clamped.clone())
            .or_insert_with(|| self.tensor.tile_occupancy_histogram(&clamped))
            .clone()
    }
}

impl DensityModel for ActualData {
    fn name(&self) -> &str {
        "actual_data"
    }

    fn density(&self) -> f64 {
        self.tensor.density()
    }

    fn tensor_shape(&self) -> &[u64] {
        self.tensor.shape().extents()
    }

    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
        let hist = self.histogram(tile_shape);
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        let expected = hist
            .iter()
            .map(|&(occ, c)| occ as f64 * c as f64)
            .sum::<f64>()
            / total as f64;
        let empty = hist
            .iter()
            .find(|&&(occ, _)| occ == 0)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        let max = hist.iter().map(|&(occ, _)| occ).max().unwrap_or(0);
        OccupancyStats {
            expected,
            prob_empty: empty as f64 / total as f64,
            max,
        }
    }

    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
        let hist = self.histogram(tile_shape);
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        hist.into_iter()
            .map(|(occ, c)| (occ, c as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparseloop_tensor::point::Shape;

    #[test]
    fn exact_statistics() {
        let t = SparseTensor::from_triplets(
            Shape::new(vec![4, 4]),
            &[(vec![0, 0], 1.0), (vec![0, 1], 1.0), (vec![2, 2], 1.0)],
        );
        let m = ActualData::new(t);
        let s = m.occupancy(&[2, 2]);
        // tiles: TL has 2, BR has 1, TR and BL empty
        assert!((s.expected - 0.75).abs() < 1e-12);
        assert!((s.prob_empty - 0.5).abs() < 1e-12);
        assert_eq!(s.max, 2);
    }

    #[test]
    fn distribution_matches_histogram() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = SparseTensor::gen_uniform(Shape::new(vec![16, 16]), 0.3, &mut rng);
        let m = ActualData::new(t.clone());
        let d = m.occupancy_distribution(&[4, 4]);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let e: f64 = d.iter().map(|&(k, p)| k as f64 * p).sum();
        // mean occupancy * #tiles == nnz
        assert!((e * 16.0 - t.nnz() as f64).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_uniform_in_expectation() {
        // Actual uniform data should statistically match the uniform model.
        let mut rng = StdRng::seed_from_u64(1);
        let t = SparseTensor::gen_uniform(Shape::new(vec![64, 64]), 0.25, &mut rng);
        let actual = ActualData::new(t);
        let model = crate::uniform::Uniform::new(vec![64, 64], 0.25);
        let sa = actual.occupancy(&[8, 8]);
        let sm = model.occupancy(&[8, 8]);
        assert!((sa.expected - sm.expected).abs() < 1e-9); // both are exact in expectation
    }

    #[test]
    fn cache_is_transparent() {
        let t = SparseTensor::from_triplets(Shape::new(vec![8, 8]), &[(vec![0, 0], 1.0)]);
        let m = ActualData::new(t);
        let a = m.occupancy(&[2, 2]);
        let b = m.occupancy(&[2, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_tile_clamps() {
        let t = SparseTensor::from_triplets(Shape::new(vec![4, 4]), &[(vec![3, 3], 2.0)]);
        let m = ActualData::new(t);
        let s = m.occupancy(&[100, 100]);
        assert_eq!(s.max, 1);
        assert_eq!(s.prob_empty, 0.0);
    }
}
