//! Banded (coordinate-dependent) density model.
//!
//! Models matrices whose nonzeros concentrate on a diagonal band —
//! SuiteSparse-style scientific matrices (Table 4). Element `(i, j)` may
//! be nonzero only if `|i − j| ≤ half_width`, and is nonzero with
//! probability `fill` inside the band. A tile's occupancy therefore
//! depends on *where* the tile sits, so this model aggregates statistics
//! over all tile positions — the defining property of a
//! coordinate-dependent model in the paper's taxonomy.

use crate::key::DensityKey;
use crate::math::binomial_pmf;
use crate::model::{DensityModel, OccupancyStats};
use std::collections::BTreeMap;

/// Above this many in-band cells per tile the binomial occupancy
/// distribution is collapsed to a point mass at its mean (the
/// distribution is already extremely concentrated).
const BINOMIAL_SUPPORT_CAP: u64 = 256;

/// Diagonal-band density model for matrices.
///
/// # Example
/// ```
/// use sparseloop_density::{Banded, DensityModel};
/// let m = Banded::new(16, 16, 1, 1.0); // tridiagonal, fully filled
/// // off-diagonal corner tiles are certainly empty, diagonal ones are not
/// let stats = m.occupancy(&[4, 4]);
/// assert!(stats.prob_empty > 0.0 && stats.prob_empty < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Banded {
    shape: Vec<u64>,
    half_width: u64,
    fill: f64,
}

impl Banded {
    /// Creates a banded model over a `rows × cols` matrix.
    ///
    /// # Panics
    /// Panics if `fill` is outside `[0, 1]`.
    pub fn new(rows: u64, cols: u64, half_width: u64, fill: f64) -> Self {
        assert!((0.0..=1.0).contains(&fill), "fill must be in [0,1]");
        assert!(rows > 0 && cols > 0, "matrix extents must be positive");
        Banded {
            shape: vec![rows, cols],
            half_width,
            fill,
        }
    }

    /// Number of in-band cells in the whole matrix.
    fn band_cells(&self) -> u64 {
        let (rows, cols) = (self.shape[0], self.shape[1]);
        (0..rows)
            .map(|i| {
                let lo = i.saturating_sub(self.half_width);
                let hi = (i + self.half_width + 1).min(cols);
                hi.saturating_sub(lo)
            })
            .sum()
    }

    /// In-band cell count for the tile whose rows span `[r0, r0+tr)` and
    /// columns span `[c0, c0+tc)` (clamped to the matrix).
    fn tile_band_cells(&self, r0: u64, tr: u64, c0: u64, tc: u64) -> u64 {
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let r_hi = (r0 + tr).min(rows);
        let c_hi = (c0 + tc).min(cols);
        (r0..r_hi)
            .map(|i| {
                let lo = i.saturating_sub(self.half_width).max(c0);
                let hi = (i + self.half_width + 1).min(c_hi);
                hi.saturating_sub(lo)
            })
            .sum()
    }

    /// Histogram of in-band cell counts over all tile positions:
    /// `(band_cells, tile_count)`.
    fn band_histogram(&self, tile_shape: &[u64]) -> Vec<(u64, u64)> {
        assert_eq!(tile_shape.len(), 2, "banded model requires 2D tiles");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let (tr, tc) = (
            tile_shape[0].max(1).min(rows),
            tile_shape[1].max(1).min(cols),
        );
        let grid_r = rows.div_ceil(tr);
        let grid_c = cols.div_ceil(tc);
        let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
        for bi in 0..grid_r {
            for bj in 0..grid_c {
                let b = self.tile_band_cells(bi * tr, tr, bj * tc, tc);
                *hist.entry(b).or_insert(0) += 1;
            }
        }
        hist.into_iter().collect()
    }
}

impl DensityModel for Banded {
    fn name(&self) -> &str {
        "banded"
    }

    fn density(&self) -> f64 {
        self.band_cells() as f64 * self.fill / (self.shape[0] * self.shape[1]) as f64
    }

    fn tensor_shape(&self) -> &[u64] {
        &self.shape
    }

    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
        let hist = self.band_histogram(tile_shape);
        let total_tiles: u64 = hist.iter().map(|&(_, c)| c).sum();
        let mut expected = 0.0;
        let mut prob_empty = 0.0;
        let mut max = 0u64;
        for &(b, count) in &hist {
            let w = count as f64 / total_tiles as f64;
            expected += w * b as f64 * self.fill;
            let p_empty_tile = if b == 0 {
                1.0
            } else if self.fill >= 1.0 {
                0.0
            } else {
                (1.0 - self.fill).powf(b as f64)
            };
            prob_empty += w * p_empty_tile;
            max = max.max(b);
        }
        OccupancyStats {
            expected,
            prob_empty,
            max,
        }
    }

    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
        let hist = self.band_histogram(tile_shape);
        let total_tiles: u64 = hist.iter().map(|&(_, c)| c).sum();
        let mut out: BTreeMap<u64, f64> = BTreeMap::new();
        for &(b, count) in &hist {
            let w = count as f64 / total_tiles as f64;
            if b == 0 || self.fill >= 1.0 || b > BINOMIAL_SUPPORT_CAP {
                // deterministic occupancy (or support too large for an
                // explicit binomial): collapse to the rounded expectation
                *out.entry((b as f64 * self.fill).round() as u64)
                    .or_insert(0.0) += w;
            } else {
                for k in 0..=b {
                    let p = binomial_pmf(b, k, self.fill);
                    if p > 1e-15 {
                        *out.entry(k).or_insert(0.0) += w * p;
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    fn cache_key(&self) -> Option<DensityKey> {
        Some(DensityKey::new(
            "banded",
            self.shape
                .iter()
                .copied()
                .chain([self.half_width, self.fill.to_bits()]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_cells_tridiagonal() {
        // 4x4 tridiagonal: 4 + 2*3 = 10 cells
        let m = Banded::new(4, 4, 1, 1.0);
        assert_eq!(m.band_cells(), 10);
        assert!((m.density() - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn off_diagonal_tiles_empty() {
        let m = Banded::new(8, 8, 1, 1.0);
        // 4x4 tiles: the two off-diagonal tiles intersect the band only at
        // corners... check histogram sums.
        let hist = m.band_histogram(&[4, 4]);
        let tiles: u64 = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(tiles, 4);
        let cells: u64 = hist.iter().map(|&(b, c)| b * c).sum();
        assert_eq!(cells, m.band_cells());
    }

    #[test]
    fn full_fill_prob_empty_only_from_geometry() {
        let m = Banded::new(16, 16, 0, 1.0); // pure diagonal
                                             // 4x4 tiles: 4 diagonal tiles non-empty, 12 off-diagonal empty
        let s = m.occupancy(&[4, 4]);
        assert!((s.prob_empty - 12.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.max, 4);
    }

    #[test]
    fn distribution_sums_to_one() {
        let m = Banded::new(12, 12, 2, 0.7);
        for tile in [[1u64, 1], [3, 3], [4, 6], [12, 12]] {
            let d = m.occupancy_distribution(&tile);
            let total: f64 = d.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "tile {tile:?}");
        }
    }

    #[test]
    fn expectation_consistent() {
        let m = Banded::new(12, 12, 2, 0.6);
        let d = m.occupancy_distribution(&[3, 3]);
        let e: f64 = d.iter().map(|&(k, p)| k as f64 * p).sum();
        let s = m.occupancy(&[3, 3]);
        assert!((e - s.expected).abs() < 1e-9);
    }

    #[test]
    fn whole_matrix_tile() {
        let m = Banded::new(8, 8, 1, 1.0);
        let s = m.occupancy(&[8, 8]);
        assert_eq!(s.prob_empty, 0.0);
        assert!((s.expected - m.band_cells() as f64).abs() < 1e-9);
    }

    #[test]
    fn partial_fill_reduces_density() {
        let full = Banded::new(16, 16, 2, 1.0);
        let half = Banded::new(16, 16, 2, 0.5);
        assert!((half.density() - full.density() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rectangular_matrix_supported() {
        let m = Banded::new(4, 8, 1, 1.0);
        // row i covers cols [i-1, i+1] ∩ [0,8): rows 0..4 -> 2,3,3,3 = 11
        assert_eq!(m.band_cells(), 11);
    }
}
