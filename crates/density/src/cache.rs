//! The shared shape-keyed memoization primitive.
//!
//! Sparseloop's two hot caches — per-tile-shape density aggregates
//! ([`Memoized`](crate::Memoized)) and per-(level, tensor, tile-shape)
//! format footprint analyses in `sparseloop-core` — used to repeat the
//! same double-checked `RwLock` pattern with separate capacity knobs.
//! [`ShapeMemo`] is that pattern extracted once: a thread-safe,
//! bounded, two-level map from `(slot, tile shape)` to `Arc<V>`.
//!
//! * **Slots** partition the key space cheaply: a slot is whatever the
//!   caller needs results to be distinguished by — a query kind, a
//!   `(level, tensor)` pair, or a session-interned
//!   `(format, density-model)` identity. The two-level split also lets
//!   hit-path lookups borrow the shape as `&[u64]` (no per-query key
//!   allocation).
//! * **`Arc` results** make warm hits O(1) even for heavyweight values
//!   (occupancy distributions clone a `Vec` no more).
//! * **Double-checked locking**: hits take only the read lock; misses
//!   compute *outside* any lock (the expensive path must not serialize
//!   parallel-search workers) and then race benignly on insert.
//! * **Bounded**: once `cap` distinct shapes are recorded per slot,
//!   further shapes are computed without being stored — search working
//!   sets stay far below the cap in practice, and the bound keeps
//!   adversarial workloads from growing the maps without limit.
//! * **Counters**: `hits()` / `misses()` expose how many queries were
//!   served from the cache versus computed, so callers (the batch
//!   evaluation session in particular) can *prove* sharing happened.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// slot -> tile shape -> value; two levels so hit-path lookups borrow
/// the shape without allocating a composite key.
type SlotMap<V> = HashMap<u64, HashMap<Vec<u64>, Arc<V>>>;

/// A bounded, thread-safe memo from `(slot, tile shape)` to `Arc<V>`.
#[derive(Debug)]
pub struct ShapeMemo<V> {
    map: RwLock<SlotMap<V>>,
    /// Maximum distinct shapes retained per slot.
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss/entry counters of a [`ShapeMemo`] (or a cache built on one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Queries served from the cache.
    pub hits: u64,
    /// Queries that had to compute (the number of real analyses run).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl MemoStats {
    /// Total queries observed.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }
}

impl<V> ShapeMemo<V> {
    /// An empty memo retaining up to `cap` shapes per slot.
    pub fn new(cap: usize) -> Self {
        ShapeMemo {
            map: RwLock::new(HashMap::new()),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `(slot, shape)`, computing and
    /// (capacity permitting) storing it on a miss.
    ///
    /// `compute` runs outside every lock; when two workers miss the same
    /// key concurrently both compute, and the first insert wins — the
    /// duplicate work is bounded and lock-free, which beats serializing
    /// all workers behind one expensive analysis.
    pub fn get_or_compute(&self, slot: u64, shape: &[u64], compute: impl FnOnce() -> V) -> Arc<V> {
        {
            let map = self.map.read().expect("shape memo poisoned");
            if let Some(hit) = map.get(&slot).and_then(|by_shape| by_shape.get(shape)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        let mut map = self.map.write().expect("shape memo poisoned");
        let by_shape = map.entry(slot).or_default();
        if let Some(existing) = by_shape.get(shape) {
            // another worker inserted while we computed; keep theirs so
            // every caller observes one canonical Arc per key
            return Arc::clone(existing);
        }
        if by_shape.len() < self.cap {
            by_shape.insert(shape.to_vec(), Arc::clone(&value));
        }
        value
    }

    /// Total entries stored across all slots.
    pub fn entries(&self) -> usize {
        self.map
            .read()
            .expect("shape memo poisoned")
            .values()
            .map(|by_shape| by_shape.len())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hits_return_the_same_arc() {
        let memo: ShapeMemo<Vec<u64>> = ShapeMemo::new(16);
        let a = memo.get_or_compute(0, &[2, 2], || vec![1, 2, 3]);
        let b = memo.get_or_compute(0, &[2, 2], || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b), "warm hit shares the Arc");
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn slots_partition_the_key_space() {
        let memo: ShapeMemo<u64> = ShapeMemo::new(16);
        let a = memo.get_or_compute(0, &[4], || 1);
        let b = memo.get_or_compute(1, &[4], || 2);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(memo.entries(), 2);
    }

    #[test]
    fn capacity_bounds_each_slot() {
        let memo: ShapeMemo<u64> = ShapeMemo::new(4);
        for i in 0..10u64 {
            memo.get_or_compute(0, &[i], || i);
        }
        assert!(memo.entries() <= 4);
        // beyond-cap shapes still compute correctly (twice: never stored)
        assert_eq!(*memo.get_or_compute(0, &[9], || 99), 99);
    }

    #[test]
    fn compute_runs_once_per_key_when_sequential() {
        let calls = AtomicUsize::new(0);
        let memo: ShapeMemo<u64> = ShapeMemo::new(16);
        for _ in 0..10 {
            memo.get_or_compute(7, &[3, 3], || {
                calls.fetch_add(1, Ordering::SeqCst);
                42
            });
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(memo.stats().hits, 9);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let memo: Arc<ShapeMemo<u64>> = Arc::new(ShapeMemo::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let memo = Arc::clone(&memo);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let v = memo.get_or_compute(t % 2, &[i % 8], || (i % 8) * 10);
                        assert_eq!(*v, (i % 8) * 10);
                    }
                });
            }
        });
        assert_eq!(memo.entries(), 16); // 2 slots x 8 shapes
    }
}
