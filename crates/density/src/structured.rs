//! Fixed-structured (n:m) density model.
//!
//! Models structured pruning: along one rank, every aligned block of `m`
//! coordinates holds exactly `n` nonzeros at random positions within the
//! block. This fully determines tile occupancy for tiles that cover whole
//! blocks (the source of Sparseloop's 100%-accurate STC validation,
//! §6.3.5: "structured sparsity introduces deterministic behaviors"),
//! while sub-block tiles follow a within-block hypergeometric law.

use crate::key::DensityKey;
use crate::math::{convolve_power, hypergeometric_pmf, hypergeometric_prob_zero};
use crate::model::{DensityModel, OccupancyStats};

/// n:m structured sparsity along a chosen tensor rank.
///
/// # Example
/// ```
/// use sparseloop_density::{DensityModel, FixedStructured};
/// // 2:4 structured weights, blocks along rank 1.
/// let m = FixedStructured::new(vec![8, 16], 2, 4, 1);
/// assert!((m.density() - 0.5).abs() < 1e-12);
/// // A tile covering one whole block always holds exactly 2 nonzeros.
/// let d = m.occupancy_distribution(&[1, 4]);
/// assert_eq!(d, vec![(2, 1.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FixedStructured {
    shape: Vec<u64>,
    n: u64,
    m: u64,
    axis: usize,
}

impl FixedStructured {
    /// Creates an n:m structured model with blocks along `axis`.
    ///
    /// # Panics
    /// Panics if `n > m`, `m == 0`, `axis` is out of bounds, or the axis
    /// extent is not a multiple of `m`.
    pub fn new(shape: Vec<u64>, n: u64, m: u64, axis: usize) -> Self {
        assert!(m > 0 && n <= m, "need 0 <= n <= m with m > 0");
        assert!(axis < shape.len(), "axis out of bounds");
        assert_eq!(
            shape[axis] % m,
            0,
            "axis extent {} must be a multiple of m={m}",
            shape[axis]
        );
        FixedStructured { shape, n, m, axis }
    }

    /// The `(n, m)` structure parameters.
    pub fn structure(&self) -> (u64, u64) {
        (self.n, self.m)
    }

    /// Per-window occupancy distribution for a window of length `t` along
    /// the structured axis (assumed aligned within a block when `t < m`).
    fn window_distribution(&self, t: u64) -> Vec<(u64, f64)> {
        if self.n == 0 {
            return vec![(0, 1.0)];
        }
        if t.is_multiple_of(self.m) {
            // whole blocks: deterministic
            return vec![(t / self.m * self.n, 1.0)];
        }
        if t < self.m {
            // sub-block window: hypergeometric within the block
            let max = t.min(self.n);
            return (0..=max)
                .map(|k| (k, hypergeometric_pmf(self.m, self.n, t, k)))
                .filter(|&(_, p)| p > 0.0)
                .collect();
        }
        // f whole blocks plus a remainder segment
        let f = t / self.m;
        let r = t % self.m;
        let rem = (0..=r.min(self.n))
            .map(|k| (k, hypergeometric_pmf(self.m, self.n, r, k)))
            .filter(|&(_, p)| p > 0.0)
            .collect::<Vec<_>>();
        rem.into_iter().map(|(k, p)| (k + f * self.n, p)).collect()
    }

    fn window_counts(&self, tile_shape: &[u64]) -> (u64, u64) {
        assert_eq!(tile_shape.len(), self.shape.len(), "tile rank mismatch");
        let t_axis = tile_shape[self.axis].min(self.shape[self.axis]);
        let others: u64 = tile_shape
            .iter()
            .zip(&self.shape)
            .enumerate()
            .filter(|&(i, _)| i != self.axis)
            .map(|(_, (&t, &e))| t.min(e))
            .product();
        (t_axis, others)
    }
}

impl DensityModel for FixedStructured {
    fn name(&self) -> &str {
        "fixed_structured"
    }

    fn density(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    fn tensor_shape(&self) -> &[u64] {
        &self.shape
    }

    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
        let (t_axis, others) = self.window_counts(tile_shape);
        let expected = (t_axis * others) as f64 * self.density();
        if self.n == 0 {
            return OccupancyStats {
                expected: 0.0,
                prob_empty: 1.0,
                max: 0,
            };
        }
        let per_window_empty = if t_axis >= self.m {
            0.0 // any window covering a full block holds >= n nonzeros
        } else {
            hypergeometric_prob_zero(self.m, self.n, t_axis)
        };
        let prob_empty = if per_window_empty == 0.0 {
            0.0
        } else {
            per_window_empty.powi(others as i32)
        };
        let f = t_axis / self.m;
        let r = t_axis % self.m;
        let max_per_window = f * self.n + r.min(self.n);
        OccupancyStats {
            expected,
            prob_empty,
            max: max_per_window * others,
        }
    }

    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
        let (t_axis, others) = self.window_counts(tile_shape);
        let per_window = self.window_distribution(t_axis);
        if per_window.len() == 1 {
            // deterministic per window → deterministic overall
            return vec![(per_window[0].0 * others, 1.0)];
        }
        convolve_power(&per_window, others, 1e-12)
    }

    fn cache_key(&self) -> Option<DensityKey> {
        Some(DensityKey::new(
            "structured",
            self.shape
                .iter()
                .copied()
                .chain([self.n, self.m, self.axis as u64]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_n_over_m() {
        let m = FixedStructured::new(vec![4, 8], 2, 4, 1);
        assert!((m.density() - 0.5).abs() < 1e-12);
        let m = FixedStructured::new(vec![4, 8], 2, 8, 1);
        assert!((m.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn full_block_tiles_are_deterministic() {
        let m = FixedStructured::new(vec![4, 16], 2, 4, 1);
        let d = m.occupancy_distribution(&[2, 8]);
        // 2 rows x 2 blocks each = 4 blocks x 2 nonzeros
        assert_eq!(d, vec![(8, 1.0)]);
        assert_eq!(m.occupancy(&[2, 8]).prob_empty, 0.0);
    }

    #[test]
    fn sub_block_window_is_hypergeometric() {
        let m = FixedStructured::new(vec![1, 4], 2, 4, 1);
        // window of 2 inside a 2:4 block: P(0) = C(2,2)/C(4,2) = 1/6
        let s = m.occupancy(&[1, 2]);
        assert!((s.prob_empty - 1.0 / 6.0).abs() < 1e-9);
        assert!((s.expected - 1.0).abs() < 1e-12);
        let d = m.occupancy_distribution(&[1, 2]);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn element_tile_prob_empty_matches_density() {
        let m = FixedStructured::new(vec![8, 8], 2, 4, 1);
        let s = m.occupancy(&[1, 1]);
        assert!((s.prob_empty - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_window_never_all_empty_when_covering_block() {
        let m = FixedStructured::new(vec![8, 8], 1, 4, 1);
        let s = m.occupancy(&[1, 4]);
        assert_eq!(s.prob_empty, 0.0);
        assert_eq!(s.max, 1);
    }

    #[test]
    fn zero_n_always_empty() {
        let m = FixedStructured::new(vec![4, 4], 0, 4, 1);
        assert_eq!(m.occupancy(&[2, 2]).prob_empty, 1.0);
        assert_eq!(m.occupancy_distribution(&[2, 2]), vec![(0, 1.0)]);
    }

    #[test]
    fn partial_plus_full_blocks() {
        let m = FixedStructured::new(vec![1, 8], 2, 4, 1);
        // t_axis = 6: one full block (2 certain) + remainder of 2
        let d = m.occupancy_distribution(&[1, 6]);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&(k, _)| (2..=4).contains(&k)));
        let s = m.occupancy(&[1, 6]);
        assert!((s.expected - 3.0).abs() < 1e-12);
        assert_eq!(s.max, 4);
        assert_eq!(s.prob_empty, 0.0);
    }

    #[test]
    fn distribution_expectation_matches_stats() {
        let m = FixedStructured::new(vec![4, 8], 2, 4, 1);
        for tile in [[1u64, 2], [2, 2], [4, 4], [2, 8]] {
            let d = m.occupancy_distribution(&tile);
            let e: f64 = d.iter().map(|&(k, p)| k as f64 * p).sum();
            let s = m.occupancy(&tile);
            assert!(
                (e - s.expected).abs() < 1e-6,
                "tile {tile:?}: {e} vs {}",
                s.expected
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of m")]
    fn misaligned_axis_rejected() {
        FixedStructured::new(vec![4, 6], 2, 4, 1);
    }
}
