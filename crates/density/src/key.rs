//! Pre-hashed, allocation-light sharing identities for density models.
//!
//! `EvalSession`-style batch layers intern one shared memoized model
//! (and one format-analysis cache slot) per distinct tensor statistic,
//! keyed by [`DensityModel::cache_key`]. The key is built on **every**
//! `model()` call of every batch job, so its cost is on the session's
//! hot path: the original `String` keys allocated, formatted and were
//! re-hashed byte-by-byte on every map probe. A [`DensityKey`] instead
//! packs the model's parameters into a handful of `u64` words stored
//! inline (spilling to a shared allocation only past
//! [`DensityKey::INLINE_WORDS`] words) and carries a **precomputed
//! hash**, so map probes hash eight bytes regardless of key size and
//! construction performs no heap allocation for every model shipped in
//! this crate.
//!
//! Equality stays exact — the kind tag and every word are compared, the
//! hash is only a fast path — so two keys are equal iff they encode the
//! same model kind, parameters and tensor shape: precisely the contract
//! [`DensityModel::cache_key`] demands.
//!
//! [`DensityModel::cache_key`]: crate::DensityModel::cache_key

use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// FNV-1a over a byte slice (the kind tag's contribution to the hash).
fn fnv1a_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Word storage: inline for every model in this crate, shared-heap for
/// exotic keys.
#[derive(Debug, Clone)]
enum Words {
    Inline {
        len: u8,
        buf: [u64; DensityKey::INLINE_WORDS],
    },
    Spilled(Arc<[u64]>),
}

/// A compact, pre-hashed sharing identity for a density model (see the
/// [module docs](self)).
///
/// Two keys compare equal iff their kind tags and parameter words match
/// exactly; the precomputed hash only accelerates map probes.
#[derive(Debug, Clone)]
pub struct DensityKey {
    kind: &'static str,
    words: Words,
    hash: u64,
}

impl DensityKey {
    /// Parameter words stored inline before spilling to the heap.
    pub const INLINE_WORDS: usize = 8;

    /// Builds a key for a model `kind` from its parameter words
    /// (tensor shape, counts, and `f64::to_bits` of real parameters).
    ///
    /// The kind tag participates in equality and hashing, so models of
    /// different kinds can never share a key even when their parameter
    /// words coincide.
    pub fn new(kind: &'static str, params: impl IntoIterator<Item = u64>) -> Self {
        let mut buf = [0u64; Self::INLINE_WORDS];
        let mut len = 0usize;
        let mut spill: Vec<u64> = Vec::new();
        let mut hash = fnv1a_bytes(FNV_OFFSET, kind.as_bytes());
        for w in params {
            hash = fnv1a_bytes(hash, &w.to_le_bytes());
            if len < Self::INLINE_WORDS {
                buf[len] = w;
            } else {
                if spill.is_empty() {
                    spill.extend_from_slice(&buf);
                }
                spill.push(w);
            }
            len += 1;
        }
        let words = if spill.is_empty() {
            Words::Inline {
                len: len as u8,
                buf,
            }
        } else {
            Words::Spilled(spill.into())
        };
        DensityKey { kind, words, hash }
    }

    /// The model kind tag the key was built for.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The packed parameter words.
    pub fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline { len, buf } => &buf[..*len as usize],
            Words::Spilled(words) => words,
        }
    }

    /// The precomputed hash (what [`Hash`] feeds to map hashers).
    pub fn precomputed_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for DensityKey {
    fn eq(&self, other: &Self) -> bool {
        // hash first: a cheap reject for the overwhelmingly common
        // unequal case; equality itself stays exact
        self.hash == other.hash && self.kind == other.kind && self.words() == other.words()
    }
}

impl Eq for DensityKey {}

impl Hash for DensityKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equal_parameters_equal_keys() {
        let a = DensityKey::new("uniform", [16, 16, 64]);
        let b = DensityKey::new("uniform", [16, 16, 64]);
        assert_eq!(a, b);
        assert_eq!(a.precomputed_hash(), b.precomputed_hash());
    }

    #[test]
    fn kind_tag_separates_equal_words() {
        let a = DensityKey::new("uniform", [16, 16]);
        let b = DensityKey::new("banded", [16, 16]);
        assert_ne!(a, b);
    }

    #[test]
    fn parameter_order_and_value_matter() {
        assert_ne!(
            DensityKey::new("uniform", [16, 8]),
            DensityKey::new("uniform", [8, 16])
        );
        assert_ne!(
            DensityKey::new("uniform", [16]),
            DensityKey::new("uniform", [16, 0])
        );
    }

    #[test]
    fn long_keys_spill_and_stay_exact() {
        let long: Vec<u64> = (0..20).collect();
        let a = DensityKey::new("structured", long.clone());
        let b = DensityKey::new("structured", long.clone());
        assert_eq!(a, b);
        assert_eq!(a.words(), long.as_slice());
        let mut shorter = long.clone();
        shorter.pop();
        assert_ne!(a, DensityKey::new("structured", shorter));
    }

    #[test]
    fn f64_parameters_roundtrip_via_bits() {
        let a = DensityKey::new("banded", [0.25f64.to_bits()]);
        let b = DensityKey::new("banded", [0.25f64.to_bits()]);
        let c = DensityKey::new("banded", [0.5f64.to_bits()]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn works_as_a_map_key() {
        let mut map: HashMap<DensityKey, usize> = HashMap::new();
        map.insert(DensityKey::new("uniform", [4, 4, 8]), 1);
        map.insert(DensityKey::new("uniform", [4, 4, 9]), 2);
        assert_eq!(map[&DensityKey::new("uniform", [4, 4, 8])], 1);
        assert_eq!(map[&DensityKey::new("uniform", [4, 4, 9])], 2);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn inline_capacity_boundary() {
        let at = DensityKey::new("t", 0..DensityKey::INLINE_WORDS as u64);
        assert_eq!(at.words().len(), DensityKey::INLINE_WORDS);
        let over = DensityKey::new("t", 0..(DensityKey::INLINE_WORDS as u64 + 1));
        assert_eq!(over.words().len(), DensityKey::INLINE_WORDS + 1);
        assert_ne!(at, over);
    }
}
