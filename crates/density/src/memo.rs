//! A memoizing [`DensityModel`] wrapper.
//!
//! Mapspace search evaluates thousands of candidate mappings against the
//! same workload, and different mappings routinely induce the *same* tile
//! shapes per storage level — the factorization space reuses factors.
//! Density queries (occupancy statistics and full distributions) depend
//! only on the tile shape for every model in this crate, so caching them
//! per shape removes the dominant repeated cost in Sparseloop's sparse
//! modeling step (format footprint analysis and leader-tile emptiness
//! both bottom out in these queries).
//!
//! [`Memoized`] is thread-safe (`RwLock`-guarded maps — warm hits take
//! only the read lock), so one wrapped model
//! can serve the mapper's parallel search workers concurrently. The cache
//! is bounded: once [`CACHE_CAP`] distinct shapes have been recorded per
//! query kind, further shapes are computed without being stored — search
//! working sets are far below the cap in practice, and the bound keeps
//! adversarial workloads from growing the maps without limit.

use crate::model::{DensityModel, OccupancyStats};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Maximum distinct tile shapes cached per query kind.
pub const CACHE_CAP: usize = 4096;

/// A [`DensityModel`] decorator caching `occupancy` and
/// `occupancy_distribution` results per tile shape.
/// Cached distributions: tile shape -> (occupancy, probability) pairs.
/// Stored by value: the `DensityModel` trait returns owned `Vec`s, so a
/// hit clones either way and shared ownership would buy nothing.
type DistributionCache = RwLock<HashMap<Vec<u64>, Vec<(u64, f64)>>>;

#[derive(Debug)]
pub struct Memoized {
    inner: Arc<dyn DensityModel>,
    occupancy: RwLock<HashMap<Vec<u64>, OccupancyStats>>,
    distribution: DistributionCache,
}

impl Memoized {
    /// Wraps a model in a fresh cache.
    pub fn new(inner: Arc<dyn DensityModel>) -> Self {
        Memoized {
            inner,
            occupancy: RwLock::new(HashMap::new()),
            distribution: RwLock::new(HashMap::new()),
        }
    }

    /// Convenience: wraps and erases back to a trait object.
    pub fn wrap(inner: Arc<dyn DensityModel>) -> Arc<dyn DensityModel> {
        Arc::new(Memoized::new(inner))
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<dyn DensityModel> {
        &self.inner
    }

    /// Number of cached occupancy entries (for tests / diagnostics).
    pub fn occupancy_entries(&self) -> usize {
        self.occupancy
            .read()
            .expect("occupancy cache poisoned")
            .len()
    }
}

impl DensityModel for Memoized {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn density(&self) -> f64 {
        self.inner.density()
    }

    fn tensor_shape(&self) -> &[u64] {
        self.inner.tensor_shape()
    }

    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
        {
            let cache = self.occupancy.read().expect("occupancy cache poisoned");
            if let Some(hit) = cache.get(tile_shape) {
                return *hit;
            }
        }
        // compute outside the lock: misses may be expensive and other
        // workers should not serialize behind them
        let stats = self.inner.occupancy(tile_shape);
        let mut cache = self.occupancy.write().expect("occupancy cache poisoned");
        if cache.len() < CACHE_CAP {
            cache.insert(tile_shape.to_vec(), stats);
        }
        stats
    }

    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
        {
            let cache = self
                .distribution
                .read()
                .expect("distribution cache poisoned");
            if let Some(hit) = cache.get(tile_shape) {
                return hit.clone();
            }
        }
        let dist = self.inner.occupancy_distribution(tile_shape);
        let mut cache = self
            .distribution
            .write()
            .expect("distribution cache poisoned");
        if cache.len() < CACHE_CAP {
            cache.insert(tile_shape.to_vec(), dist.clone());
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::Uniform;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Counts how often the underlying model is actually queried.
    #[derive(Debug)]
    struct Counting {
        inner: Uniform,
        occupancy_calls: AtomicUsize,
    }

    impl DensityModel for Counting {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn density(&self) -> f64 {
            self.inner.density()
        }
        fn tensor_shape(&self) -> &[u64] {
            self.inner.tensor_shape()
        }
        fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
            self.occupancy_calls.fetch_add(1, Ordering::SeqCst);
            self.inner.occupancy(tile_shape)
        }
        fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
            self.inner.occupancy_distribution(tile_shape)
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let counting = Arc::new(Counting {
            inner: Uniform::new(vec![16, 16], 0.25),
            occupancy_calls: AtomicUsize::new(0),
        });
        let memo = Memoized::new(counting.clone() as Arc<dyn DensityModel>);
        let a = memo.occupancy(&[4, 4]);
        for _ in 0..10 {
            let b = memo.occupancy(&[4, 4]);
            assert_eq!(a, b);
        }
        assert_eq!(counting.occupancy_calls.load(Ordering::SeqCst), 1);
        assert_eq!(memo.occupancy_entries(), 1);
    }

    #[test]
    fn results_match_the_inner_model() {
        let inner = Arc::new(Uniform::new(vec![8, 8], 0.5));
        let memo = Memoized::new(inner.clone() as Arc<dyn DensityModel>);
        for shape in [[1u64, 1], [2, 4], [8, 8]] {
            assert_eq!(memo.occupancy(&shape), inner.occupancy(&shape));
            assert_eq!(
                memo.occupancy_distribution(&shape),
                inner.occupancy_distribution(&shape)
            );
            // cached second query still matches
            assert_eq!(memo.occupancy(&shape), inner.occupancy(&shape));
        }
        assert_eq!(memo.density(), inner.density());
        assert_eq!(memo.tensor_shape(), inner.tensor_shape());
    }

    #[test]
    fn cache_is_bounded() {
        let memo = Memoized::new(Arc::new(Uniform::new(vec![8192, 1], 0.5)));
        for i in 1..=(CACHE_CAP as u64 + 64) {
            memo.occupancy(&[i, 1]);
        }
        assert!(memo.occupancy_entries() <= CACHE_CAP);
        // shapes beyond the cap still compute correctly
        let fresh = memo.occupancy(&[8000, 1]);
        assert!(fresh.expected > 0.0);
    }
}
