//! A memoizing [`DensityModel`] wrapper.
//!
//! Mapspace search evaluates thousands of candidate mappings against the
//! same workload, and different mappings routinely induce the *same* tile
//! shapes per storage level — the factorization space reuses factors.
//! Density queries (occupancy statistics and full distributions) depend
//! only on the tile shape for every model in this crate, so caching them
//! per shape removes the dominant repeated cost in Sparseloop's sparse
//! modeling step (format footprint analysis and leader-tile emptiness
//! both bottom out in these queries).
//!
//! [`Memoized`] is a thin binding of the shared [`ShapeMemo`] primitive
//! (see [`crate::cache`]) to the [`DensityModel`] trait: thread-safe
//! (warm hits take only a read lock, so one wrapped model can serve the
//! mapper's parallel search workers concurrently), bounded at
//! [`CACHE_CAP`] distinct shapes per query kind, and `Arc`-backed — a
//! warm distribution hit shares the cached `Vec` instead of cloning it
//! (use [`DensityModel::occupancy_distribution_arc`] to benefit).

use crate::cache::{MemoStats, ShapeMemo};
use crate::key::DensityKey;
use crate::model::{DensityModel, OccupancyStats};
use std::sync::Arc;

/// Maximum distinct tile shapes cached per query kind.
pub const CACHE_CAP: usize = 4096;

/// A [`DensityModel`] decorator caching `occupancy` and
/// `occupancy_distribution` results per tile shape.
#[derive(Debug)]
pub struct Memoized {
    inner: Arc<dyn DensityModel>,
    occupancy: ShapeMemo<OccupancyStats>,
    distribution: ShapeMemo<Vec<(u64, f64)>>,
}

impl Memoized {
    /// Wraps a model in a fresh cache.
    pub fn new(inner: Arc<dyn DensityModel>) -> Self {
        Memoized {
            inner,
            occupancy: ShapeMemo::new(CACHE_CAP),
            distribution: ShapeMemo::new(CACHE_CAP),
        }
    }

    /// Convenience: wraps and erases back to a trait object.
    pub fn wrap(inner: Arc<dyn DensityModel>) -> Arc<dyn DensityModel> {
        Arc::new(Memoized::new(inner))
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<dyn DensityModel> {
        &self.inner
    }

    /// Number of cached occupancy entries (for tests / diagnostics).
    pub fn occupancy_entries(&self) -> usize {
        self.occupancy.entries()
    }

    /// Hit/miss counters of the occupancy cache.
    pub fn occupancy_stats(&self) -> MemoStats {
        self.occupancy.stats()
    }
}

impl DensityModel for Memoized {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn density(&self) -> f64 {
        self.inner.density()
    }

    fn tensor_shape(&self) -> &[u64] {
        self.inner.tensor_shape()
    }

    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
        *self
            .occupancy
            .get_or_compute(0, tile_shape, || self.inner.occupancy(tile_shape))
    }

    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
        self.occupancy_distribution_arc(tile_shape).to_vec()
    }

    fn occupancy_distribution_arc(&self, tile_shape: &[u64]) -> Arc<Vec<(u64, f64)>> {
        self.distribution.get_or_compute(0, tile_shape, || {
            self.inner.occupancy_distribution(tile_shape)
        })
    }

    fn cache_key(&self) -> Option<DensityKey> {
        // the decorator is transparent: sharing identity is the inner
        // model's
        self.inner.cache_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::Uniform;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Counts how often the underlying model is actually queried.
    #[derive(Debug)]
    struct Counting {
        inner: Uniform,
        occupancy_calls: AtomicUsize,
        distribution_calls: AtomicUsize,
    }

    impl Counting {
        fn new(inner: Uniform) -> Self {
            Counting {
                inner,
                occupancy_calls: AtomicUsize::new(0),
                distribution_calls: AtomicUsize::new(0),
            }
        }
    }

    impl DensityModel for Counting {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn density(&self) -> f64 {
            self.inner.density()
        }
        fn tensor_shape(&self) -> &[u64] {
            self.inner.tensor_shape()
        }
        fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
            self.occupancy_calls.fetch_add(1, Ordering::SeqCst);
            self.inner.occupancy(tile_shape)
        }
        fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
            self.distribution_calls.fetch_add(1, Ordering::SeqCst);
            self.inner.occupancy_distribution(tile_shape)
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let counting = Arc::new(Counting::new(Uniform::new(vec![16, 16], 0.25)));
        let memo = Memoized::new(counting.clone() as Arc<dyn DensityModel>);
        let a = memo.occupancy(&[4, 4]);
        for _ in 0..10 {
            let b = memo.occupancy(&[4, 4]);
            assert_eq!(a, b);
        }
        assert_eq!(counting.occupancy_calls.load(Ordering::SeqCst), 1);
        assert_eq!(memo.occupancy_entries(), 1);
        assert_eq!(memo.occupancy_stats().hits, 10);
    }

    #[test]
    fn warm_distribution_hits_share_the_arc() {
        let counting = Arc::new(Counting::new(Uniform::new(vec![16, 16], 0.5)));
        let memo = Memoized::new(counting.clone() as Arc<dyn DensityModel>);
        let a = memo.occupancy_distribution_arc(&[4, 4]);
        let b = memo.occupancy_distribution_arc(&[4, 4]);
        assert!(Arc::ptr_eq(&a, &b), "warm hit must not clone the Vec");
        assert_eq!(counting.distribution_calls.load(Ordering::SeqCst), 1);
        // the by-value accessor stays available and consistent
        assert_eq!(memo.occupancy_distribution(&[4, 4]), *a);
    }

    #[test]
    fn results_match_the_inner_model() {
        let inner = Arc::new(Uniform::new(vec![8, 8], 0.5));
        let memo = Memoized::new(inner.clone() as Arc<dyn DensityModel>);
        for shape in [[1u64, 1], [2, 4], [8, 8]] {
            assert_eq!(memo.occupancy(&shape), inner.occupancy(&shape));
            assert_eq!(
                memo.occupancy_distribution(&shape),
                inner.occupancy_distribution(&shape)
            );
            // cached second query still matches
            assert_eq!(memo.occupancy(&shape), inner.occupancy(&shape));
        }
        assert_eq!(memo.density(), inner.density());
        assert_eq!(memo.tensor_shape(), inner.tensor_shape());
        assert_eq!(memo.cache_key(), inner.cache_key());
    }

    #[test]
    fn cache_is_bounded() {
        let memo = Memoized::new(Arc::new(Uniform::new(vec![8192, 1], 0.5)));
        for i in 1..=(CACHE_CAP as u64 + 64) {
            memo.occupancy(&[i, 1]);
        }
        assert!(memo.occupancy_entries() <= CACHE_CAP);
        // shapes beyond the cap still compute correctly
        let fresh = memo.occupancy(&[8000, 1]);
        assert!(fresh.expected > 0.0);
    }
}
