//! # sparseloop-density
//!
//! Statistical density models (Sparseloop §5.3.2, Table 4, Fig. 9).
//!
//! Sparseloop avoids walking actual tensor data during mapspace and design
//! space exploration by characterizing tiles (fibers) *statistically*: for
//! a tile of a given shape, a density model answers
//!
//! * how many nonzeros the tile is expected to contain,
//! * the probability that the tile is entirely empty (the quantity that
//!   drives gating/skipping eliminations), and
//! * the full occupancy distribution (used for worst-case capacity checks
//!   and Fig. 9-style analyses).
//!
//! Four models from the paper are provided:
//!
//! | Model | Sparsity pattern | Example application |
//! |---|---|---|
//! | [`Uniform`] | random, coordinate-independent | randomly pruned DNNs, activations |
//! | [`FixedStructured`] | even n:m, coordinate-independent | structurally pruned DNNs (STC 2:4) |
//! | [`Banded`] | diagonal, coordinate-dependent | scientific matrices |
//! | [`ActualData`] | exact, from a concrete tensor | special-pattern workloads |
//!
//! New models plug in by implementing [`DensityModel`].

pub mod actual;
pub mod banded;
pub mod cache;
pub mod key;
pub mod math;
pub mod memo;
pub mod model;
pub mod structured;
pub mod uniform;

pub use actual::ActualData;
pub use banded::Banded;
pub use cache::{MemoStats, ShapeMemo};
pub use key::DensityKey;
pub use memo::Memoized;
pub use model::{DensityModel, DensityModelExt, DensityModelSpec, OccupancyStats};
pub use structured::FixedStructured;
pub use uniform::Uniform;
