//! Log-space combinatorics shared by the statistical density models.
//!
//! Tensor volumes in DNN workloads reach 10⁸+, so binomial coefficients are
//! evaluated via the log-gamma function (Lanczos approximation) and
//! combined in log space.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for `x > 0`, which is far below the
/// statistical error the paper attributes to density modeling.
///
/// # Panics
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln(C(n, k))`; returns negative infinity when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Hypergeometric pmf: probability of drawing exactly `k` marked items in
/// a sample of `s` from a population of `n` containing `m` marked items.
///
/// `P(X = k) = C(m, k) · C(n − m, s − k) / C(n, s)`
pub fn hypergeometric_pmf(n: u64, m: u64, s: u64, k: u64) -> f64 {
    if k > m || k > s || s > n || s - k > n - m {
        return 0.0;
    }
    (ln_choose(m, k) + ln_choose(n - m, s - k) - ln_choose(n, s)).exp()
}

/// Probability that a hypergeometric sample of `s` from population `n`
/// with `m` marked items contains zero marked items.
///
/// `P(X = 0) = C(n − m, s) / C(n, s)`
pub fn hypergeometric_prob_zero(n: u64, m: u64, s: u64) -> f64 {
    if m == 0 {
        return 1.0;
    }
    if s > n - m {
        return 0.0;
    }
    (ln_choose(n - m, s) - ln_choose(n, s)).exp()
}

/// Binomial pmf `C(n, k) p^k (1-p)^(n-k)`, evaluated in log space.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Convolves two discrete distributions given as `(value, prob)` pairs
/// (values are occupancies; probabilities must each sum to ~1).
pub fn convolve(a: &[(u64, f64)], b: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut out: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for &(va, pa) in a {
        for &(vb, pb) in b {
            *out.entry(va + vb).or_insert(0.0) += pa * pb;
        }
    }
    out.into_iter().collect()
}

/// Convolves a distribution with itself `times` times (exponentiation by
/// squaring), pruning entries below `prune` to bound the support size.
pub fn convolve_power(dist: &[(u64, f64)], times: u64, prune: f64) -> Vec<(u64, f64)> {
    let mut result: Vec<(u64, f64)> = vec![(0, 1.0)];
    let mut base = dist.to_vec();
    let mut t = times;
    while t > 0 {
        if t & 1 == 1 {
            result = prune_dist(convolve(&result, &base), prune);
        }
        t >>= 1;
        if t > 0 {
            base = prune_dist(convolve(&base, &base), prune);
        }
    }
    result
}

fn prune_dist(mut d: Vec<(u64, f64)>, prune: f64) -> Vec<(u64, f64)> {
    if prune > 0.0 {
        d.retain(|&(_, p)| p >= prune);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        if total > 0.0 {
            for e in &mut d {
                e.1 /= total;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let exact: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            assert!((ln_factorial(n) - exact).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn choose_small_values() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-8);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn hypergeometric_sums_to_one() {
        let (n, m, s) = (40u64, 12u64, 9u64);
        let total: f64 = (0..=s).map(|k| hypergeometric_pmf(n, m, s, k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn hypergeometric_expectation() {
        let (n, m, s) = (100u64, 25u64, 16u64);
        let e: f64 = (0..=s)
            .map(|k| k as f64 * hypergeometric_pmf(n, m, s, k))
            .sum();
        assert!((e - s as f64 * m as f64 / n as f64).abs() < 1e-9);
    }

    #[test]
    fn prob_zero_consistent_with_pmf() {
        let (n, m, s) = (64u64, 16u64, 4u64);
        assert!((hypergeometric_prob_zero(n, m, s) - hypergeometric_pmf(n, m, s, 0)).abs() < 1e-12);
    }

    #[test]
    fn prob_zero_edge_cases() {
        assert_eq!(hypergeometric_prob_zero(10, 0, 5), 1.0);
        // sample bigger than the unmarked population must hit a mark
        assert_eq!(hypergeometric_prob_zero(10, 6, 5), 0.0);
    }

    #[test]
    fn binomial_basics() {
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
        assert_eq!(binomial_pmf(4, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(4, 4, 1.0), 1.0);
        let total: f64 = (0..=7).map(|k| binomial_pmf(7, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_adds_expectations() {
        let a = vec![(0u64, 0.5), (1u64, 0.5)];
        let b = vec![(0u64, 0.25), (2u64, 0.75)];
        let c = convolve(&a, &b);
        let e: f64 = c.iter().map(|&(v, p)| v as f64 * p).sum();
        assert!((e - (0.5 + 1.5)).abs() < 1e-12);
        let total: f64 = c.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolve_power_is_repeated_convolve() {
        let d = vec![(0u64, 0.5), (1u64, 0.5)];
        let direct = convolve(&convolve(&d, &d), &d);
        let fast = convolve_power(&d, 3, 0.0);
        assert_eq!(direct.len(), fast.len());
        for (x, y) in direct.iter().zip(&fast) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }

    #[test]
    fn large_population_stable() {
        // Values representative of DNN tensors: should not overflow/NaN.
        let p = hypergeometric_prob_zero(100_000_000, 25_000_000, 1024);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        // ~(0.75)^1024, tiny but positive in log space
        assert!(p < 1e-100);
    }
}
