//! Uniform (hypergeometric) density model.
//!
//! Models a tensor whose `K = round(volume · density)` nonzeros fall at
//! distinct uniformly-random coordinates. The occupancy of a tile of `S`
//! dense coordinates is then hypergeometric with population `N = volume`,
//! `K` marked items and sample size `S` — exactly the statistic the paper
//! visualizes in Fig. 9 ("a tile's shape varies inversely with the
//! deviation in its density").

use crate::key::DensityKey;
use crate::math::{hypergeometric_pmf, hypergeometric_prob_zero};
use crate::model::{DensityModel, OccupancyStats};

/// Coordinate-independent uniform-random density model.
///
/// # Example
/// ```
/// use sparseloop_density::{DensityModel, Uniform};
/// let m = Uniform::new(vec![8, 8], 0.25); // 16 nonzeros among 64 slots
/// let stats = m.occupancy(&[1, 1]);
/// assert!((stats.expected - 0.25).abs() < 1e-12);
/// assert!((stats.prob_empty - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Uniform {
    shape: Vec<u64>,
    volume: u64,
    nnz: u64,
}

impl Uniform {
    /// Creates a uniform model over a tensor of the given shape and
    /// overall density.
    ///
    /// # Panics
    /// Panics if `density` is outside `[0, 1]` or the shape is empty.
    pub fn new(shape: Vec<u64>, density: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        assert!(!shape.is_empty(), "shape must have at least one rank");
        let volume: u64 = shape.iter().product();
        assert!(volume > 0, "tensor volume must be positive");
        let nnz = ((volume as f64) * density).round() as u64;
        Uniform { shape, volume, nnz }
    }

    /// Number of nonzeros the model assumes.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    fn tile_size(&self, tile_shape: &[u64]) -> u64 {
        assert_eq!(tile_shape.len(), self.shape.len(), "tile rank mismatch");
        let s: u64 = tile_shape
            .iter()
            .zip(&self.shape)
            .map(|(&t, &e)| t.min(e))
            .product();
        s.min(self.volume)
    }
}

impl DensityModel for Uniform {
    fn name(&self) -> &str {
        "uniform"
    }

    fn density(&self) -> f64 {
        self.nnz as f64 / self.volume as f64
    }

    fn tensor_shape(&self) -> &[u64] {
        &self.shape
    }

    fn occupancy(&self, tile_shape: &[u64]) -> OccupancyStats {
        let s = self.tile_size(tile_shape);
        let expected = s as f64 * self.density();
        let prob_empty = hypergeometric_prob_zero(self.volume, self.nnz, s);
        OccupancyStats {
            expected,
            prob_empty,
            max: s.min(self.nnz),
        }
    }

    fn occupancy_distribution(&self, tile_shape: &[u64]) -> Vec<(u64, f64)> {
        let s = self.tile_size(tile_shape);
        let max = s.min(self.nnz);
        (0..=max)
            .map(|k| (k, hypergeometric_pmf(self.volume, self.nnz, s, k)))
            .filter(|&(_, p)| p > 0.0)
            .collect()
    }

    fn cache_key(&self) -> Option<DensityKey> {
        Some(DensityKey::new(
            "uniform",
            self.shape.iter().copied().chain([self.nnz]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DensityModelExt;

    #[test]
    fn whole_tensor_tile_is_deterministic() {
        let m = Uniform::new(vec![8, 8], 0.5);
        let d = m.occupancy_distribution(&[8, 8]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 32);
        assert!((d[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn element_tile_matches_density() {
        let m = Uniform::new(vec![16, 16], 0.3);
        let stats = m.occupancy(&[1, 1]);
        assert!((stats.prob_empty - (1.0 - m.density())).abs() < 1e-9);
    }

    #[test]
    fn distribution_sums_to_one() {
        let m = Uniform::new(vec![10, 10], 0.37);
        for tile in [[1u64, 1], [2, 5], [5, 2], [10, 1]] {
            let d = m.occupancy_distribution(&tile);
            let total: f64 = d.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "tile {tile:?}");
            let e: f64 = d.iter().map(|&(k, p)| k as f64 * p).sum();
            let stats = m.occupancy(&tile);
            assert!((e - stats.expected).abs() < 1e-9, "tile {tile:?}");
        }
    }

    #[test]
    fn bigger_tiles_concentrate_density() {
        // Fig 9: larger tiles have lower variance in density.
        let m = Uniform::new(vec![64, 64], 0.5);
        let var = |tile: &[u64]| {
            let d = m.occupancy_distribution(tile);
            let s: u64 = tile.iter().product();
            let mean: f64 = d.iter().map(|&(k, p)| k as f64 / s as f64 * p).sum();
            d.iter()
                .map(|&(k, p)| {
                    let x = k as f64 / s as f64;
                    (x - mean).powi(2) * p
                })
                .sum::<f64>()
        };
        assert!(var(&[1, 2]) > var(&[1, 8]));
        assert!(var(&[1, 8]) > var(&[8, 8]));
    }

    #[test]
    fn prob_empty_decreases_with_tile_size() {
        let m = Uniform::new(vec![32, 32], 0.1);
        let p1 = m.occupancy(&[1, 1]).prob_empty;
        let p4 = m.occupancy(&[2, 2]).prob_empty;
        let p16 = m.occupancy(&[4, 4]).prob_empty;
        assert!(p1 > p4 && p4 > p16);
    }

    #[test]
    fn dense_model_never_empty() {
        let m = Uniform::new(vec![8], 1.0);
        assert_eq!(m.occupancy(&[3]).prob_empty, 0.0);
        assert!((m.expected_tile_density(&[3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_density_always_empty() {
        let m = Uniform::new(vec![8], 0.0);
        assert_eq!(m.occupancy(&[4]).prob_empty, 1.0);
        assert_eq!(m.occupancy(&[4]).expected, 0.0);
    }

    #[test]
    fn tile_clamped_to_tensor() {
        let m = Uniform::new(vec![4, 4], 0.5);
        // Oversized tile clamps to the tensor itself.
        let stats = m.occupancy(&[16, 16]);
        assert_eq!(stats.max, 8);
        assert!((stats.expected - 8.0).abs() < 1e-9);
    }
}
