//! Deterministic fault injection for the multi-process shard host.
//!
//! Robustness claims are only as good as the failures they were tested
//! against. This module describes failures *declaratively* — a
//! [`FaultPlan`] maps worker slots to a [`WorkerFault`] — and the rest
//! of the serving stack (worker loop, supervisor) executes them at
//! fixed, deterministic checkpoints. The same plan therefore produces
//! the same failure schedule on every run, which is what lets the
//! fault-injection tests assert *bit-identical* merged winners rather
//! than "it didn't crash".
//!
//! Two delivery paths exist:
//!
//! * **Worker-side faults** ([`WorkerFault::DieAt`],
//!   [`StallBeforeResult`](WorkerFault::StallBeforeResult),
//!   [`CorruptResult`](WorkerFault::CorruptResult),
//!   [`DropResult`](WorkerFault::DropResult),
//!   [`SlowFrames`](WorkerFault::SlowFrames)) are executed by the
//!   worker loop itself. For real processes they travel in the
//!   [`FAULT_ENV`] environment variable; in-thread workers receive them
//!   directly.
//! * **Parent-side kills** ([`WorkerFault::KillAfterFrames`]) are
//!   executed by the supervisor: it counts frames received from the
//!   slot since dispatch and delivers a real kill (SIGKILL for
//!   processes) once the count is reached — the worker gets no chance
//!   to clean up, which is exactly the point.
//!
//! Faults apply to a slot's *first* spawn only; restarted workers come
//! up clean, so every injected failure is recoverable by supervision.

use std::collections::HashMap;

/// Environment variable carrying a worker-side fault to a spawned
/// process (value format: [`WorkerFault::to_env`]).
pub const FAULT_ENV: &str = "SPARSELOOP_WORKER_FAULT";

/// Deterministic checkpoints at which a worker can be told to die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiePoint {
    /// Exit before sending anything (spawn looks successful, then the
    /// pipe is dead).
    Startup,
    /// Exit right after the `Hello` handshake (dies while idle).
    AfterHello,
    /// Exit after computing a task but before sending its result (the
    /// most expensive place to lose a worker).
    BeforeResult,
}

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Worker exits silently at the given checkpoint.
    DieAt(DiePoint),
    /// Worker computes its task, then stalls without sending the result
    /// or further heartbeats — exercises the heartbeat-timeout path.
    StallBeforeResult,
    /// Worker sends its result frame with one payload byte flipped
    /// after checksumming — exercises the corrupt-frame path.
    CorruptResult,
    /// Worker silently discards its result frame and goes back to
    /// waiting for commands — the parent sees heartbeats stop with no
    /// death signal and must time the slot out.
    DropResult,
    /// Parent kills the worker (SIGKILL for processes) once it has
    /// received this many frames from it since task dispatch.
    KillAfterFrames(u32),
    /// Worker computes its task, then *delays* (never drops) its result
    /// frames by this many milliseconds while still heartbeating —
    /// deterministic straggler, the fault hedged dispatch exists for.
    SlowFrames {
        /// Delay before the result frames are written, milliseconds.
        delay_ms: u64,
    },
}

impl WorkerFault {
    /// Serializes a *worker-side* fault for [`FAULT_ENV`]; `None` for
    /// parent-side faults (they never travel to the worker).
    pub fn to_env(self) -> Option<String> {
        match self {
            WorkerFault::DieAt(DiePoint::Startup) => Some("die:startup".into()),
            WorkerFault::DieAt(DiePoint::AfterHello) => Some("die:hello".into()),
            WorkerFault::DieAt(DiePoint::BeforeResult) => Some("die:result".into()),
            WorkerFault::StallBeforeResult => Some("stall".into()),
            WorkerFault::CorruptResult => Some("corrupt".into()),
            WorkerFault::DropResult => Some("drop".into()),
            WorkerFault::SlowFrames { delay_ms } => Some(format!("slow:{delay_ms}")),
            WorkerFault::KillAfterFrames(_) => None,
        }
    }

    /// Parses a [`FAULT_ENV`] value written by [`to_env`](Self::to_env).
    pub fn from_env(value: &str) -> Option<WorkerFault> {
        match value {
            "die:startup" => Some(WorkerFault::DieAt(DiePoint::Startup)),
            "die:hello" => Some(WorkerFault::DieAt(DiePoint::AfterHello)),
            "die:result" => Some(WorkerFault::DieAt(DiePoint::BeforeResult)),
            "stall" => Some(WorkerFault::StallBeforeResult),
            "corrupt" => Some(WorkerFault::CorruptResult),
            "drop" => Some(WorkerFault::DropResult),
            _ => {
                let delay_ms = value.strip_prefix("slow:")?.parse().ok()?;
                Some(WorkerFault::SlowFrames { delay_ms })
            }
        }
    }
}

/// A deterministic schedule of injected failures, keyed by worker slot.
///
/// Each slot's fault is consumed by that slot's first spawn; the
/// restarted worker runs clean.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<u32, WorkerFault>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault for `slot` (builder-style).
    pub fn with(mut self, slot: u32, fault: WorkerFault) -> Self {
        self.faults.insert(slot, fault);
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Removes and returns the fault scheduled for `slot`, if any —
    /// called once per slot at first spawn.
    pub fn take(&mut self, slot: u32) -> Option<WorkerFault> {
        self.faults.remove(&slot)
    }

    /// Peeks at the fault scheduled for `slot` without consuming it.
    pub fn peek(&self, slot: u32) -> Option<WorkerFault> {
        self.faults.get(&slot).copied()
    }

    /// Derives a plan from a seed: one pseudo-random fault on one
    /// pseudo-random slot out of `workers`. Same seed, same plan —
    /// the harness sweeps seeds to sweep failure schedules.
    pub fn from_seed(seed: u64, workers: u32) -> Self {
        if workers == 0 {
            return FaultPlan::none();
        }
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64: tiny, dependency-free, well-distributed
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let slot = (next() % workers as u64) as u32;
        let fault = match next() % 8 {
            0 => WorkerFault::DieAt(DiePoint::Startup),
            1 => WorkerFault::DieAt(DiePoint::AfterHello),
            2 => WorkerFault::DieAt(DiePoint::BeforeResult),
            3 => WorkerFault::StallBeforeResult,
            4 => WorkerFault::CorruptResult,
            5 => WorkerFault::DropResult,
            6 => WorkerFault::SlowFrames {
                delay_ms: 10 * (1 + next() % 4),
            },
            _ => WorkerFault::KillAfterFrames((next() % 4) as u32),
        };
        FaultPlan::none().with(slot, fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_roundtrip_for_worker_side_faults() {
        let faults = [
            WorkerFault::DieAt(DiePoint::Startup),
            WorkerFault::DieAt(DiePoint::AfterHello),
            WorkerFault::DieAt(DiePoint::BeforeResult),
            WorkerFault::StallBeforeResult,
            WorkerFault::CorruptResult,
            WorkerFault::DropResult,
            WorkerFault::SlowFrames { delay_ms: 35 },
        ];
        for f in faults {
            let env = f.to_env().expect("worker-side fault serializes");
            assert_eq!(WorkerFault::from_env(&env), Some(f));
        }
        assert_eq!(WorkerFault::KillAfterFrames(2).to_env(), None);
        assert_eq!(WorkerFault::from_env("nonsense"), None);
    }

    #[test]
    fn plans_consume_faults_once() {
        let mut plan = FaultPlan::none().with(1, WorkerFault::StallBeforeResult);
        assert_eq!(plan.peek(1), Some(WorkerFault::StallBeforeResult));
        assert_eq!(plan.take(1), Some(WorkerFault::StallBeforeResult));
        assert_eq!(plan.take(1), None, "restarts come up clean");
        assert_eq!(plan.take(0), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        for seed in 0..32u64 {
            let a = FaultPlan::from_seed(seed, 3);
            let b = FaultPlan::from_seed(seed, 3);
            for slot in 0..3 {
                assert_eq!(a.peek(slot), b.peek(slot), "seed {seed} slot {slot}");
            }
            assert!(!a.is_empty());
        }
        // the family must exercise more than one fault kind
        let kinds: std::collections::HashSet<String> = (0..32u64)
            .map(|s| {
                let p = FaultPlan::from_seed(s, 3);
                let f = (0..3).find_map(|slot| p.peek(slot)).unwrap();
                format!("{f:?}")
            })
            .collect();
        assert!(kinds.len() >= 4, "seed family too uniform: {kinds:?}");
        assert!(FaultPlan::from_seed(7, 0).is_empty());
    }
}
