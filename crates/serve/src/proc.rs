//! Shard workers and how they are spawned.
//!
//! The worker side of the multi-process shard host is one function,
//! [`run_worker`]: a read-frames/compute/write-frames loop that is
//! *transport-agnostic* — it takes any `Read`/`Write` pair. The real
//! `sparseloop-shard-worker` binary calls [`worker_main`], which wires
//! it to stdin/stdout; the deterministic in-crate tests wire it to
//! in-memory [`pipe`]s via [`ThreadSpawner`] so every fault schedule
//! runs without forking. Both transports execute the *same* worker
//! loop, so the thread-backed tests exercise the protocol and
//! supervision logic the processes use.
//!
//! The supervisor stays transport-agnostic through [`WorkerSpawner`]:
//! spawning yields a [`WorkerHandle`] (send frames, kill) plus a stream
//! of [`WorkerEvent`]s (frames in, exit notices) on a shared channel.
//! [`ProcessSpawner`] backs it with real OS processes — its `kill` is a
//! genuine SIGKILL; [`ThreadSpawner`] backs it with threads — its
//! `kill` closes the pipes, which a live worker observes as EOF.

use crate::fault::{DiePoint, WorkerFault, FAULT_ENV};
use crate::protocol::{
    read_frame, write_frame, write_frame_raw, ExpResult, Frame, ProtocolError, PROTOCOL_VERSION,
};
use sparseloop_core::{EvalSession, JobPlan};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// In-memory pipes (the thread-backed transport)
// ---------------------------------------------------------------------------

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

struct PipeShared {
    state: Mutex<PipeState>,
    cond: Condvar,
}

/// Read end of an in-memory [`pipe`].
pub struct PipeReader(Arc<PipeShared>);

/// Write end of an in-memory [`pipe`].
pub struct PipeWriter(Arc<PipeShared>);

/// An in-memory unidirectional byte pipe with OS-pipe semantics: reads
/// block until data or close, buffered bytes still drain after close,
/// writes to a closed pipe fail with `BrokenPipe`, and dropping either
/// end closes it.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(PipeShared {
        state: Mutex::new(PipeState {
            buf: VecDeque::new(),
            closed: false,
        }),
        cond: Condvar::new(),
    });
    (PipeWriter(Arc::clone(&shared)), PipeReader(shared))
}

impl PipeShared {
    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.cond.notify_all();
    }
}

impl PipeReader {
    /// Closes the pipe from the read end (subsequent writes fail).
    pub fn close(&self) {
        self.0.close();
    }
}

impl PipeWriter {
    /// Closes the pipe from the write end (readers drain, then see EOF).
    pub fn close(&self) {
        self.0.close();
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = self.0.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        st.buf.extend(buf.iter().copied());
        self.0.cond.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.close();
    }
}

// ---------------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------------

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker task panicked".to_string()
    }
}

/// Worker-side phase timings and counters for one task, measured with
/// the worker's own monotonic clock and shipped to the parent as a
/// [`Frame::Stats`] when the task asked for it.
#[derive(Debug, Clone, Copy, Default)]
struct TaskPhases {
    compile_nanos: u64,
    search_nanos: u64,
    generated: u64,
    evaluated: u64,
}

/// Compiles `spec` and evaluates this worker's shard of every search
/// experiment; fixed-mapping experiments are [`ExpResult::Skipped`]
/// (the parent evaluates them locally — no candidate stream to shard).
/// A compile error is a deterministic failure.
fn run_task(
    spec: &str,
    shard: usize,
    shards: usize,
) -> Result<(Vec<ExpResult>, TaskPhases), String> {
    let mut phases = TaskPhases::default();
    let compile_start = std::time::Instant::now();
    let scenario = sparseloop_spec::compile_str(spec)
        .map_err(|e| e.to_string())?
        .into_scenario();
    phases.compile_nanos = elapsed_nanos(compile_start);
    let session = EvalSession::new();
    let mut results = Vec::new();
    let search_start = std::time::Instant::now();
    for exp in scenario.experiments() {
        let job = exp.job();
        match job.plan {
            JobPlan::Fixed(_) => results.push(ExpResult::Skipped),
            JobPlan::Search {
                space,
                mapper,
                objective,
            } => {
                let model = session.model(job.workload, job.arch, job.safs);
                let (winner, stats) =
                    model.search_shard_counted(&space, mapper, objective, shard, shards);
                phases.generated += stats.generated as u64;
                phases.evaluated += stats.evaluated as u64;
                results.push(match winner {
                    Some((value, key, mapping)) => ExpResult::Winner {
                        value,
                        key,
                        stats,
                        mapping,
                    },
                    None => ExpResult::NoWinner { stats },
                });
            }
        }
    }
    phases.search_nanos = elapsed_nanos(search_start);
    Ok((results, phases))
}

fn elapsed_nanos(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The shard-worker loop: handshake, then read [`Frame::Task`]s,
/// heartbeat while computing, and answer with
/// [`Frame::TaskDone`]/[`Frame::TaskFailed`] until shutdown or EOF.
///
/// `fault` injects at most one worker-side failure (see
/// [`WorkerFault`]); it is consumed by the first opportunity to fire.
/// Returning from this function *is* worker death for every transport:
/// the pipes drop, the parent reads EOF.
pub fn run_worker<R, W>(mut reader: R, writer: W, fault: Option<WorkerFault>)
where
    R: Read,
    W: Write + Send + 'static,
{
    let mut fault = fault;
    let writer = Arc::new(Mutex::new(writer));
    if matches!(fault, Some(WorkerFault::DieAt(DiePoint::Startup))) {
        return;
    }
    {
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        if write_frame(
            &mut *w,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .is_err()
        {
            return;
        }
    }
    if matches!(fault, Some(WorkerFault::DieAt(DiePoint::AfterHello))) {
        return;
    }
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return,
        };
        match frame {
            Frame::Task {
                id,
                shard,
                shards,
                heartbeat_ms,
                spec,
                want_stats,
                trace_request,
                trace_parent,
            } => {
                let stop = Arc::new(AtomicBool::new(false));
                let heartbeater = if heartbeat_ms > 0 {
                    let stop = Arc::clone(&stop);
                    let writer = Arc::clone(&writer);
                    Some(std::thread::spawn(move || {
                        let mut seq = 0u64;
                        loop {
                            std::thread::sleep(Duration::from_millis(heartbeat_ms as u64));
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            seq += 1;
                            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                            if write_frame(&mut *w, &Frame::Heartbeat { id, seq }).is_err() {
                                return;
                            }
                        }
                    }))
                } else {
                    None
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_task(&spec, shard as usize, shards as usize)
                }));
                stop.store(true, Ordering::Release);
                if let Some(h) = heartbeater {
                    let _ = h.join();
                }
                let mut stats_frame = None;
                let reply = match outcome {
                    Ok(Ok((results, phases))) => {
                        if want_stats {
                            // Echo the task's trace context so the
                            // parent can anchor these phase timings
                            // under the originating request's dispatch
                            // span.
                            stats_frame = Some(Frame::Stats {
                                id,
                                shard,
                                compile_nanos: phases.compile_nanos,
                                search_nanos: phases.search_nanos,
                                generated: phases.generated,
                                evaluated: phases.evaluated,
                                trace_request,
                                trace_parent,
                            });
                        }
                        Frame::TaskDone { id, results }
                    }
                    Ok(Err(message)) => Frame::TaskFailed {
                        id,
                        deterministic: true,
                        message,
                    },
                    Err(p) => Frame::TaskFailed {
                        id,
                        deterministic: true,
                        message: panic_message(p),
                    },
                };
                match fault.take() {
                    Some(WorkerFault::DieAt(DiePoint::BeforeResult)) => return,
                    Some(WorkerFault::StallBeforeResult) => {
                        // hold the result long past any heartbeat
                        // timeout, then die without sending it
                        for _ in 0..50 {
                            std::thread::sleep(Duration::from_millis(100));
                        }
                        return;
                    }
                    Some(WorkerFault::CorruptResult) => {
                        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                        if write_frame_raw(&mut *w, &reply, /* corrupt */ true).is_err() {
                            return;
                        }
                    }
                    Some(WorkerFault::DropResult) => {}
                    Some(WorkerFault::SlowFrames { delay_ms }) => {
                        // a deterministic straggler: the result is late,
                        // not lost — heartbeats stopped above, so the
                        // delay must stay under the supervisor's
                        // heartbeat timeout (seeded plans keep it small)
                        std::thread::sleep(Duration::from_millis(delay_ms));
                        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                        if let Some(stats) = &stats_frame {
                            if write_frame(&mut *w, stats).is_err() {
                                return;
                            }
                        }
                        if write_frame(&mut *w, &reply).is_err() {
                            return;
                        }
                    }
                    _ => {
                        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                        // Phase timings ride immediately ahead of the
                        // result; a faulting worker (the arms above)
                        // never sends them, keeping fault frame
                        // schedules unchanged.
                        if let Some(stats) = &stats_frame {
                            if write_frame(&mut *w, stats).is_err() {
                                return;
                            }
                        }
                        if write_frame(&mut *w, &reply).is_err() {
                            return;
                        }
                    }
                }
            }
            Frame::Ping { seq } => {
                let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                if write_frame(&mut *w, &Frame::Pong { seq }).is_err() {
                    return;
                }
            }
            Frame::Shutdown => return,
            // anything else on the command stream is a protocol breach;
            // dying loudly beats computing the wrong thing
            _ => return,
        }
    }
}

/// Entry point for the `sparseloop-shard-worker` binary: runs
/// [`run_worker`] over stdin/stdout, with the worker-side fault (if
/// any) taken from the [`FAULT_ENV`] environment variable.
pub fn worker_main() {
    let fault = std::env::var(FAULT_ENV)
        .ok()
        .and_then(|v| WorkerFault::from_env(&v));
    run_worker(io::stdin(), io::stdout(), fault);
}

// ---------------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------------

/// What happened on a worker's output stream.
#[derive(Debug)]
pub enum EventKind {
    /// A frame arrived.
    Frame(Frame),
    /// The stream ended: `None` for clean EOF, `Some(why)` for a
    /// protocol violation (corrupt frame, truncation, pipe error) —
    /// either way the worker is unusable and must be replaced.
    Exited(Option<String>),
}

/// One event from one worker, tagged with the slot it came from and the
/// spawn epoch that produced it — the supervisor discards events from
/// stale epochs (a killed worker's last gasp must not race its
/// replacement).
#[derive(Debug)]
pub struct WorkerEvent {
    /// Worker slot index.
    pub slot: u32,
    /// Spawn epoch of the worker that produced the event.
    pub epoch: u64,
    /// The event.
    pub kind: EventKind,
}

/// The supervisor's grip on one live worker.
pub trait WorkerHandle: Send {
    /// Sends a command frame to the worker.
    fn send(&mut self, frame: &Frame) -> io::Result<()>;
    /// Forcibly terminates the worker (SIGKILL for processes, pipe
    /// close for threads). Idempotent.
    fn kill(&mut self);
}

/// Spawns workers and routes their output onto a shared event channel.
pub trait WorkerSpawner {
    /// Starts one worker for `slot` at `epoch`, injecting `fault`
    /// (worker-side faults only; parent-side faults are the
    /// supervisor's job). Frames and the eventual exit notice arrive on
    /// `events`.
    fn spawn(
        &self,
        slot: u32,
        epoch: u64,
        fault: Option<WorkerFault>,
        events: mpsc::Sender<WorkerEvent>,
    ) -> io::Result<Box<dyn WorkerHandle>>;
}

fn forward_events<R: Read + Send + 'static>(
    mut reader: R,
    slot: u32,
    epoch: u64,
    events: mpsc::Sender<WorkerEvent>,
) {
    std::thread::spawn(move || loop {
        let kind = match read_frame(&mut reader) {
            Ok(frame) => EventKind::Frame(frame),
            Err(ProtocolError::Eof) => EventKind::Exited(None),
            Err(e) => EventKind::Exited(Some(e.to_string())),
        };
        let done = matches!(kind, EventKind::Exited(_));
        if events.send(WorkerEvent { slot, epoch, kind }).is_err() || done {
            return;
        }
    });
}

/// Thread-backed workers over in-memory pipes — the deterministic
/// transport for fault-injection tests. `kill` closes both pipes: a
/// worker blocked on its command stream dies immediately; one
/// mid-compute finishes into a dead pipe and exits, its late frames
/// discarded by the epoch check.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSpawner;

struct ThreadHandle {
    commands: PipeWriter,
    worker_output: Arc<PipeShared>,
}

impl WorkerHandle for ThreadHandle {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.commands, frame)
    }

    fn kill(&mut self) {
        self.commands.close();
        self.worker_output.close();
    }
}

impl WorkerSpawner for ThreadSpawner {
    fn spawn(
        &self,
        slot: u32,
        epoch: u64,
        fault: Option<WorkerFault>,
        events: mpsc::Sender<WorkerEvent>,
    ) -> io::Result<Box<dyn WorkerHandle>> {
        let (commands_w, commands_r) = pipe();
        let (results_w, results_r) = pipe();
        let worker_output = Arc::clone(&results_r.0);
        std::thread::spawn(move || run_worker(commands_r, results_w, fault));
        forward_events(results_r, slot, epoch, events);
        Ok(Box::new(ThreadHandle {
            commands: commands_w,
            worker_output,
        }))
    }
}

/// Process-backed workers: spawns `program` with piped stdin/stdout
/// (the `sparseloop-shard-worker` binary), ships worker-side faults via
/// [`FAULT_ENV`], and delivers `kill` as a real signal.
#[derive(Debug, Clone)]
pub struct ProcessSpawner {
    program: PathBuf,
}

impl ProcessSpawner {
    /// A spawner launching `program` per worker.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ProcessSpawner {
            program: program.into(),
        }
    }
}

struct ProcessHandle {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
}

impl WorkerHandle for ProcessHandle {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        match self.stdin.as_mut() {
            Some(stdin) => write_frame(stdin, frame),
            None => Err(io::Error::new(io::ErrorKind::BrokenPipe, "worker killed")),
        }
    }

    fn kill(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

impl WorkerSpawner for ProcessSpawner {
    fn spawn(
        &self,
        slot: u32,
        epoch: u64,
        fault: Option<WorkerFault>,
        events: mpsc::Sender<WorkerEvent>,
    ) -> io::Result<Box<dyn WorkerHandle>> {
        let mut cmd = std::process::Command::new(&self.program);
        cmd.stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null());
        if let Some(env) = fault.and_then(WorkerFault::to_env) {
            cmd.env(FAULT_ENV, env);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        forward_events(stdout, slot, epoch, events);
        Ok(Box::new(ProcessHandle {
            child,
            stdin: Some(stdin),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipes_behave_like_os_pipes() {
        let (mut w, mut r) = pipe();
        w.write_all(b"abc").unwrap();
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        w.close();
        // buffered data drains after close, then clean EOF
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"c");
        assert!(w.write_all(b"x").is_err(), "write after close fails");
    }

    #[test]
    fn blocked_reader_wakes_on_close() {
        let (w, mut r) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            r.read(&mut buf).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        w.close();
        assert_eq!(t.join().unwrap(), 0);
    }

    #[test]
    fn worker_handshakes_and_shuts_down() {
        let (tx, rx) = mpsc::channel();
        let mut handle = ThreadSpawner.spawn(0, 1, None, tx).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            WorkerEvent {
                slot: 0,
                epoch: 1,
                kind: EventKind::Frame(Frame::Hello { version }),
            } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected hello, got {other:?}"),
        }
        handle.send(&Frame::Shutdown).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap().kind {
            EventKind::Exited(None) => {}
            other => panic!("expected clean exit, got {other:?}"),
        }
    }

    #[test]
    fn startup_fault_spawns_a_silent_corpse() {
        let (tx, rx) = mpsc::channel();
        let _handle = ThreadSpawner
            .spawn(2, 7, Some(WorkerFault::DieAt(DiePoint::Startup)), tx)
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            WorkerEvent {
                slot: 2,
                epoch: 7,
                kind: EventKind::Exited(None),
            } => {}
            other => panic!("expected exit without hello, got {other:?}"),
        }
    }

    #[test]
    fn idle_worker_answers_pings() {
        let (tx, rx) = mpsc::channel();
        let mut handle = ThreadSpawner.spawn(0, 1, None, tx).unwrap();
        // hello
        let _ = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        for seq in [5u64, 6, 7] {
            handle.send(&Frame::Ping { seq }).unwrap();
            match rx.recv_timeout(Duration::from_secs(5)).unwrap().kind {
                EventKind::Frame(Frame::Pong { seq: got }) => assert_eq!(got, seq),
                other => panic!("expected pong {seq}, got {other:?}"),
            }
        }
        // a ping is not a protocol breach: the worker still serves tasks
        handle
            .send(&Frame::Task {
                id: 1,
                shard: 0,
                shards: 1,
                heartbeat_ms: 0,
                spec: "scenario:\n  nonsense: true\n".into(),
                want_stats: false,
                trace_request: 0,
                trace_parent: 0,
            })
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap().kind {
            EventKind::Frame(Frame::TaskFailed { id: 1, .. }) => {}
            other => panic!("expected task reply after pings, got {other:?}"),
        }
        handle.kill();
    }

    #[test]
    fn bad_spec_fails_deterministically() {
        let (tx, rx) = mpsc::channel();
        let mut handle = ThreadSpawner.spawn(0, 1, None, tx).unwrap();
        // hello
        let _ = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        handle
            .send(&Frame::Task {
                id: 3,
                shard: 0,
                shards: 1,
                heartbeat_ms: 0,
                spec: "scenario:\n  nonsense: true\n".into(),
                want_stats: false,
                trace_request: 0,
                trace_parent: 0,
            })
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap().kind {
            EventKind::Frame(Frame::TaskFailed {
                id: 3,
                deterministic: true,
                ..
            }) => {}
            other => panic!("expected deterministic failure, got {other:?}"),
        }
        handle.kill();
    }
}
