//! # sparseloop-serve
//!
//! A long-lived, queue-driven evaluation service over shared-cache
//! sessions — the serving front for Sparseloop's analytical model.
//!
//! Search frameworks drive the model with thousands of evaluation
//! requests (SparseMap-style outer loops, design-space sweeps, paper
//! reproductions). Spinning a fresh [`EvalSession`] per request throws
//! the shared density/format caches away; calling one session from many
//! uncoordinated threads gives no admission control and no lifecycle.
//! [`EvalService`] packages the production shape:
//!
//! * **Bounded queue, explicit backpressure** — requests enter through
//!   an in-process MPSC queue with a hard admission capacity;
//!   [`EvalService::submit`] fails fast with
//!   [`SubmitError::QueueFull`] when the service is saturated
//!   (callers that prefer to wait use
//!   [`EvalService::submit_blocking`]).
//! * **Worker pool over one shared session** — `workers` threads pop
//!   requests and evaluate them through one [`EvalSession`], so density
//!   aggregates and format analyses are shared *across requests*; each
//!   search job additionally shards its candidate stream over `shards`
//!   disjoint sub-iterators ([`Mapspace::shards`]) with results
//!   bit-identical to unsharded search at any worker/shard count.
//! * **Per-request response channels** — every submission returns a
//!   [`Ticket`] resolving to the request's [`ServeReply`].
//! * **Session recycling** — the session's intern maps grow with
//!   workload diversity and cannot be evicted safely (issued cache
//!   slots stay referenced by live models). Under a configured
//!   [`ServeConfig::recycle_slot_budget`], the service retires the
//!   session generation once its slot count reaches the budget and
//!   starts a fresh one; in-flight requests keep their generation
//!   alive, so recycling is invisible except in [`ServiceStats`].
//! * **Deadlines and cancellation** — every ticket carries a
//!   [`CancelToken`]; [`EvalService::submit_with_deadline`] arms it
//!   with a wall clock, and a timed-out or dropped ticket trips it, so
//!   abandoned requests stop at the next cancellation checkpoint and
//!   land in [`ServiceStats`]'s `canceled` bucket
//!   (`submitted == completed + panicked + canceled` always holds).
//! * **Graceful shutdown** — [`EvalService::shutdown`] (and `Drop`)
//!   refuses new admissions, drains every queued request so no ticket
//!   hangs, and joins the workers.
//!
//! ## Multi-process shard serving
//!
//! For fault isolation beyond a thread boundary, [`ShardHost`]
//! supervises a fleet of **worker processes** (one per shard) that
//! speak a dependency-free length-prefixed frame protocol over
//! stdin/stdout ([`protocol`]): the parent dispatches spec text plus a
//! shard assignment, workers stream heartbeats and shard winners back,
//! and the parent merges exactly like in-process `search_sharded` —
//! bit-identical results under *any* kill schedule. Worker death
//! (stream EOF or heartbeat silence) triggers re-dispatch of the
//! orphaned shard with exponential backoff; deterministic failures are
//! never retried; unspawnable fleets degrade to in-process execution.
//! The [`fault`] module injects failures deterministically — die at
//! fixed checkpoints, stall, corrupt or drop result frames, parent-side
//! SIGKILL after m frames — from hand-built or seeded
//! ([`FaultPlan::from_seed`]) schedules, which is what lets the
//! fault-injection suite assert bit-identity rather than mere survival.
//!
//! ## Overload protection and pooled fleets
//!
//! The service and the fleet compose into an overload-resilient stack:
//!
//! * **Priority admission and load shedding** — submissions carry a
//!   [`Priority`] (interactive > batch > background); the queue drains
//!   strictly by band, a full queue displaces the *youngest
//!   lowest-priority* entrant to admit higher-priority work (the victim
//!   resolves to [`ServeError::Shed`] with an EWMA-derived
//!   `retry_after_hint`), and a configured
//!   [`ServeConfig::with_shed_watermark`] refuses background arrivals
//!   early ([`SubmitError::Shed`]) before the queue saturates. The
//!   stats identity extends to
//!   `submitted == completed + panicked + canceled + shed`.
//! * **Circuit breaker** — consecutive spawn failures or worker losses
//!   trip a per-fleet [`CircuitBreaker`] (closed → open → half-open);
//!   while open, requests short-circuit to degraded in-process
//!   execution (still bit-identical) instead of re-paying the failure,
//!   and after a cooldown a single probe request tests recovery. State
//!   is observable via the `sparseloop_fleet_breaker_state` gauge.
//! * **Hedged dispatch** — with [`HostConfig::with_hedging`], a shard
//!   whose result is overdue (latency-derived delay) is re-dispatched
//!   to a spare worker and the first reply wins — safe precisely
//!   because replies are bit-identical; a token bucket caps hedge
//!   amplification.
//! * **Prewarmed pools** — [`FleetPool`] keeps long-lived
//!   [`ShardHost`]s checked in/out across requests (amortizing spawn +
//!   handshake), sweeps idle hosts with Ping/Pong health probes, and
//!   proactively replaces silent workers;
//!   [`EvalService::start_with_fleet`] routes scenario/spec requests
//!   through the pool and falls back in-process on fleet machinery
//!   failures without surfacing them to callers.
//!
//! ```
//! use sparseloop_serve::{EvalService, ServeConfig};
//!
//! let service = EvalService::start(
//!     ServeConfig::default().with_workers(2).with_shards(2),
//! );
//! let ticket = service.submit_scenario("fig1_format_tradeoff").unwrap();
//! let reply = ticket.wait().unwrap().into_scenario();
//! assert!(reply.results.iter().all(Result::is_ok));
//! service.shutdown();
//! ```
//!
//! [`EvalSession`]: sparseloop_core::EvalSession
//! [`Mapspace::shards`]: sparseloop_mapping::Mapspace::shards

pub mod breaker;
pub mod fault;
pub mod pool;
pub mod proc;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod supervisor;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use fault::{DiePoint, FaultPlan, WorkerFault};
pub use pool::{FleetPool, FleetPoolConfig, PoolStats};
pub use proc::{run_worker, worker_main, ProcessSpawner, ThreadSpawner, WorkerSpawner};
pub use protocol::{Frame, ProtocolError, PROTOCOL_VERSION};
pub use queue::{Admission, BoundedQueue, Priority, PushError};
pub use service::{
    scenario_reply, CancelToken, EvalService, ScenarioReply, ServeConfig, ServeError, ServeReply,
    ServeRequest, ServiceStats, SpecDiagnostic, SubmitError, Ticket,
};
pub use supervisor::{HealthReport, HedgeConfig, HostConfig, HostError, HostStats, ShardHost};
