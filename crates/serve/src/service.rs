//! The evaluation service: long-lived workers, one shared session,
//! bounded admission, recycling, graceful shutdown.

use crate::pool::FleetPool;
use crate::queue::{Admission, BoundedQueue, Priority};
use crate::supervisor::HostError;
use sparseloop_core::{EvalJob, EvalSession, JobError, JobOutcome};
use sparseloop_designs::ScenarioRegistry;
use sparseloop_mapping::SearchStats;
use sparseloop_obs::{
    Counter, Gauge, HealthStatus, Histogram, MetricsSnapshot, ObsHub, ObsServer, ObsServerHooks,
    RecordedRequest, RequestOutcome, SpanKind, TraceContext, LATENCY_BUCKETS_NANOS,
};
use sparseloop_spec::SpecError;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration (builder-style, all knobs defaulted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Queue workers: requests processed concurrently (each search job
    /// additionally fans its candidate stream over `shards`).
    pub workers: usize,
    /// Bounded queue capacity; [`EvalService::submit`] refuses admission
    /// beyond it (backpressure).
    pub queue_capacity: usize,
    /// Shard count for search jobs
    /// ([`EvalSession::search_batch_sharded`]); results are bit-identical
    /// at any value.
    pub shards: usize,
    /// Recycle the shared session once its intern maps hold at least
    /// this many slots (density models + format slots). `None`: never
    /// recycle — only safe for bounded workload diversity.
    pub recycle_slot_budget: Option<usize>,
    /// High-watermark load shedding: once the queue holds at least this
    /// many requests, [`Priority::Background`] arrivals are refused
    /// early with [`SubmitError::Shed`] instead of riding the queue to
    /// capacity. `0` disables early shedding (watermark == capacity).
    pub shed_watermark: usize,
    /// Bind address for the dependency-free HTTP observability server
    /// (`GET /metrics`, `/healthz`, `/traces`). `None` (the default)
    /// serves nothing; requires the service to be started with an
    /// [`ObsHub`] to take effect.
    pub obs_server_addr: Option<SocketAddr>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            shards: 1,
            recycle_slot_budget: None,
            shed_watermark: 0,
            obs_server_addr: None,
        }
    }
}

impl ServeConfig {
    /// Sets the worker count (`>= 1`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission capacity (`>= 1`).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-job shard count (`>= 1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the session recycling budget.
    pub fn with_recycle_slot_budget(mut self, budget: usize) -> Self {
        self.recycle_slot_budget = Some(budget);
        self
    }

    /// Sets the early-shedding watermark (clamped to the capacity at
    /// admission time; `0` disables).
    pub fn with_shed_watermark(mut self, watermark: usize) -> Self {
        self.shed_watermark = watermark;
        self
    }

    /// Serves `GET /metrics`, `/healthz`, and `/traces` over plain
    /// HTTP/1.1 on `addr` (std::net only — no dependencies). Bind to
    /// port 0 for an ephemeral port, readable back via
    /// [`EvalService::obs_http_addr`]. Ignored unless the service is
    /// started with an [`ObsHub`].
    pub fn with_obs_server(mut self, addr: SocketAddr) -> Self {
        self.obs_server_addr = Some(addr);
        self
    }
}

/// One unit of work accepted by the queue.
#[derive(Debug)]
pub enum ServeRequest {
    /// Evaluate a single job (fixed mapping or mapspace search).
    Job(Box<EvalJob>),
    /// Run a registered scenario by name (see
    /// [`ScenarioRegistry::standard`]).
    Scenario(String),
    /// Compile an inline spec document (see `sparseloop-spec`) and run
    /// the resulting scenario through the shared session — declarative
    /// clients submit spec text, no registry entry required. Results are
    /// bit-identical to registering the same scenario and running it by
    /// name.
    Spec(String),
}

/// A successfully processed request's payload.
#[derive(Debug)]
pub enum ServeReply {
    /// The job's outcome (an `Err` preserves why the job itself failed —
    /// the *request* was processed fine).
    Job(Box<Result<JobOutcome, JobError>>),
    /// The scenario's per-experiment outcomes.
    Scenario(ScenarioReply),
}

impl ServeReply {
    /// The job result, panicking on a scenario reply (test/bench sugar).
    pub fn into_job(self) -> Result<JobOutcome, JobError> {
        match self {
            ServeReply::Job(r) => *r,
            ServeReply::Scenario(s) => panic!("expected a job reply, got scenario {:?}", s.name),
        }
    }

    /// The scenario reply, panicking on a job reply (test/bench sugar).
    pub fn into_scenario(self) -> ScenarioReply {
        match self {
            ServeReply::Scenario(s) => s,
            ServeReply::Job(_) => panic!("expected a scenario reply, got a job"),
        }
    }
}

/// A served scenario's outcomes, index-aligned with its experiments.
#[derive(Debug)]
pub struct ScenarioReply {
    /// The scenario's registry name.
    pub name: String,
    /// Experiment labels, in registry order.
    pub labels: Vec<String>,
    /// Whether each experiment's result is required to be non-empty.
    pub required: Vec<bool>,
    /// Per-experiment outcome.
    pub results: Vec<Result<JobOutcome, JobError>>,
    /// Wall time of the scenario's batch inside the worker.
    pub wall_seconds: f64,
}

/// A spec front-end failure flattened into a plain-data payload that
/// errors across the serving stack can carry without depending on the
/// front-end's internal span types — the file and line:column survive
/// intact rather than collapsing into a pre-rendered string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDiagnostic {
    /// Originating file, when known (`None` for in-memory text).
    pub file: Option<String>,
    /// 1-based line of the problem.
    pub line: usize,
    /// 1-based column of the problem.
    pub col: usize,
    /// What the problem is.
    pub message: String,
    /// The offending source line, trimmed (empty when unavailable).
    pub context: String,
}

impl From<&SpecError> for SpecDiagnostic {
    fn from(e: &SpecError) -> Self {
        SpecDiagnostic {
            file: e.file.clone(),
            line: e.span.line,
            col: e.span.col,
            message: e.message.clone(),
            context: e.context.clone(),
        }
    }
}

impl std::fmt::Display for SpecDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let file = self.file.as_deref().unwrap_or("<spec>");
        write!(f, "{file}:{}:{}: {}", self.line, self.col, self.message)?;
        if !self.context.is_empty() {
            write!(f, "\n  | {}", self.context)?;
        }
        Ok(())
    }
}

/// Why a request produced no [`ServeReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The scenario name is not registered.
    UnknownScenario(String),
    /// An inline spec document failed to parse or compile; the payload
    /// preserves the spec front-end's position (file, line:column) and
    /// source excerpt as structured fields.
    InvalidSpec(SpecDiagnostic),
    /// The worker panicked while processing the request; the shared
    /// session was force-recycled so later requests start clean.
    Panicked(String),
    /// The request was canceled before a worker finished it: the
    /// service was torn down, the ticket was abandoned (dropped or
    /// timed out), or its deadline expired.
    Canceled,
    /// The request was admitted, then evicted from the queue by a
    /// strictly higher-priority arrival under overload. Back off for at
    /// least the hint (derived from observed request latency) before
    /// resubmitting.
    Shed {
        /// Suggested minimum wait before retrying.
        retry_after_hint: Duration,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownScenario(name) => write!(f, "no scenario named {name:?}"),
            ServeError::InvalidSpec(diag) => write!(f, "invalid spec: {diag}"),
            ServeError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            ServeError::Canceled => write!(f, "request canceled before completion"),
            ServeError::Shed { retry_after_hint } => write!(
                f,
                "request shed under overload; retry after {retry_after_hint:?}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a request was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity with nothing lower-priority to
    /// displace — backpressure; retry later or use
    /// [`EvalService::submit_blocking`].
    QueueFull {
        /// Requests queued at refusal time.
        depth: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
    /// The shed watermark refused this [`Priority::Background`] arrival
    /// early: the service is saturated enough that background work
    /// would only be displaced later anyway.
    Shed {
        /// Requests queued at refusal time.
        depth: usize,
        /// The configured admission capacity.
        capacity: usize,
        /// Suggested minimum wait before retrying (derived from
        /// observed request latency).
        retry_after_hint: Duration,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth} queued of capacity {capacity})")
            }
            SubmitError::Shed {
                depth,
                capacity,
                retry_after_hint,
            } => write!(
                f,
                "shed under overload ({depth} queued of capacity {capacity}); \
                 retry after {retry_after_hint:?}"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A shared cancellation signal for one request.
///
/// The token trips either explicitly ([`cancel`](CancelToken::cancel))
/// or implicitly when its deadline passes; once tripped it stays
/// tripped. Service workers probe it at every *cancellation
/// checkpoint* — the generation-retirement seams between jobs and
/// experiments — so a canceled request stops consuming its worker at
/// the next seam rather than running to completion. Work already past
/// its last checkpoint finishes normally (checkpoints are retirement
/// seams, not preemption points), keeping completed results
/// bit-identical to an uncanceled run.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    canceled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only trips explicitly.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips on its own once `deadline` elapses.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                canceled: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
            }),
        }
    }

    /// Trips the token (idempotent).
    pub fn cancel(&self) {
        self.inner.canceled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_canceled(&self) -> bool {
        self.inner.canceled.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The per-request response handle: blocks until the worker replies.
///
/// A thin wrapper over a one-shot `std::sync::mpsc` channel: the worker
/// sends exactly one reply; a worker torn down mid-request drops its
/// sender, which resolves the ticket to [`ServeError::Canceled`]
/// instead of hanging it.
///
/// Abandoning a ticket cancels its request: both
/// [`wait_timeout`](Ticket::wait_timeout) expiring and dropping the
/// ticket unwaited trip the request's [`CancelToken`], so a request
/// nobody is waiting for stops occupying a worker at the next
/// cancellation checkpoint instead of running to completion unobserved
/// (counted as `canceled` in [`ServiceStats`]).
pub struct Ticket {
    receiver: mpsc::Receiver<Result<ServeReply, ServeError>>,
    cancel: CancelToken,
}

impl Ticket {
    /// The request's cancellation token (cloneable; trip it to abandon
    /// the request from anywhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cancels the request; a worker that has not finished it stops at
    /// the next cancellation checkpoint.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Waits for the request's reply.
    pub fn wait(self) -> Result<ServeReply, ServeError> {
        self.receiver.recv().unwrap_or(Err(ServeError::Canceled))
    }

    /// Waits up to `timeout`; hands the ticket back on timeout — and
    /// **cancels the request**, so the timed-out work stops at the next
    /// cancellation checkpoint instead of silently consuming a worker.
    /// A later [`wait`](Ticket::wait) on the returned ticket still
    /// resolves (to whatever the worker managed before the
    /// cancellation took effect).
    pub fn wait_timeout(
        self,
        timeout: std::time::Duration,
    ) -> Result<Result<ServeReply, ServeError>, Ticket> {
        match self.receiver.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Err(ServeError::Canceled)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.cancel.cancel();
                Err(self)
            }
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // dropping an unresolved ticket abandons the request; a ticket
        // consumed by `wait` cancels after the reply, which is a no-op
        self.cancel.cancel();
    }
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests refused at admission (backpressure).
    pub rejected: u64,
    /// Requests processed and replied (whatever the job-level outcome).
    pub completed: u64,
    /// Requests whose processing panicked (the session was recycled).
    pub panicked: u64,
    /// Requests canceled before completion (abandoned tickets, expired
    /// deadlines, explicit [`Ticket::cancel`]). Every admitted request
    /// lands in exactly one bucket:
    /// `submitted == completed + panicked + canceled + shed` once
    /// drained.
    pub canceled: u64,
    /// Requests admitted, then evicted from the queue by a strictly
    /// higher-priority arrival under overload (their tickets resolve to
    /// [`ServeError::Shed`]).
    pub shed: u64,
    /// Requests whose evaluation was dispatched to an attached
    /// worker-process fleet ([`FleetPool`]).
    pub fleet_dispatched: u64,
    /// Fleet dispatches that fell back to in-process evaluation because
    /// the fleet *machinery* failed (lost workers, expired host
    /// deadline) — never because the workload failed.
    pub fleet_fallbacks: u64,
    /// Times the shared session was recycled.
    pub recycles: u64,
    /// Largest intern-slot count ever observed after a request
    /// (density models + format slots).
    pub peak_slots: u64,
    /// Requests currently queued (snapshot).
    pub queued: usize,
    /// Intern slots held by the *current* session generation (snapshot).
    pub session_slots: usize,
}

struct Work {
    request: ServeRequest,
    responder: mpsc::Sender<Result<ServeReply, ServeError>>,
    cancel: CancelToken,
    /// Process-unique request id for tracing (0 when unobserved).
    request_id: u64,
    /// Hub-clock reading at admission (0 when unobserved) — anchors the
    /// `QueueWait` span and the queue-wait histogram.
    enqueued_nanos: u64,
}

/// The related request counters, guarded by **one** mutex so a snapshot
/// can never mix two moments: `submitted` is incremented *before* the
/// queue push (and rolled back on refusal), and every completion bucket
/// is incremented under the same lock — so any snapshot observes
/// `submitted >= completed + panicked + canceled + shed`, with equality
/// once the queue drains.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    submitted: u64,
    rejected: u64,
    completed: u64,
    panicked: u64,
    canceled: u64,
    shed: u64,
    fleet_dispatched: u64,
    fleet_fallbacks: u64,
    recycles: u64,
    peak_slots: u64,
}

/// Pre-registered metric handles for the service's hot path (one
/// `Option` check + relaxed atomics per event; no registry lookups).
struct ServeObs {
    hub: ObsHub,
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    panicked: Counter,
    canceled: Counter,
    shed: Counter,
    fleet_dispatched: Counter,
    fleet_fallback: Counter,
    recycles: Counter,
    queue_wait: Histogram,
    latency: Histogram,
    /// Mapper funnel counters: generated, pruned, evaluated, invalid.
    mapper: [Counter; 4],
    /// Live queue depth, re-synced from the queue's own length after
    /// every admission, displacement, and pop — an absolute set, so the
    /// gauge can never drift negative or double-count.
    queue_depth: Gauge,
}

impl ServeObs {
    fn new(hub: ObsHub, config: &ServeConfig) -> Self {
        hub.set_protocol_version(crate::protocol::PROTOCOL_VERSION);
        let reg = hub.registry();
        let outcome = |o: &str| reg.counter("sparseloop_requests_total", &[("outcome", o)]);
        let stage = |s: &str| reg.counter("sparseloop_mapper_candidates_total", &[("stage", s)]);
        // pre-register the gauges so empty snapshots still show them
        reg.gauge("sparseloop_queue_capacity", &[])
            .set_u64(config.queue_capacity as u64);
        let queue_depth = reg.gauge("sparseloop_queue_depth", &[]);
        queue_depth.set(0);
        ServeObs {
            queue_depth,
            submitted: outcome("submitted"),
            rejected: outcome("rejected"),
            completed: outcome("completed"),
            panicked: outcome("panicked"),
            canceled: outcome("canceled"),
            shed: outcome("shed"),
            fleet_dispatched: reg
                .counter("sparseloop_service_fleet_total", &[("kind", "dispatched")]),
            fleet_fallback: reg.counter("sparseloop_service_fleet_total", &[("kind", "fallback")]),
            recycles: reg.counter("sparseloop_session_recycles_total", &[]),
            queue_wait: reg.histogram("sparseloop_queue_wait_nanos", &[], LATENCY_BUCKETS_NANOS),
            latency: reg.histogram(
                "sparseloop_request_latency_nanos",
                &[],
                LATENCY_BUCKETS_NANOS,
            ),
            mapper: [
                stage("generated"),
                stage("pruned"),
                stage("evaluated"),
                stage("invalid"),
            ],
            hub,
        }
    }

    fn absorb_search_stats(&self, stats: &SearchStats) {
        self.mapper[0].add(stats.generated as u64);
        self.mapper[1].add(stats.pruned as u64);
        self.mapper[2].add(stats.evaluated as u64);
        self.mapper[3].add(stats.invalid as u64);
    }

    /// Folds the mapper funnel counters out of a finished reply.
    fn absorb_reply(&self, reply: &Result<ServeReply, ServeError>) {
        match reply {
            Ok(ServeReply::Job(result)) => match &**result {
                Ok(outcome) => self.absorb_search_stats(&outcome.stats),
                Err(JobError::NoValidCandidate { stats }) => self.absorb_search_stats(stats),
                Err(_) => {}
            },
            Ok(ServeReply::Scenario(scenario)) => {
                for result in &scenario.results {
                    match result {
                        Ok(outcome) => self.absorb_search_stats(&outcome.stats),
                        Err(JobError::NoValidCandidate { stats }) => {
                            self.absorb_search_stats(stats)
                        }
                        Err(_) => {}
                    }
                }
            }
            Err(_) => {}
        }
    }
}

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<Work>,
    registry: ScenarioRegistry,
    /// The current session generation. Workers clone the `Arc` per
    /// request; recycling swaps the slot, so in-flight requests keep
    /// their generation alive while new requests start clean.
    session: Mutex<Arc<EvalSession>>,
    counters: Mutex<Counters>,
    obs: Option<ServeObs>,
    /// An optional shared worker-process fleet: `Scenario`/`Spec`
    /// requests dispatch to pooled [`ShardHost`]s (bit-identical to
    /// in-process evaluation) and fall back in process when the fleet
    /// machinery fails. `Job` requests always run in process — they
    /// have no wire form.
    ///
    /// [`ShardHost`]: crate::supervisor::ShardHost
    fleet: Option<FleetPool>,
    /// Exponentially weighted request latency in nanos — the basis for
    /// shed `retry_after_hint`s. `0` until the first completion.
    ewma_latency_nanos: AtomicU64,
}

impl Shared {
    fn current_session(&self) -> Arc<EvalSession> {
        Arc::clone(&self.session.lock().expect("session slot poisoned"))
    }

    fn counters(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.counters.lock().expect("counters poisoned")
    }

    /// Folds one completed request's wall time into the latency EWMA
    /// (weight 1/4 — responsive to load shifts without tracking noise).
    fn note_latency(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let old = self.ewma_latency_nanos.load(Ordering::Relaxed);
        let next = if old == 0 {
            nanos
        } else {
            old / 4 * 3 + nanos / 4
        };
        self.ewma_latency_nanos.store(next, Ordering::Relaxed);
    }

    /// How long a shed caller should wait before resubmitting: the
    /// latency EWMA, floored at 1ms so the hint is never degenerate
    /// before the first completion.
    fn retry_after_hint(&self) -> Duration {
        Duration::from_nanos(
            self.ewma_latency_nanos
                .load(Ordering::Relaxed)
                .max(1_000_000),
        )
    }

    /// Renders a point-in-time metrics snapshot, refreshing the
    /// session/queue gauges first so the text reflects *now* rather
    /// than the last request. Lives on `Shared` (not the service
    /// handle) so the observability HTTP server's snapshot hook can
    /// call it from its own thread.
    fn snapshot_now(&self) -> Option<MetricsSnapshot> {
        let obs = self.obs.as_ref()?;
        let reg = obs.hub.registry();
        let session = self.current_session();
        let s = session.stats();
        reg.gauge("sparseloop_session_slots", &[])
            .set_u64(s.total_slots() as u64);
        reg.gauge("sparseloop_session_density_models", &[])
            .set_u64(s.density_models as u64);
        reg.gauge("sparseloop_session_format_slots", &[])
            .set_u64(s.format_slots as u64);
        reg.gauge("sparseloop_session_peak_slots", &[])
            .set_u64(self.counters().peak_slots);
        // gauges, not counters: the memo resets when the session
        // recycles, so hit/miss counts are not monotonic
        reg.gauge("sparseloop_session_format_cache", &[("kind", "hit")])
            .set_u64(s.format.hits);
        reg.gauge("sparseloop_session_format_cache", &[("kind", "miss")])
            .set_u64(s.format.misses);
        self.sync_queue_depth();
        Some(obs.hub.snapshot())
    }

    /// The effective shed watermark (0 configures "queue capacity").
    fn effective_watermark(&self) -> usize {
        match self.config.shed_watermark {
            0 => self.queue.capacity(),
            w => w.min(self.queue.capacity()),
        }
    }

    /// Liveness verdict for `GET /healthz`: unhealthy while the fleet
    /// circuit breaker is open (requests are being served degraded) or
    /// the queue has reached the shed watermark (admissions are being
    /// refused). Both conditions clear on their own, so 503 here means
    /// "back off", not "dead".
    fn health_status(&self) -> HealthStatus {
        let breaker_open = self
            .obs
            .as_ref()
            .map(|o| {
                o.hub
                    .registry()
                    .gauge("sparseloop_fleet_breaker_state", &[])
            })
            .is_some_and(|g| g.get() == 1);
        let depth = self.queue.len();
        let watermark = self.effective_watermark();
        if breaker_open {
            HealthStatus {
                healthy: false,
                detail: "fleet circuit breaker open".to_string(),
            }
        } else if depth >= watermark {
            HealthStatus {
                healthy: false,
                detail: format!("queue depth {depth} at shed watermark {watermark}"),
            }
        } else {
            HealthStatus {
                healthy: true,
                detail: format!("queue depth {depth}/{watermark}"),
            }
        }
    }

    /// Re-syncs the queue-depth gauge from the queue's own length. An
    /// absolute set after every transition (admit, displace, pop) — the
    /// gauge can never drift negative or double-count the way paired
    /// inc/dec bookkeeping can.
    fn sync_queue_depth(&self) {
        if let Some(obs) = &self.obs {
            obs.queue_depth.set_u64(self.queue.len() as u64);
        }
    }

    /// Offers one finished request to the flight recorder, tagging it
    /// with its terminal outcome. Cheap successful requests are dropped
    /// inside [`FlightRecorder::record`]; anything interesting keeps
    /// its complete span tree for `/traces`.
    ///
    /// [`FlightRecorder::record`]: sparseloop_obs::FlightRecorder::record
    fn record_outcome(&self, request_id: u64, enqueued_nanos: u64, outcome: RequestOutcome) {
        let Some(obs) = &self.obs else { return };
        let now = obs.hub.now_nanos();
        let events = obs.hub.traces().events_for(request_id);
        let hedged = events.iter().any(|e| e.kind == SpanKind::HedgeDispatch);
        obs.hub.recorder().record(RecordedRequest {
            request_id,
            outcome,
            latency_nanos: now.saturating_sub(enqueued_nanos),
            hedged,
            completed_nanos: now,
            events,
        });
    }

    /// Books a displaced queue victim: it was admitted (already counted
    /// `submitted`), so it must land in exactly one completion bucket —
    /// `shed` — and its ticket resolves immediately to
    /// [`ServeError::Shed`].
    fn shed_victim(&self, victim: Work) {
        self.counters().shed += 1;
        if let Some(obs) = &self.obs {
            obs.shed.inc();
        }
        self.record_outcome(
            victim.request_id,
            victim.enqueued_nanos,
            RequestOutcome::Shed,
        );
        let _ = victim.responder.send(Err(ServeError::Shed {
            retry_after_hint: self.retry_after_hint(),
        }));
    }

    /// Dispatches spec text to the attached fleet. `Ok(None)` means
    /// "evaluate in process instead": no fleet, or the fleet lost its
    /// workers / ran out of host deadline — failures of the machinery,
    /// not the workload (`degraded` is set so the flight recorder can
    /// tag the request). Deterministic workload failures surface as
    /// real errors so fallback never masks a bad request.
    fn try_fleet(
        &self,
        text: &str,
        ctx: TraceContext,
        degraded: &mut bool,
    ) -> Result<Option<ScenarioReply>, ServeError> {
        let Some(fleet) = &self.fleet else {
            return Ok(None);
        };
        self.counters().fleet_dispatched += 1;
        if let Some(obs) = &self.obs {
            obs.fleet_dispatched.inc();
        }
        match fleet.run_spec_traced(text, Some(ctx)) {
            Ok(reply) => Ok(Some(reply)),
            Err(HostError::InvalidSpec(diag)) => Err(ServeError::InvalidSpec(diag)),
            Err(HostError::TaskFailed { message }) => Err(ServeError::Panicked(message)),
            Err(HostError::WorkerLost { .. } | HostError::DeadlineExceeded) => {
                self.counters().fleet_fallbacks += 1;
                if let Some(obs) = &self.obs {
                    obs.fleet_fallback.inc();
                }
                *degraded = true;
                Ok(None)
            }
        }
    }

    fn process(
        &self,
        request: &ServeRequest,
        session: &EvalSession,
        cancel: &CancelToken,
        ctx: TraceContext,
        degraded: &mut bool,
    ) -> Result<ServeReply, ServeError> {
        let probe = || cancel.is_canceled();
        let probe: Option<&(dyn Fn() -> bool + Sync)> = Some(&probe);
        match request {
            ServeRequest::Job(job) => {
                let mut results = session.search_batch_sharded_with(
                    std::slice::from_ref(&**job),
                    self.config.shards,
                    probe,
                );
                let result = results.pop().expect("one job in, one result out");
                Ok(ServeReply::Job(Box::new(result)))
            }
            ServeRequest::Scenario(name) => {
                let scenario = self
                    .registry
                    .get(name)
                    .ok_or_else(|| ServeError::UnknownScenario(name.clone()))?;
                // same emit→dispatch path the supervisor's
                // `run_scenario` uses; enforced bit-identical to the
                // in-process run by the fleet round-trip suite
                if let Some(reply) =
                    self.try_fleet(&sparseloop_spec::emit_scenario(scenario), ctx, degraded)?
                {
                    return Ok(ServeReply::Scenario(reply));
                }
                let outcome = scenario.run_sharded_with(session, self.config.shards, probe);
                Ok(ServeReply::Scenario(scenario_reply(outcome)))
            }
            ServeRequest::Spec(text) => {
                // compile first so malformed specs fail identically with
                // or without a fleet attached
                let scenario = sparseloop_spec::compile_str(text)
                    .map_err(|e| ServeError::InvalidSpec(SpecDiagnostic::from(&e)))?
                    .into_scenario();
                if let Some(reply) = self.try_fleet(text, ctx, degraded)? {
                    return Ok(ServeReply::Scenario(reply));
                }
                let outcome = scenario.run_sharded_with(session, self.config.shards, probe);
                Ok(ServeReply::Scenario(scenario_reply(outcome)))
            }
        }
    }

    /// Post-request bookkeeping: track the intern-slot high-water mark
    /// and recycle the session once it exceeds the configured budget.
    fn maybe_recycle(&self, used: &Arc<EvalSession>) {
        let stats = used.stats();
        let slots = stats.total_slots() as u64;
        {
            let mut c = self.counters();
            c.peak_slots = c.peak_slots.max(slots);
        }
        if let Some(budget) = self.config.recycle_slot_budget {
            if slots >= budget as u64 {
                self.swap_session(used);
            }
        }
    }

    /// Replaces the current session generation with a fresh one — but
    /// only if `used` still *is* the current generation, so concurrent
    /// workers never recycle twice for one overflow. Touches only the
    /// `Arc` slot, never session internals: safe even when a panic left
    /// the used generation's locks poisoned.
    fn swap_session(&self, used: &Arc<EvalSession>) {
        let mut current = self.session.lock().expect("session slot poisoned");
        if Arc::ptr_eq(&current, used) {
            *current = Arc::new(EvalSession::new());
            self.counters().recycles += 1;
            if let Some(obs) = &self.obs {
                obs.recycles.inc();
            }
        }
    }
}

/// Flattens a scenario outcome into the wire reply shape (shared with
/// the multi-process [`ShardHost`](crate::supervisor::ShardHost));
/// public so harnesses can build an in-process reference reply to
/// compare fleet results against.
pub fn scenario_reply(outcome: sparseloop_designs::ScenarioOutcome) -> ScenarioReply {
    ScenarioReply {
        name: outcome.name,
        labels: outcome
            .experiments
            .iter()
            .map(|e| e.label.clone())
            .collect(),
        required: outcome.experiments.iter().map(|e| e.required).collect(),
        results: outcome.results,
        wall_seconds: outcome.wall_seconds,
    }
}

/// True when a tripped token's deadline has passed — used to classify
/// cancellation as [`RequestOutcome::DeadlineExceeded`] rather than an
/// explicit abandon. A token canceled explicitly *and* past its deadline
/// reads as deadline-exceeded; either label is truthful there.
fn deadline_expired(cancel: &CancelToken) -> bool {
    cancel.inner.deadline.is_some_and(|d| Instant::now() >= d)
}

fn worker_loop(shared: &Shared) {
    while let Some(Work {
        request,
        responder,
        cancel,
        request_id,
        enqueued_nanos,
    }) = shared.queue.pop()
    {
        shared.sync_queue_depth();
        if let Some(obs) = &shared.obs {
            let now = obs.hub.now_nanos();
            obs.queue_wait.observe(now.saturating_sub(enqueued_nanos));
            obs.hub
                .span(request_id, SpanKind::QueueWait, None, enqueued_nanos);
        }
        // a request already abandoned while queued is retired without
        // touching the session at all
        if cancel.is_canceled() {
            shared.counters().canceled += 1;
            if let Some(obs) = &shared.obs {
                obs.canceled.inc();
            }
            shared.record_outcome(request_id, enqueued_nanos, RequestOutcome::Canceled);
            let _ = responder.send(Err(ServeError::Canceled));
            continue;
        }
        let session = shared.current_session();
        let eval_start = shared.obs.as_ref().map(|o| o.hub.now_nanos());
        // the session span id is allocated before evaluation so the
        // fleet round-trip (and through it every cross-process worker
        // span) can parent under it; the span itself is recorded once
        // the duration is known
        let session_span = shared.obs.as_ref().map_or(0, |o| o.hub.next_span_id());
        let ctx = TraceContext {
            request_id,
            parent_span_id: session_span,
        };
        let wall_start = Instant::now();
        let mut degraded = false;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let reply = shared.process(&request, &session, &cancel, ctx, &mut degraded);
            shared.maybe_recycle(&session);
            reply
        }));
        match outcome {
            Ok(reply) => {
                // the token tripping mid-request classifies it as
                // canceled even when a partial reply exists — the
                // invariant is one bucket per admitted request
                let canceled = cancel.is_canceled();
                {
                    let mut c = shared.counters();
                    if canceled {
                        c.canceled += 1;
                    } else {
                        c.completed += 1;
                    }
                }
                if !canceled {
                    // canceled requests stop early; folding them in
                    // would bias the shed retry hint optimistic
                    shared.note_latency(wall_start.elapsed());
                }
                if let Some(obs) = &shared.obs {
                    if canceled {
                        obs.canceled.inc();
                    } else {
                        obs.completed.inc();
                        if let Some(start) = eval_start {
                            let now = obs.hub.now_nanos();
                            obs.latency.observe(now.saturating_sub(start));
                        }
                    }
                    if let Some(start) = eval_start {
                        obs.hub.span_with_id(
                            request_id,
                            session_span,
                            0,
                            SpanKind::SessionEval,
                            None,
                            start,
                        );
                    }
                    obs.absorb_reply(&reply);
                }
                let recorded = if canceled {
                    // a tripped deadline and an explicit cancel look the
                    // same to the eval loop; the recorder distinguishes
                    // them so `/traces` can show which deadline fired
                    if deadline_expired(&cancel) {
                        RequestOutcome::DeadlineExceeded
                    } else {
                        RequestOutcome::Canceled
                    }
                } else {
                    match &reply {
                        Ok(_) if degraded => RequestOutcome::Degraded,
                        Ok(_) => RequestOutcome::Ok,
                        Err(ServeError::Shed { .. }) => RequestOutcome::Shed,
                        Err(ServeError::Panicked(_)) => RequestOutcome::Panicked,
                        Err(ServeError::Canceled) => RequestOutcome::Canceled,
                        Err(_) => RequestOutcome::Error,
                    }
                };
                shared.record_outcome(request_id, enqueued_nanos, recorded);
                // the submitter may have dropped its ticket; that is fine
                let _ = responder.send(reply);
            }
            Err(panic) => {
                // contain the blast radius: reply with the panic message
                // and retire the (possibly lock-poisoned) session so the
                // next request starts from a clean generation
                shared.counters().panicked += 1;
                if let Some(obs) = &shared.obs {
                    obs.panicked.inc();
                }
                shared.record_outcome(request_id, enqueued_nanos, RequestOutcome::Panicked);
                shared.swap_session(&session);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                let _ = responder.send(Err(ServeError::Panicked(msg)));
            }
        }
    }
}

/// The long-lived evaluation service (see the [crate docs](crate)).
pub struct EvalService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The embedded observability HTTP server, when the config asked
    /// for one (held here, not in `Shared`, so its hook closures —
    /// which capture `Arc<Shared>` — form no reference cycle).
    obs_server: Option<ObsServer>,
}

impl EvalService {
    /// Boots the service with the standard scenario registry
    /// (uninstrumented — see [`start_observed`](EvalService::start_observed)).
    pub fn start(config: ServeConfig) -> Self {
        EvalService::start_with_registry(config, ScenarioRegistry::standard())
    }

    /// Boots the service against a caller-supplied registry.
    pub fn start_with_registry(config: ServeConfig, registry: ScenarioRegistry) -> Self {
        EvalService::start_with_registry_and_hub(config, registry, None)
    }

    /// Boots the service with the standard registry, wired into `hub`:
    /// every admission/completion/rejection updates the hub's metrics
    /// registry, and each request records `QueueWait` + `SessionEval`
    /// trace spans. Share one hub with a
    /// [`ShardHost`](crate::supervisor::ShardHost) to get a single
    /// fleet-wide snapshot.
    pub fn start_observed(config: ServeConfig, hub: ObsHub) -> Self {
        EvalService::start_with_registry_and_hub(config, ScenarioRegistry::standard(), Some(hub))
    }

    /// The fully general constructor: caller-supplied registry, plus an
    /// optional [`ObsHub`] (`None` keeps the hot path free of any
    /// instrumentation — the A/B baseline the overhead gate compares
    /// against).
    pub fn start_with_registry_and_hub(
        config: ServeConfig,
        registry: ScenarioRegistry,
        hub: Option<ObsHub>,
    ) -> Self {
        EvalService::start_full(config, registry, hub, None)
    }

    /// Boots the service on top of a shared [`FleetPool`]: `Scenario`
    /// and `Spec` requests dispatch to pooled worker-process fleets
    /// (replies bit-identical to in-process evaluation), falling back
    /// in process when the fleet machinery fails; `Job` requests always
    /// evaluate in process (they have no wire form). The service
    /// reports into the pool's [`ObsHub`] when it has one, so service,
    /// pool, and host metrics land in a single snapshot.
    pub fn start_with_fleet(config: ServeConfig, fleet: FleetPool) -> Self {
        let hub = fleet.hub().cloned();
        EvalService::start_full(config, ScenarioRegistry::standard(), hub, Some(fleet))
    }

    fn start_full(
        config: ServeConfig,
        registry: ScenarioRegistry,
        hub: Option<ObsHub>,
        fleet: Option<FleetPool>,
    ) -> Self {
        let config = ServeConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            shards: config.shards.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            config,
            queue: BoundedQueue::new(config.queue_capacity),
            registry,
            session: Mutex::new(Arc::new(EvalSession::new())),
            counters: Mutex::new(Counters::default()),
            obs: hub.map(|hub| ServeObs::new(hub, &config)),
            fleet,
            ewma_latency_nanos: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sparseloop-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        let obs_server = match (&config.obs_server_addr, &shared.obs) {
            (Some(addr), Some(obs)) => {
                let snap = Arc::clone(&shared);
                let health = Arc::clone(&shared);
                let hooks = ObsServerHooks {
                    // a hook snapshot refreshes the gauges exactly like
                    // `metrics_snapshot`, so curl and the in-process
                    // accessor render byte-identical text
                    snapshot: Arc::new(move || {
                        snap.snapshot_now().expect("hooked service has a hub")
                    }),
                    health: Arc::new(move || health.health_status()),
                };
                match ObsServer::start(*addr, obs.hub.clone(), hooks) {
                    Ok(server) => Some(server),
                    Err(err) => {
                        // a service that cannot bind its debug endpoint
                        // still serves traffic; the failure is loud in
                        // metrics rather than fatal
                        obs.hub
                            .registry()
                            .counter("sparseloop_obs_server_bind_errors_total", &[])
                            .inc();
                        eprintln!("sparseloop: obs server bind failed on {addr}: {err}");
                        None
                    }
                }
            }
            _ => None,
        };
        EvalService {
            shared,
            workers,
            obs_server,
        }
    }

    /// The bound address of the embedded observability HTTP server
    /// (`None` unless [`ServeConfig::with_obs_server`] was set and the
    /// bind succeeded). Bind to port 0 and read the real port here.
    pub fn obs_http_addr(&self) -> Option<SocketAddr> {
        self.obs_server.as_ref().map(|s| s.local_addr())
    }

    /// The observability hub this service reports into (`None` when
    /// started without one).
    pub fn hub(&self) -> Option<&ObsHub> {
        self.shared.obs.as_ref().map(|o| &o.hub)
    }

    /// Renders a point-in-time metrics snapshot, refreshing the
    /// session/queue gauges first so the text reflects *now* rather
    /// than the last request. `None` when started without a hub. The
    /// observability HTTP server's `GET /metrics` serves exactly this
    /// snapshot's [`render_text`](MetricsSnapshot::render_text).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.shared.snapshot_now()
    }

    /// The effective configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.config
    }

    /// Non-blocking admission at [`Priority::Batch`]: enqueues the
    /// request or refuses it when the queue is at capacity
    /// (backpressure) or the service is shutting down.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        self.submit_with_token(request, CancelToken::new())
    }

    /// [`submit`](EvalService::submit) at an explicit [`Priority`].
    /// Under overload a higher-priority arrival displaces the youngest
    /// strictly-lower-priority queued request (the victim's ticket
    /// resolves to [`ServeError::Shed`]); once the queue reaches the
    /// shed watermark, [`Priority::Background`] arrivals are refused
    /// early with [`SubmitError::Shed`]. Equal-priority work is never
    /// displaced, so admission order within a band is preserved.
    pub fn submit_with_priority(
        &self,
        request: ServeRequest,
        priority: Priority,
    ) -> Result<Ticket, SubmitError> {
        self.submit_prioritized(request, CancelToken::new(), priority)
    }

    /// [`submit`](EvalService::submit) with a per-request deadline: once
    /// it elapses, the request's token trips on its own and workers
    /// abandon the remaining work at the next cancellation checkpoint
    /// (the ticket resolves to whatever completed before that, counted
    /// as `canceled` in [`ServiceStats`]).
    pub fn submit_with_deadline(
        &self,
        request: ServeRequest,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_with_token(request, CancelToken::with_deadline(deadline))
    }

    /// Builds the `Work` payload and pre-counts the admission:
    /// `submitted` is incremented *before* the queue push so no snapshot
    /// can catch a completion whose admission is not yet counted; a
    /// refused push rolls the increment back under the same lock.
    fn make_work(
        &self,
        request: ServeRequest,
        cancel: &CancelToken,
    ) -> (Work, mpsc::Receiver<Result<ServeReply, ServeError>>) {
        let (responder, receiver) = mpsc::channel();
        let (request_id, enqueued_nanos) = match &self.shared.obs {
            Some(obs) => (obs.hub.next_request_id(), obs.hub.now_nanos()),
            None => (0, 0),
        };
        self.shared.counters().submitted += 1;
        let work = Work {
            request,
            responder,
            cancel: cancel.clone(),
            request_id,
            enqueued_nanos,
        };
        (work, receiver)
    }

    /// Undoes [`make_work`](EvalService::make_work)'s pre-count after a
    /// refused push; `rejected: true` books it as backpressure.
    fn unmake_work(&self, rejected: bool) {
        let mut c = self.shared.counters();
        c.submitted -= 1;
        if rejected {
            c.rejected += 1;
        }
        drop(c);
        if rejected {
            if let Some(obs) = &self.shared.obs {
                obs.rejected.inc();
            }
        }
    }

    fn submit_with_token(
        &self,
        request: ServeRequest,
        cancel: CancelToken,
    ) -> Result<Ticket, SubmitError> {
        self.submit_prioritized(request, cancel, Priority::Batch)
    }

    /// The priority-aware admission path (all non-blocking submits land
    /// here): one locked [`BoundedQueue::admit`] decides enqueue /
    /// displace / refuse, and the counters mirror the outcome —
    /// displaced victims stay `submitted` and move to the `shed`
    /// bucket; refused arrivals roll `submitted` back and count as
    /// `rejected`.
    fn submit_prioritized(
        &self,
        request: ServeRequest,
        cancel: CancelToken,
        priority: Priority,
    ) -> Result<Ticket, SubmitError> {
        let (work, receiver) = self.make_work(request, &cancel);
        let capacity = self.shared.queue.capacity();
        let watermark = self.shared.effective_watermark();
        match self.shared.queue.admit(work, priority, watermark) {
            Admission::Enqueued => {
                if let Some(obs) = &self.shared.obs {
                    obs.submitted.inc();
                }
                self.shared.sync_queue_depth();
                Ok(Ticket { receiver, cancel })
            }
            Admission::Displaced { victim, .. } => {
                if let Some(obs) = &self.shared.obs {
                    obs.submitted.inc();
                }
                // displacement swaps one queued entry for another, so the
                // depth is re-read from the queue itself rather than
                // guessed at (+1 for the arrival, -1 for the victim)
                self.shared.sync_queue_depth();
                self.shared.shed_victim(victim);
                Ok(Ticket { receiver, cancel })
            }
            Admission::Full(_, depth) => {
                self.unmake_work(true);
                Err(SubmitError::QueueFull { depth, capacity })
            }
            Admission::Shed(_, depth) => {
                self.unmake_work(true);
                Err(SubmitError::Shed {
                    depth,
                    capacity,
                    retry_after_hint: self.shared.retry_after_hint(),
                })
            }
            Admission::Closed(_) => {
                self.unmake_work(false);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Blocking admission: waits for queue space instead of refusing
    /// (still fails if the service shuts down while waiting).
    pub fn submit_blocking(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let cancel = CancelToken::new();
        let (work, receiver) = self.make_work(request, &cancel);
        match self.shared.queue.push_blocking(work) {
            Ok(()) => {
                if let Some(obs) = &self.shared.obs {
                    obs.submitted.inc();
                }
                self.shared.sync_queue_depth();
                Ok(Ticket { receiver, cancel })
            }
            Err(_) => {
                self.unmake_work(false);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Sugar: submits a single evaluation job.
    pub fn submit_job(&self, job: EvalJob) -> Result<Ticket, SubmitError> {
        self.submit(ServeRequest::Job(Box::new(job)))
    }

    /// Sugar: submits a registered scenario by name.
    pub fn submit_scenario(&self, name: impl Into<String>) -> Result<Ticket, SubmitError> {
        self.submit(ServeRequest::Scenario(name.into()))
    }

    /// Sugar: submits an inline spec document (compiled and run by the
    /// worker; a malformed spec resolves the ticket to
    /// [`ServeError::InvalidSpec`]).
    pub fn submit_spec(&self, text: impl Into<String>) -> Result<Ticket, SubmitError> {
        self.submit(ServeRequest::Spec(text.into()))
    }

    /// Current counters (queue depth and session slots are snapshots).
    ///
    /// The request buckets come from one locked copy, so a snapshot
    /// taken while requests are in flight still satisfies
    /// `submitted >= completed + panicked + canceled + shed` — the lock
    /// rules out observing a completion whose admission is missing.
    pub fn stats(&self) -> ServiceStats {
        let session = self.shared.current_session();
        let s = session.stats();
        let c = *self.shared.counters();
        ServiceStats {
            submitted: c.submitted,
            rejected: c.rejected,
            completed: c.completed,
            panicked: c.panicked,
            canceled: c.canceled,
            shed: c.shed,
            fleet_dispatched: c.fleet_dispatched,
            fleet_fallbacks: c.fleet_fallbacks,
            recycles: c.recycles,
            peak_slots: c.peak_slots,
            queued: self.shared.queue.len(),
            session_slots: s.total_slots(),
        }
    }

    /// Graceful shutdown: refuses new admissions, drains every queued
    /// request (all outstanding tickets resolve), joins the workers and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        // the debug endpoint goes down first so a scraper cannot catch
        // a half-drained snapshot mid-shutdown
        self.obs_server.take();
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        // same graceful drain as `shutdown`: pending tickets resolve
        // rather than hang
        self.obs_server.take();
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for EvalService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalService")
            .field("config", &self.shared.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_arch::{ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel};
    use sparseloop_core::{JobPlan, Model, Objective, SafSpec, Workload};
    use sparseloop_density::DensityModelSpec;
    use sparseloop_designs::scenario::Scenario;
    use sparseloop_format::TensorFormat;
    use sparseloop_mapping::{Mapper, Mapspace};
    use sparseloop_tensor::einsum::Einsum;

    use crate::queue::PushError;

    fn arch() -> sparseloop_arch::Architecture {
        ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM").with_class(ComponentClass::Dram))
            .level(StorageLevel::new("Buf").with_capacity(2048))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap()
    }

    fn search_job(density: f64) -> EvalJob {
        let e = Einsum::matmul(16, 16, 16);
        let workload = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let a = e.tensor_id("A").unwrap();
        let safs = SafSpec::dense()
            .with_format(0, a, TensorFormat::coo(2))
            .with_format(1, a, TensorFormat::coo(2))
            .with_skip(1, a, vec![a]);
        let arch = arch();
        let space = Mapspace::all_temporal(&e, &arch);
        EvalJob {
            workload,
            arch,
            safs,
            plan: JobPlan::Search {
                space,
                mapper: Mapper::Exhaustive { limit: 500 },
                objective: Objective::Edp,
            },
        }
    }

    #[test]
    fn served_job_matches_direct_parallel_search() {
        let service = EvalService::start(ServeConfig::default().with_workers(2).with_shards(2));
        let job = search_job(0.25);
        let ticket = service.submit_job(job.clone()).unwrap();
        let outcome = ticket.wait().unwrap().into_job().unwrap();
        let model = Model::new(job.workload, job.arch, job.safs);
        let JobPlan::Search {
            space,
            mapper,
            objective,
        } = job.plan
        else {
            unreachable!()
        };
        let (mapping, eval, stats) = model
            .search_parallel_with_stats(&space, mapper, objective, Some(2))
            .unwrap();
        assert_eq!(outcome.mapping, mapping);
        assert_eq!(outcome.eval.edp, eval.edp);
        assert_eq!(outcome.eval.cycles, eval.cycles);
        assert_eq!(outcome.eval.energy_pj, eval.energy_pj);
        assert_eq!(outcome.stats, stats);
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn served_scenario_matches_direct_run() {
        let service = EvalService::start(ServeConfig::default().with_workers(2).with_shards(3));
        let ticket = service.submit_scenario("fig1_format_tradeoff").unwrap();
        let reply = ticket.wait().unwrap().into_scenario();
        let direct = ScenarioRegistry::standard()
            .expect("fig1_format_tradeoff")
            .run(&EvalSession::new(), Some(2));
        assert_eq!(reply.results.len(), direct.results.len());
        for ((label, served), direct) in
            reply.labels.iter().zip(&reply.results).zip(&direct.results)
        {
            let (served, direct) = (served.as_ref().unwrap(), direct.as_ref().unwrap());
            assert_eq!(served.mapping, direct.mapping, "{label}");
            assert_eq!(served.eval.edp, direct.eval.edp, "{label}");
            assert_eq!(served.eval.cycles, direct.eval.cycles, "{label}");
            assert_eq!(served.eval.energy_pj, direct.eval.energy_pj, "{label}");
        }
        service.shutdown();
    }

    #[test]
    fn served_spec_matches_direct_run() {
        // a scenario submitted as inline spec text returns results
        // bit-identical to running the same scenario directly
        let registry = ScenarioRegistry::standard();
        let scenario = registry.expect("fig13_dstc_validation");
        let text = sparseloop_spec::emit_scenario(scenario);
        let service = EvalService::start(ServeConfig::default().with_workers(2).with_shards(2));
        let ticket = service.submit_spec(text).unwrap();
        let reply = ticket.wait().unwrap().into_scenario();
        assert_eq!(reply.name, "fig13_dstc_validation");
        let direct = scenario.run(&EvalSession::new(), Some(2));
        assert_eq!(reply.results.len(), direct.results.len());
        for ((label, served), direct) in
            reply.labels.iter().zip(&reply.results).zip(&direct.results)
        {
            let (served, direct) = (served.as_ref().unwrap(), direct.as_ref().unwrap());
            assert_eq!(served.mapping, direct.mapping, "{label}");
            assert_eq!(
                served.eval.edp.to_bits(),
                direct.eval.edp.to_bits(),
                "{label}"
            );
            assert_eq!(
                served.eval.cycles.to_bits(),
                direct.eval.cycles.to_bits(),
                "{label}"
            );
            assert_eq!(
                served.eval.energy_pj.to_bits(),
                direct.eval.energy_pj.to_bits(),
                "{label}"
            );
            assert_eq!(served.stats, direct.stats, "{label}");
        }
        service.shutdown();
    }

    #[test]
    fn invalid_spec_is_reported_not_fatal() {
        let service = EvalService::start(ServeConfig::default());
        let ticket = service.submit_spec("scenario:\n  nmae: oops\n").unwrap();
        match ticket.wait() {
            Err(ServeError::InvalidSpec(diag)) => {
                assert!(
                    diag.message.contains("unknown key") || diag.message.contains("missing"),
                    "{diag}"
                )
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        // the service keeps serving after the error
        let ok = service.submit_job(search_job(0.5)).unwrap();
        assert!(ok.wait().unwrap().into_job().is_ok());
        service.shutdown();
    }

    #[test]
    fn invalid_spec_preserves_line_and_column() {
        // the structured diagnostic must carry the *position* of the
        // offending key through the service boundary, not a flattened
        // string — clients point editors at file:line:col
        let service = EvalService::start(ServeConfig::default());
        let text = "scenario:\n  name: demo\n  title: t\n  bogus_key: 1\n";
        let ticket = service.submit_spec(text).unwrap();
        match ticket.wait() {
            Err(ServeError::InvalidSpec(diag)) => {
                assert_eq!(diag.line, 4, "line of bogus_key: {diag}");
                assert!(diag.col >= 1, "{diag}");
                assert_eq!(diag.file, None, "inline text has no file");
                assert!(diag.context.contains("bogus_key"), "{diag}");
                // and the rendering matches the spec front-end's shape
                let direct = sparseloop_spec::compile_str(text).unwrap_err();
                assert_eq!(diag.to_string(), direct.to_string());
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn timed_out_ticket_cancels_the_request() {
        // a worker occupied by an abandoned request must stop at the
        // next cancellation checkpoint, and the request must land in
        // the `canceled` bucket
        let service = EvalService::start(ServeConfig::default().with_workers(1));
        // ten-experiment scenario: plenty of checkpoints between jobs
        let ticket = service.submit_scenario("fig13_dstc_validation").unwrap();
        let ticket = match ticket.wait_timeout(std::time::Duration::from_millis(1)) {
            Err(t) => t, // timed out: the request is now canceled
            Ok(reply) => {
                // machine fast enough to finish in 1ms — nothing to test
                assert!(reply.is_ok());
                service.shutdown();
                return;
            }
        };
        // the reply still resolves: completed experiments are kept, the
        // tail past the cancellation checkpoint (if any — whether a
        // given experiment beat the cancel is a timing race) is skipped
        let reply = ticket.wait().unwrap().into_scenario();
        for r in &reply.results {
            assert!(
                matches!(r, Ok(_) | Err(JobError::Canceled)),
                "partial reply may only hold completed or canceled entries, got {r:?}"
            );
        }
        let stats = service.shutdown();
        // whether the worker saw the trip before its last checkpoint is
        // a timing race (a loaded runner can finish the whole scenario
        // between the timeout and the first check) — but exactly one
        // bucket must claim the request, and a completed claim is only
        // legitimate if every experiment actually finished
        assert_eq!(stats.completed + stats.canceled, 1);
        if stats.completed == 1 {
            assert!(
                reply.results.iter().all(Result::is_ok),
                "a request counted completed may not carry canceled entries"
            );
        }
        assert_eq!(
            stats.submitted,
            stats.completed + stats.panicked + stats.canceled
        );
    }

    #[test]
    fn queued_request_with_expired_deadline_is_skipped() {
        let service = EvalService::start(ServeConfig::default().with_workers(1));
        // occupy the single worker...
        let busy = service.submit_scenario("fig13_dstc_validation").unwrap();
        // ...then queue a request whose deadline has already expired by
        // the time the worker's dequeue-time probe sees it
        let doomed = service
            .submit_with_deadline(
                ServeRequest::Job(Box::new(search_job(0.5))),
                std::time::Duration::ZERO,
            )
            .unwrap();
        assert!(busy.wait().is_ok());
        assert!(matches!(doomed.wait(), Err(ServeError::Canceled)));
        let stats = service.shutdown();
        assert_eq!(stats.canceled, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unknown_scenario_is_reported_not_fatal() {
        let service = EvalService::start(ServeConfig::default());
        let ticket = service.submit_scenario("no_such_scenario").unwrap();
        match ticket.wait() {
            Err(ServeError::UnknownScenario(name)) => assert_eq!(name, "no_such_scenario"),
            other => panic!("expected UnknownScenario, got {other:?}"),
        }
        // the service keeps serving after the error
        let ok = service.submit_job(search_job(0.5)).unwrap();
        assert!(ok.wait().unwrap().into_job().is_ok());
        service.shutdown();
    }

    #[test]
    fn backpressure_accounting_is_consistent() {
        let service = EvalService::start(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for i in 0..20 {
            match service.submit_job(search_job(0.1 + (i as f64) * 0.04)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull { depth, capacity }) => {
                    assert_eq!(capacity, 1);
                    assert_eq!(depth, 1, "refusal must report the observed depth");
                    rejected += 1;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        let accepted = tickets.len() as u64;
        for t in tickets {
            assert!(t.wait().unwrap().into_job().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, accepted);
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.completed, accepted);
        assert_eq!(accepted + rejected, 20);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let service = EvalService::start(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(64),
        );
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                service
                    .submit_job(search_job(0.1 + (i as f64) * 0.1))
                    .unwrap()
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 8, "shutdown must drain, not drop");
        for t in tickets {
            assert!(t.wait().unwrap().into_job().is_ok(), "no ticket may hang");
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let service = EvalService::start(ServeConfig::default());
        let shared = Arc::clone(&service.shared);
        service.shutdown();
        let (responder, _receiver) = mpsc::channel();
        assert!(matches!(
            shared.queue.try_push(Work {
                request: ServeRequest::Scenario("x".into()),
                responder,
                cancel: CancelToken::new(),
                request_id: 0,
                enqueued_nanos: 0,
            }),
            Err(PushError::Closed(_))
        ));
    }

    #[test]
    fn session_recycles_under_slot_budget() {
        let budget = 8;
        let service = EvalService::start(
            ServeConfig::default()
                .with_workers(1)
                .with_recycle_slot_budget(budget),
        );
        // distinct densities keep interning fresh slots; the budget must
        // cap the live session's growth
        for i in 0..12 {
            let t = service
                .submit_blocking(ServeRequest::Job(Box::new(search_job(
                    0.05 + (i as f64) * 0.07,
                ))))
                .unwrap();
            t.wait().unwrap().into_job().unwrap();
        }
        let stats = service.shutdown();
        assert!(stats.recycles >= 1, "budget {budget} never triggered");
        assert!(
            stats.session_slots < budget + 4,
            "live session kept {} slots",
            stats.session_slots
        );
    }

    #[test]
    fn worker_panic_is_contained_and_session_recycled() {
        let registry = ScenarioRegistry::new(vec![Scenario::new(
            "poison",
            "a scenario that panics while building",
            || panic!("boom in build"),
        )]);
        let service =
            EvalService::start_with_registry(ServeConfig::default().with_workers(1), registry);
        let ticket = service.submit_scenario("poison").unwrap();
        match ticket.wait() {
            Err(ServeError::Panicked(msg)) => assert!(msg.contains("boom"), "got {msg}"),
            other => panic!("expected a contained panic, got {other:?}"),
        }
        // the service survives and keeps processing
        let ok = service.submit_job(search_job(0.5)).unwrap();
        assert!(ok.wait().unwrap().into_job().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.panicked, 1);
        assert!(stats.recycles >= 1, "panic must retire the session");
    }

    #[test]
    fn stats_snapshot_never_undercounts_submitted() {
        // regression for the old split-atomic scheme: a snapshot taken
        // between a worker's `completed` increment and the submitter's
        // `submitted` increment could observe submitted < completed +
        // panicked + canceled. With one mutex over the buckets (and
        // `submitted` counted before the push) that ordering is
        // impossible — hammer it from a concurrent reader.
        let service = Arc::new(EvalService::start(
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(4),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let s = service.stats();
                    assert!(
                        s.submitted >= s.completed + s.panicked + s.canceled + s.shed,
                        "snapshot saw submitted={} < {}+{}+{}+{}",
                        s.submitted,
                        s.completed,
                        s.panicked,
                        s.canceled,
                        s.shed
                    );
                    observations += 1;
                }
                observations
            })
        };
        let submitters: Vec<_> = (0..3)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for i in 0..6 {
                        let d = 0.05 + ((t * 6 + i) as f64) * 0.045;
                        if let Ok(ticket) = service.submit_job(search_job(d)) {
                            let _ = ticket.wait();
                        }
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let observations = reader.join().unwrap();
        assert!(observations > 0, "reader never sampled");
        let service = Arc::into_inner(service).expect("all clones joined");
        let stats = service.shutdown();
        assert_eq!(
            stats.submitted,
            stats.completed + stats.panicked + stats.canceled + stats.shed,
            "drained service must balance exactly"
        );
    }

    #[test]
    fn observed_service_metrics_reconcile_with_stats() {
        let service = EvalService::start_observed(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
            ObsHub::new(),
        );
        // a few successes, plus forced rejections through the 1-slot
        // queue, plus one request admitted with an already-expired
        // deadline (canceled at the worker's dequeue-time probe)
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for i in 0..6 {
            match service.submit_job(search_job(0.1 + (i as f64) * 0.08)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull { .. }) => rejected += 1,
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        let doomed = loop {
            match service
                .submit_with_deadline(ServeRequest::Job(Box::new(search_job(0.9))), Duration::ZERO)
            {
                Ok(t) => break t,
                Err(SubmitError::QueueFull { .. }) => {
                    rejected += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        };
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let _ = doomed.wait();
        let snap = service.metrics_snapshot().expect("observed service");
        let stats = service.stats();
        let outcome = |o: &str| {
            snap.value("sparseloop_requests_total", &[("outcome", o)])
                .unwrap_or(0) as u64
        };
        assert_eq!(outcome("submitted"), stats.submitted);
        assert_eq!(outcome("rejected"), rejected);
        assert_eq!(outcome("rejected"), stats.rejected);
        assert_eq!(
            outcome("completed") + outcome("panicked") + outcome("canceled"),
            stats.completed + stats.panicked + stats.canceled
        );
        assert!(
            snap.value(
                "sparseloop_mapper_candidates_total",
                &[("stage", "generated")]
            )
            .unwrap_or(0)
                > 0,
            "served searches must feed the mapper funnel"
        );
        assert_eq!(
            snap.value("sparseloop_request_latency_nanos", &[]).unwrap() as u64,
            stats.completed,
            "one latency observation per completed request"
        );
        assert_eq!(
            snap.value("sparseloop_session_slots", &[]).unwrap() as usize,
            stats.session_slots
        );
        // the text rendering round-trips through the parser
        let parsed = MetricsSnapshot::parse_text(&snap.render_text()).expect("parseable snapshot");
        assert_eq!(
            parsed.sum_of("sparseloop_requests_total"),
            snap.sum_of("sparseloop_requests_total") as f64
        );
        // and the trace ring holds the request spans
        let hub = service.hub().expect("observed service").clone();
        let events = hub.traces().events();
        assert!(
            events.iter().any(|e| e.kind == SpanKind::QueueWait),
            "no QueueWait span recorded"
        );
        assert!(
            events.iter().any(|e| e.kind == SpanKind::SessionEval),
            "no SessionEval span recorded"
        );
        service.shutdown();
    }

    #[test]
    fn obs_http_server_serves_metrics_health_and_traces() {
        let service = EvalService::start_observed(
            ServeConfig::default()
                .with_workers(1)
                .with_obs_server("127.0.0.1:0".parse().unwrap()),
            ObsHub::new(),
        );
        let addr = service.obs_http_addr().expect("obs server bound");
        assert!(service.submit_job(search_job(0.4)).unwrap().wait().is_ok());

        let (code, body) = sparseloop_obs::http::http_get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        let parsed = MetricsSnapshot::parse_text(&body).expect("scrape parses");
        assert_eq!(
            parsed.get("sparseloop_requests_total{outcome=\"completed\"}"),
            Some(1.0)
        );
        // the scrape self-identifies: build info carries the crate
        // version and the frame protocol the fleet would speak
        assert_eq!(
            parsed.get(&format!(
                "sparseloop_build_info{{protocol=\"{}\",version=\"{}\"}}",
                crate::protocol::PROTOCOL_VERSION,
                env!("CARGO_PKG_VERSION"),
            )),
            Some(1.0)
        );
        assert_eq!(parsed.get("sparseloop_queue_depth"), Some(0.0));

        let (code, body) = sparseloop_obs::http::http_get(addr, "/healthz").unwrap();
        assert_eq!(code, 200, "idle service is healthy: {body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (code, body) = sparseloop_obs::http::http_get(addr, "/traces").unwrap();
        assert_eq!(code, 200);
        assert!(body.starts_with("# flight recorder:"), "{body}");

        service.shutdown();
        assert!(
            sparseloop_obs::http::http_get(addr, "/healthz").is_err(),
            "server must stop with the service"
        );
    }

    /// A scenario whose build blocks until `gate` flips — pins the
    /// single worker so admission tests control the queue contents.
    fn blocking_registry(gate: &Arc<AtomicBool>) -> ScenarioRegistry {
        let gate = Arc::clone(gate);
        ScenarioRegistry::new(vec![Scenario::new(
            "block",
            "blocks until the test releases it",
            move || {
                while !gate.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Vec::new()
            },
        )])
    }

    fn wait_until_worker_busy(service: &EvalService) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.stats().queued > 0 {
            assert!(Instant::now() < deadline, "worker never dequeued");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn higher_priority_arrival_displaces_youngest_background_work() {
        let gate = Arc::new(AtomicBool::new(false));
        let service = EvalService::start_with_registry(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(2),
            blocking_registry(&gate),
        );
        let blocker = service.submit_scenario("block").unwrap();
        wait_until_worker_busy(&service);
        // fill the queue with background work, then outrank it
        let bg_old = service
            .submit_with_priority(ServeRequest::Scenario("block".into()), Priority::Background)
            .unwrap();
        let bg_young = service
            .submit_with_priority(ServeRequest::Scenario("block".into()), Priority::Background)
            .unwrap();
        let vip = service
            .submit_with_priority(
                ServeRequest::Scenario("block".into()),
                Priority::Interactive,
            )
            .unwrap();
        // the youngest background request was evicted and resolved
        // immediately, while the worker is still pinned
        match bg_young.wait() {
            Err(ServeError::Shed { retry_after_hint }) => {
                assert!(retry_after_hint >= Duration::from_millis(1));
            }
            other => panic!("expected the young background request shed, got {other:?}"),
        }
        gate.store(true, Ordering::Release);
        assert!(blocker.wait().is_ok());
        assert!(bg_old.wait().is_ok(), "older background work survives");
        assert!(vip.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 4, "the displaced victim stays submitted");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(
            stats.submitted,
            stats.completed + stats.panicked + stats.canceled + stats.shed
        );
    }

    #[test]
    fn background_arrivals_are_shed_at_the_watermark() {
        let gate = Arc::new(AtomicBool::new(false));
        let service = EvalService::start_with_registry(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(4)
                .with_shed_watermark(1),
            blocking_registry(&gate),
        );
        let blocker = service.submit_scenario("block").unwrap();
        wait_until_worker_busy(&service);
        let queued = service.submit_scenario("block").unwrap();
        // depth 1 >= watermark 1: background is refused early even
        // though three queue slots remain
        match service
            .submit_with_priority(ServeRequest::Scenario("block".into()), Priority::Background)
        {
            Err(SubmitError::Shed {
                depth,
                capacity,
                retry_after_hint,
            }) => {
                assert_eq!(depth, 1);
                assert_eq!(capacity, 4);
                assert!(retry_after_hint >= Duration::from_millis(1));
            }
            Ok(_) => panic!("expected a watermark shed, got an admission"),
            Err(other) => panic!("expected a watermark shed, got {other}"),
        }
        // batch work still admits freely below capacity
        let batch = service.submit_scenario("block").unwrap();
        gate.store(true, Ordering::Release);
        assert!(blocker.wait().is_ok());
        assert!(queued.wait().is_ok());
        assert!(batch.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 3, "a watermark shed rolls submitted back");
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.shed, 0, "admission refusals are not queue evictions");
        assert_eq!(stats.completed, 3);
    }

    fn demo_spec() -> String {
        let scenario = Scenario::new("service_fleet_demo", "tiny fleet demo", || {
            let layer = sparseloop_workloads::spmspm(8, 8, 8, 0.5, 0.5);
            let dp = sparseloop_designs::fig1::bitmask_design(&layer.einsum);
            let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
            vec![sparseloop_designs::Experiment::search(
                "service@search",
                dp,
                layer,
                space,
            )]
        });
        sparseloop_spec::emit_scenario(&scenario)
    }

    #[test]
    fn fleet_backed_spec_replies_bit_identically_and_reuses_the_pool() {
        use crate::pool::FleetPoolConfig;
        use crate::supervisor::HostConfig;
        let text = demo_spec();
        let shards = 2;
        let pool = FleetPool::threads(
            FleetPoolConfig::default()
                .with_hosts(1)
                .with_host_config(HostConfig::default().with_shards(shards)),
        );
        let service =
            EvalService::start_with_fleet(ServeConfig::default().with_workers(2), pool.clone());
        let want = {
            let scenario = sparseloop_spec::compile_str(&text).unwrap().into_scenario();
            scenario_reply(scenario.run_sharded(&EvalSession::new(), shards))
        };
        for round in 0..3 {
            let got = service
                .submit_spec(&text)
                .unwrap()
                .wait()
                .unwrap()
                .into_scenario();
            assert_eq!(got.labels, want.labels, "round {round}");
            for ((label, got), want) in got.labels.iter().zip(&got.results).zip(&want.results) {
                let (got, want) = (got.as_ref().unwrap(), want.as_ref().unwrap());
                assert_eq!(got.mapping, want.mapping, "round {round}/{label}");
                assert_eq!(
                    got.eval.edp.to_bits(),
                    want.eval.edp.to_bits(),
                    "round {round}/{label}"
                );
                assert_eq!(got.stats, want.stats, "round {round}/{label}");
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.fleet_dispatched, 3);
        assert_eq!(stats.fleet_fallbacks, 0);
        let host_stats = pool.host_stats();
        assert_eq!(
            host_stats.spawns, shards as u64,
            "one pooled fleet serves every request — no per-request spawning"
        );
        assert_eq!(host_stats.requests, 3);
    }

    #[test]
    fn fleet_backed_service_surfaces_invalid_specs_without_fallback() {
        use crate::pool::FleetPoolConfig;
        let pool = FleetPool::threads(FleetPoolConfig::default().with_hosts(1));
        let service = EvalService::start_with_fleet(ServeConfig::default().with_workers(1), pool);
        let reply = service
            .submit_spec("definitely: not a scenario")
            .unwrap()
            .wait();
        assert!(
            matches!(reply, Err(ServeError::InvalidSpec(_))),
            "got {reply:?}"
        );
        let stats = service.shutdown();
        assert_eq!(
            stats.fleet_dispatched, 0,
            "malformed specs fail at compile, before fleet dispatch"
        );
        assert_eq!(stats.fleet_fallbacks, 0);
    }
}
