//! The supervision tree over multi-process sharded search.
//!
//! A [`ShardHost`] owns N worker slots (one per shard). Each request
//! compiles its spec locally, dispatches one [`Frame::Task`] per shard
//! to the workers, and folds the returned shard winners through
//! [`merge_shard_results`] — re-evaluating the merged winner through
//! the parent's own session, exactly as the in-process sharded search
//! does. Because the per-shard walk is the *same code path*
//! (`Model::search_shard_counted`) on both sides of the process
//! boundary, the merged reply is bit-identical to
//! [`Scenario::run_sharded`] — and stays bit-identical under any
//! worker-failure schedule, because a lost shard is simply recomputed.
//!
//! Supervision policy:
//!
//! * **Death detection** — a worker is dead when its frame stream ends
//!   (EOF, pipe error, corrupt frame) or when its heartbeats go quiet
//!   for [`HostConfig::heartbeat_timeout`] while a task is outstanding.
//! * **Bounded retry with backoff** — a dead worker's shard is
//!   re-dispatched to a freshly spawned replacement, up to
//!   [`HostConfig::max_retries`] times per request, sleeping
//!   `backoff_base · 2^(attempt-1)` before each respawn. Exhaustion is
//!   [`HostError::WorkerLost`].
//! * **No retry of deterministic failures** — a spec that does not
//!   compile ([`HostError::InvalidSpec`]) or a task the worker reports
//!   as deterministically failed ([`HostError::TaskFailed`]) fails the
//!   request immediately; re-running it would fail identically.
//! * **Per-request deadline** — [`HostConfig::request_deadline`] bounds
//!   the whole request; expiry is [`HostError::DeadlineExceeded`].
//! * **Graceful degradation behind a circuit breaker** — if workers
//!   cannot spawn at all (bad binary path, fork limits), the request
//!   runs in-process through [`Scenario::run_sharded`] instead of
//!   failing; counted in [`HostStats::degraded`]. Consecutive spawn
//!   failures or exhausted-retry worker losses trip a per-host
//!   [`CircuitBreaker`]: while it is open, requests short-circuit to
//!   the degraded path without re-paying spawn attempts or backoff
//!   sleeps; after a deterministic clock-driven cooldown one probe
//!   request tests the fleet and closes the breaker on success.
//! * **Hedged shard dispatch** — optionally
//!   ([`HostConfig::with_hedging`]), once the fastest shard's latency
//!   is observed, straggling shards are re-dispatched to spare workers
//!   after `latency_factor ×` that latency; the first result wins
//!   (shard winners are bit-identical by construction, so hedging can
//!   never change a reply). A token bucket caps hedge amplification.
//! * **Deterministic fault injection** — a [`FaultPlan`] schedules
//!   worker-side faults (die/stall/corrupt/drop, delivered at spawn)
//!   and parent-side kills ([`WorkerFault::KillAfterFrames`], delivered
//!   as a real kill once the slot has produced that many frames since
//!   dispatch). Faults are consumed by a slot's first spawn; restarts
//!   run clean, so every schedule converges.
//!
//! Stale-epoch hygiene: every spawn gets a fresh epoch, and events from
//! superseded epochs are discarded — a killed worker's last frames can
//! never race its replacement's.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::fault::{FaultPlan, WorkerFault};
use crate::proc::{EventKind, WorkerEvent, WorkerHandle, WorkerSpawner};
use crate::protocol::{ExpResult, Frame};
use crate::service::{scenario_reply, ScenarioReply, SpecDiagnostic};
use sparseloop_core::{EvalSession, JobError, JobOutcome, JobPlan};
use sparseloop_designs::{Scenario, ScenarioOutcome};
use sparseloop_mapping::{merge_shard_results, SearchStats};
use sparseloop_obs::{ObsHub, SpanKind, TraceContext, LATENCY_BUCKETS_NANOS};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Hedged-dispatch tuning (off unless installed via
/// [`HostConfig::with_hedging`]).
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Hedge delay = this factor × the fastest shard's observed
    /// latency (measured from dispatch). Must be `>= 1.0` to be useful.
    pub latency_factor: f64,
    /// Floor on the hedge delay, so microsecond-fast shards do not
    /// trigger hedges on scheduling noise.
    pub min_delay: Duration,
    /// Token bucket capacity: at most this many hedges in a burst.
    pub token_capacity: u32,
    /// Bucket refill rate, tokens per second — bounds sustained
    /// retry+hedge amplification under overload.
    pub refill_per_sec: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            latency_factor: 2.0,
            min_delay: Duration::from_millis(10),
            token_capacity: 4,
            refill_per_sec: 1.0,
        }
    }
}

/// The hedge amplification cap: a classic leaky token bucket.
#[derive(Debug)]
struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(capacity: u32, refill_per_sec: f64) -> Self {
        TokenBucket {
            capacity: capacity as f64,
            tokens: capacity as f64,
            refill_per_sec,
            last: Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let refill = now.duration_since(self.last).as_secs_f64() * self.refill_per_sec;
        self.tokens = (self.tokens + refill).min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Supervision knobs (builder-style, all defaulted).
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Worker slots = shards per request (`>= 1`).
    pub shards: usize,
    /// Heartbeat cadence workers must hold while computing (ms).
    pub heartbeat_ms: u32,
    /// Silence longer than this on an outstanding slot is death.
    pub heartbeat_timeout: Duration,
    /// Whole-request deadline (`None`: unbounded).
    pub request_deadline: Option<Duration>,
    /// Worker-death retries per shard per request; deterministic
    /// failures are never retried.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Deterministic failure schedule (consumed by first spawns).
    pub fault_plan: FaultPlan,
    /// Circuit breaker over the degraded-fallback decision.
    pub breaker: BreakerConfig,
    /// Hedged dispatch of straggler shards (`None`: disabled).
    pub hedge: Option<HedgeConfig>,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            shards: 2,
            heartbeat_ms: 20,
            heartbeat_timeout: Duration::from_secs(1),
            request_deadline: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            fault_plan: FaultPlan::none(),
            breaker: BreakerConfig::default(),
            hedge: None,
        }
    }
}

impl HostConfig {
    /// Sets the shard/worker count (`>= 1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets heartbeat cadence and timeout together (the timeout should
    /// comfortably exceed the cadence).
    pub fn with_heartbeat(mut self, cadence_ms: u32, timeout: Duration) -> Self {
        self.heartbeat_ms = cadence_ms;
        self.heartbeat_timeout = timeout;
        self
    }

    /// Sets the per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = Some(deadline);
        self
    }

    /// Sets retry bound and backoff base.
    pub fn with_retries(mut self, max_retries: u32, backoff_base: Duration) -> Self {
        self.max_retries = max_retries;
        self.backoff_base = backoff_base;
        self
    }

    /// Installs a fault-injection schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Tunes the degradation circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Enables hedged dispatch of straggler shards.
    pub fn with_hedging(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }
}

/// Why a hosted request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The spec did not compile — deterministic, never retried; the
    /// position survives as structured fields.
    InvalidSpec(SpecDiagnostic),
    /// A worker reported the task deterministically failed —
    /// re-running would fail identically, so no retry.
    TaskFailed {
        /// The worker's failure message.
        message: String,
    },
    /// A shard's worker kept dying: retries exhausted.
    WorkerLost {
        /// The shard whose workers died.
        shard: usize,
        /// Spawn attempts consumed (`max_retries + 1`).
        attempts: u32,
        /// The last observed cause of death.
        last: String,
    },
    /// The request's deadline expired before every shard reported.
    DeadlineExceeded,
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::InvalidSpec(diag) => write!(f, "invalid spec: {diag}"),
            HostError::TaskFailed { message } => {
                write!(f, "task failed deterministically: {message}")
            }
            HostError::WorkerLost {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} lost its worker {attempts} times (last: {last})"
            ),
            HostError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for HostError {}

/// Supervision counters.
///
/// The whole struct is copied out in one piece by [`ShardHost::stats`]
/// (the host is single-threaded by construction — every mutation goes
/// through `&mut self`), so a snapshot can never mix counters from two
/// different moments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Requests accepted (compiled successfully).
    pub requests: u64,
    /// Workers spawned (first spawns + restarts).
    pub spawns: u64,
    /// Worker deaths survived (each triggers a backoff + respawn).
    /// Also counts spawn/send failures and injected kills, so
    /// `restarts >= deaths_eof + deaths_heartbeat_timeout` need not
    /// hold as an equality.
    pub restarts: u64,
    /// Shards re-dispatched after a worker death.
    pub redispatches: u64,
    /// Deaths observed as the worker's frame stream ending: clean EOF,
    /// pipe error, or a corrupt frame — the worker is gone or
    /// unusable either way.
    pub deaths_eof: u64,
    /// Deaths declared by the heartbeat audit: an outstanding slot
    /// silent past [`HostConfig::heartbeat_timeout`], killed by the
    /// parent.
    pub deaths_heartbeat_timeout: u64,
    /// Parent-side kills delivered by the fault plan.
    pub kills_injected: u64,
    /// Requests served in-process because workers could not spawn.
    pub degraded: u64,
    /// Frames received from current-epoch workers.
    pub frames_received: u64,
    /// Total nanoseconds slept in retry backoff.
    pub backoff_nanos_total: u64,
    /// Requests failed on [`HostError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Circuit-breaker trips (transitions into the open state).
    pub breaker_trips: u64,
    /// Half-open probe requests admitted through the breaker.
    pub breaker_probes: u64,
    /// Hedge tasks dispatched to spare workers.
    pub hedges_dispatched: u64,
    /// Shards whose accepted result came from a hedge worker.
    pub hedge_wins: u64,
}

/// What one [`ShardHost::health_check`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Ping probes sent to live workers.
    pub pings_sent: u64,
    /// Pong answers received within the probe timeout.
    pub pongs_received: u64,
    /// Workers found dead or silent and proactively replaced.
    pub workers_replaced: u64,
}

struct SlotState {
    handle: Box<dyn WorkerHandle>,
    epoch: u64,
    last_seen: Instant,
    frames_since_dispatch: u32,
    kill_after: Option<u32>,
    /// Hub-clock reading of the last dispatch to this slot (0 when the
    /// host is unobserved) — anchors the `ShardDispatch` span.
    dispatched_nanos: u64,
    /// Span id pre-allocated for the in-flight dispatch (0 when the
    /// host is unobserved). It travels to the worker inside the Task's
    /// trace context, so worker phase spans parent under it; the
    /// dispatch span itself is recorded with this id at result receipt.
    dispatch_span_id: u64,
}

/// Observability attachment of a [`ShardHost`]: the shared hub plus the
/// last [`HostStats`] already published, so counters advance by deltas
/// and stay equal to the stats snapshot after every request.
struct HostObs {
    hub: ObsHub,
    published: HostStats,
}

/// The supervising parent of a multi-process sharded search (see the
/// [module docs](self)).
pub struct ShardHost<S: WorkerSpawner> {
    config: HostConfig,
    spawner: S,
    session: EvalSession,
    /// Slots `0..shards` are the primaries; slots `shards..2*shards`
    /// are spare workers used only for hedged re-dispatch.
    slots: Vec<Option<SlotState>>,
    events_tx: mpsc::Sender<WorkerEvent>,
    events_rx: mpsc::Receiver<WorkerEvent>,
    fault_plan: FaultPlan,
    next_task_id: u64,
    next_epoch: u64,
    next_ping_seq: u64,
    breaker: CircuitBreaker,
    hedge_tokens: Option<TokenBucket>,
    stats: HostStats,
    obs: Option<HostObs>,
}

impl<S: WorkerSpawner> ShardHost<S> {
    /// A host with `config.shards` empty slots; workers spawn lazily on
    /// the first request.
    pub fn new(config: HostConfig, spawner: S) -> Self {
        let shards = config.shards.max(1);
        let fault_plan = config.fault_plan.clone();
        let breaker = CircuitBreaker::new(config.breaker);
        let hedge_tokens = config
            .hedge
            .map(|h| TokenBucket::new(h.token_capacity, h.refill_per_sec));
        let (events_tx, events_rx) = mpsc::channel();
        ShardHost {
            config,
            spawner,
            session: EvalSession::new(),
            slots: (0..2 * shards).map(|_| None).collect(),
            events_tx,
            events_rx,
            fault_plan,
            next_task_id: 1,
            next_epoch: 1,
            next_ping_seq: 1,
            breaker,
            hedge_tokens,
            stats: HostStats::default(),
            obs: None,
        }
    }

    /// A host publishing its supervision counters, worker phase
    /// timings, and dispatch/round-trip spans into `hub` (see the
    /// README's metric catalog for names).
    pub fn new_observed(config: HostConfig, spawner: S, hub: ObsHub) -> Self {
        let mut host = Self::new(config, spawner);
        // breaker cooldowns follow the hub clock, so ManualClock-backed
        // hubs make breaker transitions fully deterministic
        host.breaker.set_clock(hub.clock());
        hub.set_protocol_version(crate::protocol::PROTOCOL_VERSION);
        host.obs = Some(HostObs {
            hub,
            published: HostStats::default(),
        });
        // pre-register the catalog so snapshots before any traffic
        // still expose every fleet series at zero
        host.publish_metrics();
        host
    }

    /// Point-in-time supervision counters. The host is single-threaded
    /// (`&mut self` everywhere), so this copy is always internally
    /// consistent — no counter can be mid-update.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// The attached observability hub, if any.
    pub fn hub(&self) -> Option<&ObsHub> {
        self.obs.as_ref().map(|o| &o.hub)
    }

    /// Current circuit-breaker position.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Spawns any missing primary workers now, so the first request
    /// does not pay spawn latency — the pool calls this at build time.
    pub fn prewarm(&mut self) -> std::io::Result<()> {
        for slot in 0..self.config.shards {
            if self.slots[slot].is_none() {
                self.spawn_slot(slot)?;
            }
        }
        Ok(())
    }

    /// One health sweep over the fleet: pings every live worker,
    /// drains pongs for up to `timeout`, kills workers that stayed
    /// silent, and respawns missing primaries. The pool runs this
    /// periodically between requests so unhealthy workers are replaced
    /// *proactively*, not discovered by the next request's retries.
    pub fn health_check(&mut self, timeout: Duration) -> HealthReport {
        let mut report = HealthReport::default();
        let mut pending: HashMap<usize, u64> = HashMap::new();
        for slot in 0..self.slots.len() {
            if self.slots[slot].is_none() {
                continue;
            }
            let seq = self.next_ping_seq;
            self.next_ping_seq += 1;
            let send = self.slots[slot]
                .as_mut()
                .expect("checked occupied")
                .handle
                .send(&Frame::Ping { seq });
            match send {
                Ok(()) => {
                    report.pings_sent += 1;
                    pending.insert(slot, seq);
                }
                Err(_) => self.drop_slot(slot),
            }
        }
        let deadline = Instant::now() + timeout;
        while !pending.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(WorkerEvent { slot, epoch, kind }) => {
                    let slot = slot as usize;
                    let current = self
                        .slots
                        .get(slot)
                        .and_then(Option::as_ref)
                        .map(|st| st.epoch);
                    if current != Some(epoch) {
                        continue;
                    }
                    match kind {
                        EventKind::Frame(frame) => {
                            self.stats.frames_received += 1;
                            if let Some(st) = self.slots[slot].as_mut() {
                                st.last_seen = Instant::now();
                            }
                            if let Frame::Pong { seq } = frame {
                                if pending.get(&slot) == Some(&seq) {
                                    pending.remove(&slot);
                                    report.pongs_received += 1;
                                }
                            }
                        }
                        EventKind::Exited(_) => {
                            self.stats.deaths_eof += 1;
                            self.drop_slot(slot);
                            pending.remove(&slot);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("host holds an event sender; channel cannot disconnect")
                }
            }
        }
        // a worker that would not answer within the timeout is treated
        // as wedged and killed; spare (hedge) slots stay empty
        for slot in pending.into_keys() {
            self.kill_slot(slot);
        }
        for slot in 0..self.config.shards {
            if self.slots[slot].is_none() && self.spawn_slot(slot).is_ok() {
                report.workers_replaced += 1;
            }
        }
        self.publish_metrics();
        report
    }

    /// Runs a registered scenario through the worker fleet (emitted as
    /// spec text — the same wire the workers compile).
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<ScenarioReply, HostError> {
        self.run_spec(&sparseloop_spec::emit_scenario(scenario))
    }

    /// Runs a spec document across the worker fleet and merges the
    /// shard results (see the [module docs](self) for the policy).
    pub fn run_spec(&mut self, text: &str) -> Result<ScenarioReply, HostError> {
        self.run_spec_traced(text, None)
    }

    /// [`run_spec`](Self::run_spec) under a caller-provided trace
    /// context: the fleet round-trip span parents under
    /// `ctx.parent_span_id` and every dispatch/worker span is tagged
    /// with `ctx.request_id`, so a service request's timeline crosses
    /// the process boundary intact. `None` (or an unobserved host)
    /// falls back to a host-allocated request id.
    pub fn run_spec_traced(
        &mut self,
        text: &str,
        ctx: Option<TraceContext>,
    ) -> Result<ScenarioReply, HostError> {
        // (request id, parent span, round-trip span id, start) — the
        // round-trip span id is allocated up front so dispatch spans
        // can parent under it before it is recorded.
        let trace = self.obs.as_ref().map(|o| {
            let ctx = ctx.unwrap_or_default();
            let req_id = if ctx.request_id != 0 {
                ctx.request_id
            } else {
                o.hub.next_request_id()
            };
            (
                req_id,
                ctx.parent_span_id,
                o.hub.next_span_id(),
                o.hub.now_nanos(),
            )
        });
        let result = self.run_spec_inner(text, trace.map(|(id, _, span, _)| (id, span)));
        if let Some((req_id, parent, span, start_nanos)) = trace {
            if result.is_ok() {
                if let Some(o) = &self.obs {
                    o.hub.span_with_id(
                        req_id,
                        span,
                        parent,
                        SpanKind::WorkerRoundTrip,
                        None,
                        start_nanos,
                    );
                }
            }
            self.publish_metrics();
        }
        result
    }

    fn run_spec_inner(
        &mut self,
        text: &str,
        // (request id, round-trip span id) when observed
        trace: Option<(u64, u64)>,
    ) -> Result<ScenarioReply, HostError> {
        let scenario = sparseloop_spec::compile_str(text)
            .map_err(|e| HostError::InvalidSpec(SpecDiagnostic::from(&e)))?
            .into_scenario();
        self.stats.requests += 1;
        let n = self.config.shards;

        // an open breaker short-circuits straight to the degraded
        // in-process path: a sick fleet is a *state*, not something
        // each request rediscovers through spawn attempts and backoff
        if !self.breaker.allow() {
            self.stats.degraded += 1;
            let outcome = scenario.run_sharded(&self.session, n);
            return Ok(scenario_reply(outcome));
        }
        if self.breaker.state() == BreakerState::HalfOpen {
            self.stats.breaker_probes += 1;
        }

        // ensure a full primary fleet; if the transport cannot produce
        // workers at all, serve in-process rather than failing the
        // request — and let the breaker count the failure
        for slot in 0..n {
            if self.slots[slot].is_none() && self.spawn_slot(slot).is_err() {
                if self.breaker.record_failure() {
                    self.stats.breaker_trips += 1;
                }
                self.stats.degraded += 1;
                let outcome = scenario.run_sharded(&self.session, n);
                return Ok(scenario_reply(outcome));
            }
        }

        let start = Instant::now();
        let deadline = self.config.request_deadline.map(|d| start + d);
        let task_id = self.next_task_id;
        self.next_task_id += 1;
        let experiments = scenario.experiments();
        let mut attempts = vec![0u32; n];
        let mut shard_results: Vec<Option<Vec<ExpResult>>> = vec![None; n];
        // hedging state: one hedge attempt per shard per request, armed
        // once the fastest shard's latency is known
        let hedge_cfg = self.config.hedge;
        let mut hedged = vec![false; n];
        let mut hedge_deadline: Option<Instant> = None;

        for slot in 0..n {
            self.dispatch_shard(slot, task_id, text, &mut attempts, deadline, trace)?;
        }

        while shard_results.iter().any(Option::is_none) {
            let now = Instant::now();
            if let Some(d) = deadline {
                if now >= d {
                    self.stats.deadline_exceeded += 1;
                    return Err(HostError::DeadlineExceeded);
                }
            }
            // hedge stragglers: every shard still outstanding past the
            // hedge deadline gets one re-dispatch to its spare slot,
            // budget permitting (first result wins; shard winners are
            // bit-identical by construction, so this is always safe)
            if let Some(hd) = hedge_deadline {
                if now >= hd {
                    for shard in 0..n {
                        if shard_results[shard].is_none() && !hedged[shard] {
                            hedged[shard] = true;
                            let budgeted = self.hedge_tokens.as_mut().is_some_and(|b| b.try_take());
                            if budgeted {
                                self.dispatch_hedge(shard, task_id, text, trace);
                            }
                        }
                    }
                }
            }
            // wake at the earliest of: request deadline, hedge
            // deadline, first possible heartbeat expiry of a slot that
            // still owes a result
            let mut wake = deadline;
            if let Some(hd) = hedge_deadline {
                if (0..n).any(|s| shard_results[s].is_none() && !hedged[s]) {
                    wake = Some(wake.map_or(hd, |w| w.min(hd)));
                }
            }
            for (slot, st) in self.slots.iter().enumerate() {
                let shard = slot % n;
                let engaged = slot < n || hedged[shard];
                if engaged && shard_results[shard].is_none() {
                    if let Some(st) = st {
                        let hb = st.last_seen + self.config.heartbeat_timeout;
                        wake = Some(wake.map_or(hb, |w| w.min(hb)));
                    }
                }
            }
            let wait = wake
                .map(|w| w.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(50))
                .max(Duration::from_millis(1));

            let event = self.events_rx.recv_timeout(wait);
            match event {
                Ok(WorkerEvent { slot, epoch, kind }) => {
                    let slot = slot as usize;
                    let shard = slot % n;
                    let is_hedge = slot >= n;
                    let current = self
                        .slots
                        .get(slot)
                        .and_then(Option::as_ref)
                        .map(|st| st.epoch);
                    if current != Some(epoch) {
                        continue; // a superseded worker's last gasp
                    }
                    match kind {
                        EventKind::Frame(frame) => {
                            self.stats.frames_received += 1;
                            let kill_due = {
                                let st = self.slots[slot].as_mut().expect("epoch-checked");
                                st.last_seen = Instant::now();
                                st.frames_since_dispatch += 1;
                                st.kill_after.is_some_and(|m| st.frames_since_dispatch >= m)
                            };
                            match frame {
                                Frame::TaskDone { id, results }
                                    if id == task_id && shard_results[shard].is_none() =>
                                {
                                    if let Some(o) = &self.obs {
                                        let (dispatched, span_id) = self.slots[slot]
                                            .as_ref()
                                            .map(|st| (st.dispatched_nanos, st.dispatch_span_id))
                                            .unwrap_or((0, 0));
                                        let span_kind = if is_hedge {
                                            SpanKind::HedgeDispatch
                                        } else {
                                            SpanKind::ShardDispatch
                                        };
                                        let (rid, roundtrip) = trace.unwrap_or((0, 0));
                                        o.hub.span_with_id(
                                            rid,
                                            span_id,
                                            roundtrip,
                                            span_kind,
                                            Some(shard as u32),
                                            dispatched,
                                        );
                                    }
                                    if is_hedge {
                                        self.stats.hedge_wins += 1;
                                    }
                                    shard_results[shard] = Some(results);
                                    if hedge_deadline.is_none() {
                                        if let Some(h) = hedge_cfg {
                                            let delay = start
                                                .elapsed()
                                                .mul_f64(h.latency_factor.max(1.0))
                                                .max(h.min_delay);
                                            hedge_deadline = Some(start + delay);
                                        }
                                    }
                                }
                                Frame::Stats {
                                    id,
                                    shard,
                                    compile_nanos,
                                    search_nanos,
                                    generated,
                                    evaluated,
                                    trace_request,
                                    trace_parent,
                                } if id == task_id => {
                                    // v3 workers echo the trace context
                                    // the task carried; a v2 worker's
                                    // zeros fall back to this request.
                                    let rid = if trace_request != 0 {
                                        trace_request
                                    } else {
                                        trace.map_or(0, |(r, _)| r)
                                    };
                                    self.observe_worker_stats(
                                        rid,
                                        trace_parent,
                                        shard,
                                        (compile_nanos, search_nanos),
                                        (generated, evaluated),
                                    );
                                }
                                Frame::TaskFailed {
                                    id,
                                    deterministic,
                                    message,
                                } if id == task_id => {
                                    if deterministic {
                                        return Err(HostError::TaskFailed { message });
                                    }
                                    self.drop_slot(slot);
                                    if !is_hedge && shard_results[shard].is_none() {
                                        self.retire_attempt(
                                            shard,
                                            &mut attempts,
                                            message,
                                            deadline,
                                        )?;
                                        self.dispatch_shard(
                                            shard,
                                            task_id,
                                            text,
                                            &mut attempts,
                                            deadline,
                                            trace,
                                        )?;
                                    }
                                    continue;
                                }
                                // Hello, Heartbeat, frames for old tasks:
                                // liveness only
                                _ => {}
                            }
                            if kill_due {
                                self.stats.kills_injected += 1;
                                self.kill_slot(slot);
                                if !is_hedge && shard_results[shard].is_none() {
                                    self.retire_attempt(
                                        shard,
                                        &mut attempts,
                                        "injected kill".to_string(),
                                        deadline,
                                    )?;
                                    self.dispatch_shard(
                                        shard,
                                        task_id,
                                        text,
                                        &mut attempts,
                                        deadline,
                                        trace,
                                    )?;
                                }
                            }
                        }
                        EventKind::Exited(why) => {
                            self.stats.deaths_eof += 1;
                            self.drop_slot(slot);
                            // a dead hedge worker is just a lost bet —
                            // the primary attempt is still in flight, so
                            // hedge deaths never consume retries
                            if !is_hedge && shard_results[shard].is_none() {
                                let why = why.unwrap_or_else(|| "worker exited".to_string());
                                self.retire_attempt(shard, &mut attempts, why, deadline)?;
                                self.dispatch_shard(
                                    shard,
                                    task_id,
                                    text,
                                    &mut attempts,
                                    deadline,
                                    trace,
                                )?;
                            }
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // heartbeat audit: engaged slots silent past the
                    // timeout are presumed dead and killed for real
                    for slot in 0..self.slots.len() {
                        let shard = slot % n;
                        let is_hedge = slot >= n;
                        if shard_results[shard].is_some() || (is_hedge && !hedged[shard]) {
                            continue;
                        }
                        let silent = self.slots[slot].as_ref().is_some_and(|st| {
                            st.last_seen.elapsed() > self.config.heartbeat_timeout
                        });
                        if silent {
                            self.stats.deaths_heartbeat_timeout += 1;
                            self.kill_slot(slot);
                            if !is_hedge {
                                self.retire_attempt(
                                    shard,
                                    &mut attempts,
                                    "heartbeat timeout".to_string(),
                                    deadline,
                                )?;
                                self.dispatch_shard(
                                    shard,
                                    task_id,
                                    text,
                                    &mut attempts,
                                    deadline,
                                    trace,
                                )?;
                            }
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("host holds an event sender; channel cannot disconnect")
                }
            }
        }
        self.breaker.record_success();

        let shard_results: Vec<Vec<ExpResult>> = shard_results
            .into_iter()
            .map(|r| r.expect("loop exits only when every shard reported"))
            .collect();
        self.merge(&scenario, experiments, shard_results, start)
    }

    /// Folds per-shard results into the reply, evaluating fixed-mapping
    /// experiments and re-evaluating merged search winners through the
    /// parent session — the exact post-processing of the in-process
    /// sharded search, so replies are bit-identical to it.
    fn merge(
        &self,
        scenario: &Scenario,
        experiments: Vec<sparseloop_designs::Experiment>,
        shard_results: Vec<Vec<ExpResult>>,
        start: Instant,
    ) -> Result<ScenarioReply, HostError> {
        let mut results: Vec<Result<JobOutcome, JobError>> = Vec::with_capacity(experiments.len());
        for (i, exp) in experiments.iter().enumerate() {
            let job = exp.job();
            let model =
                self.session
                    .model(job.workload.clone(), job.arch.clone(), job.safs.clone());
            let result = match &job.plan {
                JobPlan::Fixed(mapping) => model
                    .evaluate(mapping)
                    .map(|eval| JobOutcome {
                        mapping: mapping.clone(),
                        eval,
                        stats: SearchStats {
                            generated: 1,
                            evaluated: 1,
                            ..SearchStats::default()
                        },
                    })
                    .map_err(JobError::Eval),
                JobPlan::Search { .. } => {
                    let parts = shard_results.iter().map(|per_shard| {
                        match per_shard.get(i) {
                            Some(ExpResult::Winner {
                                value,
                                key,
                                stats,
                                mapping,
                            }) => (Some((*value, *key, mapping.clone())), *stats),
                            Some(ExpResult::NoWinner { stats }) => (None, *stats),
                            // a worker that misunderstood the experiment
                            // list contributes nothing; bit-identity
                            // checks downstream will catch it
                            Some(ExpResult::Skipped) | None => (None, SearchStats::default()),
                        }
                    });
                    let (merged, stats) = merge_shard_results(parts);
                    match merged {
                        Some(r) => model
                            .evaluate(&r.mapping)
                            .map(|eval| JobOutcome {
                                mapping: r.mapping,
                                eval,
                                stats,
                            })
                            .map_err(JobError::Eval),
                        None => Err(JobError::NoValidCandidate { stats }),
                    }
                }
            };
            results.push(result);
        }
        Ok(scenario_reply(ScenarioOutcome {
            name: scenario.name().to_string(),
            experiments,
            results,
            wall_seconds: start.elapsed().as_secs_f64(),
        }))
    }

    fn spawn_slot(&mut self, slot: usize) -> std::io::Result<()> {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let fault = self.fault_plan.take(slot as u32);
        let (worker_fault, kill_after) = match fault {
            Some(WorkerFault::KillAfterFrames(m)) => (None, Some(m)),
            other => (other, None),
        };
        let handle =
            self.spawner
                .spawn(slot as u32, epoch, worker_fault, self.events_tx.clone())?;
        self.stats.spawns += 1;
        self.slots[slot] = Some(SlotState {
            handle,
            epoch,
            last_seen: Instant::now(),
            frames_since_dispatch: 0,
            kill_after,
            dispatched_nanos: 0,
            dispatch_span_id: 0,
        });
        Ok(())
    }

    /// Sends the shard's task to its primary slot, (re)spawning as
    /// needed; spawn/send failures consume retry attempts with backoff.
    fn dispatch_shard(
        &mut self,
        slot: usize,
        task_id: u64,
        spec: &str,
        attempts: &mut [u32],
        deadline: Option<Instant>,
        trace: Option<(u64, u64)>,
    ) -> Result<(), HostError> {
        loop {
            if self.slots[slot].is_none() {
                if let Err(e) = self.spawn_slot(slot) {
                    self.retire_attempt(slot, attempts, e.to_string(), deadline)?;
                    continue;
                }
            }
            // Each dispatch attempt gets a fresh span id; the worker
            // parents its phase spans under it via the task's trace
            // context, and the span itself is recorded at result
            // receipt (retries therefore show as sibling dispatches).
            let (trace_request, dispatch_span) = match (&self.obs, trace) {
                (Some(o), Some((rid, _))) => (rid, o.hub.next_span_id()),
                _ => (0, 0),
            };
            let task = Frame::Task {
                id: task_id,
                shard: slot as u32,
                shards: self.config.shards as u32,
                heartbeat_ms: self.config.heartbeat_ms,
                spec: spec.to_string(),
                // ask for a phase-timing Stats frame only when someone
                // is listening
                want_stats: self.obs.is_some(),
                trace_request,
                trace_parent: dispatch_span,
            };
            let dispatched_nanos = self.obs.as_ref().map_or(0, |o| o.hub.now_nanos());
            let send = {
                let st = self.slots[slot].as_mut().expect("spawned above");
                st.frames_since_dispatch = 0;
                st.last_seen = Instant::now();
                st.dispatched_nanos = dispatched_nanos;
                st.dispatch_span_id = dispatch_span;
                st.handle.send(&task)
            };
            if let Err(e) = send {
                self.drop_slot(slot);
                self.retire_attempt(slot, attempts, e.to_string(), deadline)?;
                continue;
            }
            // a zero-frame kill schedule fires at dispatch itself
            let instant_kill = self.slots[slot]
                .as_ref()
                .is_some_and(|st| st.kill_after == Some(0));
            if instant_kill {
                self.stats.kills_injected += 1;
                self.kill_slot(slot);
                self.retire_attempt(slot, attempts, "injected kill".to_string(), deadline)?;
                continue;
            }
            return Ok(());
        }
    }

    /// Best-effort re-dispatch of a straggler shard to its spare slot.
    /// Failures are swallowed: a hedge that cannot start just leaves
    /// the primary attempt racing alone, and hedges never consume
    /// retries or backoff.
    fn dispatch_hedge(
        &mut self,
        shard: usize,
        task_id: u64,
        spec: &str,
        trace: Option<(u64, u64)>,
    ) {
        let slot = self.config.shards + shard;
        if self.slots[slot].is_none() && self.spawn_slot(slot).is_err() {
            return;
        }
        let (trace_request, dispatch_span) = match (&self.obs, trace) {
            (Some(o), Some((rid, _))) => (rid, o.hub.next_span_id()),
            _ => (0, 0),
        };
        let task = Frame::Task {
            id: task_id,
            shard: shard as u32,
            shards: self.config.shards as u32,
            heartbeat_ms: self.config.heartbeat_ms,
            spec: spec.to_string(),
            // the primary already reports phase stats for this shard; a
            // second Stats frame would double-count the histograms
            want_stats: false,
            trace_request,
            trace_parent: dispatch_span,
        };
        let dispatched_nanos = self.obs.as_ref().map_or(0, |o| o.hub.now_nanos());
        let send = {
            let st = self.slots[slot].as_mut().expect("spawned above");
            st.frames_since_dispatch = 0;
            st.last_seen = Instant::now();
            st.dispatched_nanos = dispatched_nanos;
            st.dispatch_span_id = dispatch_span;
            st.handle.send(&task)
        };
        if send.is_err() {
            self.drop_slot(slot);
            return;
        }
        self.stats.hedges_dispatched += 1;
    }

    /// Books one consumed spawn attempt for `slot`: fails the request
    /// once retries are exhausted (feeding the breaker), otherwise
    /// sleeps the exponential backoff — clipped to the request deadline,
    /// and skipped entirely (failing fast with
    /// [`HostError::DeadlineExceeded`]) when the deadline has already
    /// passed, so a request can never sleep past its own expiry.
    fn retire_attempt(
        &mut self,
        slot: usize,
        attempts: &mut [u32],
        why: String,
        deadline: Option<Instant>,
    ) -> Result<(), HostError> {
        attempts[slot] += 1;
        self.stats.restarts += 1;
        if let Some(o) = &self.obs {
            o.hub
                .registry()
                .counter(
                    "sparseloop_fleet_shard_attempts_total",
                    &[("shard", &slot.to_string())],
                )
                .inc();
        }
        if attempts[slot] > self.config.max_retries {
            if self.breaker.record_failure() {
                self.stats.breaker_trips += 1;
            }
            return Err(HostError::WorkerLost {
                shard: slot,
                attempts: attempts[slot],
                last: why,
            });
        }
        self.stats.redispatches += 1;
        let exp = (attempts[slot] - 1).min(16);
        let mut backoff = self.config.backoff_base.saturating_mul(1 << exp);
        if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                self.stats.deadline_exceeded += 1;
                return Err(HostError::DeadlineExceeded);
            }
            backoff = backoff.min(d - now);
        }
        self.stats.backoff_nanos_total = self
            .stats
            .backoff_nanos_total
            .saturating_add(u64::try_from(backoff.as_nanos()).unwrap_or(u64::MAX));
        std::thread::sleep(backoff);
        Ok(())
    }

    /// Publishes the delta between the current [`HostStats`] and the
    /// last published copy into the hub's registry — called once per
    /// request, so after any request every fleet counter equals its
    /// stats field. Registration is idempotent, so the full catalog
    /// appears in snapshots even at zero.
    fn publish_metrics(&mut self) {
        let now = self.stats;
        let breaker_code = self.breaker.state().code();
        let Some(obs) = &mut self.obs else { return };
        let prev = obs.published;
        let reg = obs.hub.registry();
        let publish = |name: &str, labels: &[(&str, &str)], new: u64, old: u64| {
            let counter = reg.counter(name, labels);
            if new > old {
                counter.add(new - old);
            }
        };
        publish(
            "sparseloop_fleet_requests_total",
            &[],
            now.requests,
            prev.requests,
        );
        publish(
            "sparseloop_fleet_spawns_total",
            &[],
            now.spawns,
            prev.spawns,
        );
        publish(
            "sparseloop_fleet_restarts_total",
            &[],
            now.restarts,
            prev.restarts,
        );
        publish(
            "sparseloop_fleet_redispatches_total",
            &[],
            now.redispatches,
            prev.redispatches,
        );
        publish(
            "sparseloop_fleet_deaths_total",
            &[("cause", "eof")],
            now.deaths_eof,
            prev.deaths_eof,
        );
        publish(
            "sparseloop_fleet_deaths_total",
            &[("cause", "heartbeat_timeout")],
            now.deaths_heartbeat_timeout,
            prev.deaths_heartbeat_timeout,
        );
        publish(
            "sparseloop_fleet_kills_injected_total",
            &[],
            now.kills_injected,
            prev.kills_injected,
        );
        publish(
            "sparseloop_fleet_degraded_total",
            &[],
            now.degraded,
            prev.degraded,
        );
        publish(
            "sparseloop_fleet_frames_total",
            &[],
            now.frames_received,
            prev.frames_received,
        );
        publish(
            "sparseloop_fleet_backoff_nanos_total",
            &[],
            now.backoff_nanos_total,
            prev.backoff_nanos_total,
        );
        publish(
            "sparseloop_fleet_deadline_exceeded_total",
            &[],
            now.deadline_exceeded,
            prev.deadline_exceeded,
        );
        publish(
            "sparseloop_fleet_breaker_trips_total",
            &[],
            now.breaker_trips,
            prev.breaker_trips,
        );
        publish(
            "sparseloop_fleet_breaker_probes_total",
            &[],
            now.breaker_probes,
            prev.breaker_probes,
        );
        publish(
            "sparseloop_fleet_hedges_total",
            &[("kind", "dispatched")],
            now.hedges_dispatched,
            prev.hedges_dispatched,
        );
        publish(
            "sparseloop_fleet_hedges_total",
            &[("kind", "wins")],
            now.hedge_wins,
            prev.hedge_wins,
        );
        reg.gauge("sparseloop_fleet_breaker_state", &[])
            .set_u64(breaker_code);
        obs.published = now;
    }

    /// Folds one worker-side [`Frame::Stats`] into histograms and
    /// spans. Durations are in the worker's clock domain, so spans are
    /// anchored at receipt time minus duration (magnitudes are what
    /// matter). `timings` is `(compile_nanos, search_nanos)`, `counts`
    /// is `(generated, evaluated)`; both phase spans parent under
    /// `parent_span` — the dispatch span the task traveled in.
    fn observe_worker_stats(
        &self,
        request_id: u64,
        parent_span: u64,
        shard: u32,
        timings: (u64, u64),
        counts: (u64, u64),
    ) {
        let (compile_nanos, search_nanos) = timings;
        let (generated, evaluated) = counts;
        let Some(obs) = &self.obs else { return };
        let reg = obs.hub.registry();
        let shard_label = shard.to_string();
        reg.histogram(
            "sparseloop_worker_compile_nanos",
            &[("shard", &shard_label)],
            LATENCY_BUCKETS_NANOS,
        )
        .observe(compile_nanos);
        reg.histogram(
            "sparseloop_worker_search_nanos",
            &[("shard", &shard_label)],
            LATENCY_BUCKETS_NANOS,
        )
        .observe(search_nanos);
        reg.counter(
            "sparseloop_worker_candidates_total",
            &[("stage", "generated")],
        )
        .add(generated);
        reg.counter(
            "sparseloop_worker_candidates_total",
            &[("stage", "evaluated")],
        )
        .add(evaluated);
        let now = obs.hub.now_nanos();
        obs.hub.span_with_duration(
            request_id,
            SpanKind::WorkerCompile,
            Some(shard),
            now.saturating_sub(compile_nanos.saturating_add(search_nanos)),
            compile_nanos,
            parent_span,
        );
        obs.hub.span_with_duration(
            request_id,
            SpanKind::WorkerSearch,
            Some(shard),
            now.saturating_sub(search_nanos),
            search_nanos,
            parent_span,
        );
    }

    fn kill_slot(&mut self, slot: usize) {
        if let Some(mut st) = self.slots[slot].take() {
            st.handle.kill();
        }
    }

    fn drop_slot(&mut self, slot: usize) {
        self.slots[slot] = None;
    }

    /// Asks every live worker to exit, then severs the transports.
    pub fn shutdown(&mut self) {
        for st in self.slots.iter_mut().flatten() {
            let _ = st.handle.send(&Frame::Shutdown);
        }
        for slot in 0..self.slots.len() {
            self.kill_slot(slot);
        }
    }
}

impl<S: WorkerSpawner> Drop for ShardHost<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DiePoint;
    use crate::proc::ThreadSpawner;
    use sparseloop_designs::Experiment;
    use sparseloop_mapping::Mapspace;

    /// A small two-experiment scenario (one search, one fixed) whose
    /// debug-mode search finishes in well under a second.
    fn small_scenario() -> Scenario {
        Scenario::new("fault_demo", "small search for fault tests", || {
            let layer = sparseloop_workloads::spmspm(8, 8, 8, 0.5, 0.5);
            let dp = sparseloop_designs::fig1::bitmask_design(&layer.einsum);
            let space = Mapspace::all_temporal(&layer.einsum, &dp.arch);
            let search = Experiment::search("demo@search", dp.clone(), layer.clone(), space);
            let fixed_mapping = Mapspace::all_temporal(&layer.einsum, &dp.arch)
                .enumerate(1)
                .remove(0);
            let fixed = Experiment::fixed("demo@fixed", dp, layer, fixed_mapping);
            vec![search, fixed]
        })
    }

    fn reference_reply(text: &str, shards: usize) -> ScenarioReply {
        let scenario = sparseloop_spec::compile_str(text).unwrap().into_scenario();
        scenario_reply(scenario.run_sharded(&EvalSession::new(), shards))
    }

    fn assert_bit_identical(got: &ScenarioReply, want: &ScenarioReply, tag: &str) {
        assert_eq!(got.labels, want.labels, "{tag}");
        assert_eq!(got.results.len(), want.results.len(), "{tag}");
        for ((label, got), want) in got.labels.iter().zip(&got.results).zip(&want.results) {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    assert_eq!(g.mapping, w.mapping, "{tag}/{label}");
                    assert_eq!(g.eval.edp.to_bits(), w.eval.edp.to_bits(), "{tag}/{label}");
                    assert_eq!(
                        g.eval.cycles.to_bits(),
                        w.eval.cycles.to_bits(),
                        "{tag}/{label}"
                    );
                    assert_eq!(
                        g.eval.energy_pj.to_bits(),
                        w.eval.energy_pj.to_bits(),
                        "{tag}/{label}"
                    );
                    assert_eq!(g.stats, w.stats, "{tag}/{label}");
                }
                (Err(g), Err(w)) => assert_eq!(g, w, "{tag}/{label}"),
                (g, w) => panic!("{tag}/{label}: outcome kind mismatch: {g:?} vs {w:?}"),
            }
        }
    }

    fn fast_config(shards: usize) -> HostConfig {
        HostConfig::default()
            .with_shards(shards)
            .with_heartbeat(10, Duration::from_millis(300))
            .with_retries(2, Duration::from_millis(2))
    }

    #[test]
    fn fleet_matches_in_process_run_without_faults() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        for shards in [1usize, 2, 3] {
            let want = reference_reply(&text, shards);
            let mut host = ShardHost::new(fast_config(shards), ThreadSpawner);
            let got = host.run_spec(&text).unwrap();
            assert_bit_identical(&got, &want, &format!("shards={shards}"));
            let stats = host.stats();
            assert_eq!(stats.spawns, shards as u64);
            assert_eq!(stats.restarts, 0);
        }
    }

    #[test]
    fn every_die_point_recovers_bit_identically() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        for die in [
            DiePoint::Startup,
            DiePoint::AfterHello,
            DiePoint::BeforeResult,
        ] {
            for slot in [0u32, 1] {
                let plan = FaultPlan::none().with(slot, WorkerFault::DieAt(die));
                let mut host = ShardHost::new(fast_config(2).with_fault_plan(plan), ThreadSpawner);
                let got = host.run_spec(&text).unwrap();
                assert_bit_identical(&got, &want, &format!("die={die:?} slot={slot}"));
                assert!(
                    host.stats().restarts >= 1,
                    "die={die:?} slot={slot}: a death must have been survived"
                );
            }
        }
    }

    #[test]
    fn parent_side_kills_at_every_frame_offset_recover() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        for offset in 0u32..4 {
            let plan = FaultPlan::none().with(1, WorkerFault::KillAfterFrames(offset));
            let mut host = ShardHost::new(fast_config(2).with_fault_plan(plan), ThreadSpawner);
            let got = host.run_spec(&text).unwrap();
            assert_bit_identical(&got, &want, &format!("kill after {offset} frames"));
            if offset == 0 {
                assert_eq!(host.stats().kills_injected, 1);
                assert!(host.stats().restarts >= 1);
            }
        }
    }

    #[test]
    fn corrupted_and_dropped_results_are_survived() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        for (fault, tag) in [
            (WorkerFault::CorruptResult, "corrupt"),
            (WorkerFault::DropResult, "drop"),
        ] {
            let plan = FaultPlan::none().with(0, fault);
            let mut host = ShardHost::new(fast_config(2).with_fault_plan(plan), ThreadSpawner);
            let got = host.run_spec(&text).unwrap();
            assert_bit_identical(&got, &want, tag);
            assert!(host.stats().restarts >= 1, "{tag}: must survive a death");
        }
    }

    #[test]
    fn seeded_fault_schedules_converge_bit_identically() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        for seed in 0u64..6 {
            let plan = FaultPlan::from_seed(seed, 2);
            let mut host = ShardHost::new(fast_config(2).with_fault_plan(plan), ThreadSpawner);
            let got = host.run_spec(&text).unwrap();
            assert_bit_identical(&got, &want, &format!("seed={seed}"));
        }
    }

    #[test]
    fn stalled_worker_times_out_and_recovers() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        let plan = FaultPlan::none().with(1, WorkerFault::StallBeforeResult);
        let mut host = ShardHost::new(fast_config(2).with_fault_plan(plan), ThreadSpawner);
        let got = host.run_spec(&text).unwrap();
        assert_bit_identical(&got, &want, "stall");
        assert!(
            host.stats().deaths_heartbeat_timeout >= 1,
            "stall must be timed out"
        );
    }

    #[test]
    fn invalid_spec_fails_fast_without_spawning() {
        let mut host = ShardHost::new(fast_config(2), ThreadSpawner);
        match host.run_spec("scenario:\n  name: x\n  bogus: 1\n") {
            Err(HostError::InvalidSpec(diag)) => {
                assert_eq!(diag.line, 3, "{diag}");
                assert!(diag.context.contains("bogus"), "{diag}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        assert_eq!(host.stats().spawns, 0, "compile errors must not spawn");
        assert_eq!(host.stats().restarts, 0, "compile errors must not retry");
    }

    /// A spawner whose workers always die at startup — every spawn
    /// succeeds, every worker is a corpse.
    struct Moribund;
    impl WorkerSpawner for Moribund {
        fn spawn(
            &self,
            slot: u32,
            epoch: u64,
            _fault: Option<WorkerFault>,
            events: mpsc::Sender<WorkerEvent>,
        ) -> std::io::Result<Box<dyn WorkerHandle>> {
            ThreadSpawner.spawn(
                slot,
                epoch,
                Some(WorkerFault::DieAt(DiePoint::Startup)),
                events,
            )
        }
    }

    #[test]
    fn exhausted_retries_report_worker_lost() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let mut host = ShardHost::new(fast_config(1), Moribund);
        match host.run_spec(&text) {
            Err(HostError::WorkerLost {
                shard, attempts, ..
            }) => {
                assert_eq!(shard, 0);
                assert_eq!(attempts, 3, "max_retries 2 = 3 attempts");
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }
    }

    #[test]
    fn unspawnable_workers_degrade_to_in_process() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        let spawner = crate::proc::ProcessSpawner::new("/nonexistent/sparseloop-shard-worker");
        let mut host = ShardHost::new(fast_config(2), spawner);
        let got = host.run_spec(&text).unwrap();
        assert_bit_identical(&got, &want, "degraded");
        assert_eq!(host.stats().degraded, 1);
    }

    #[test]
    fn request_deadline_is_enforced() {
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let mut host = ShardHost::new(
            fast_config(2).with_deadline(Duration::from_millis(1)),
            ThreadSpawner,
        );
        // the 1ms budget cannot cover a debug-mode compile + search
        match host.run_spec(&text) {
            Err(HostError::DeadlineExceeded) => {}
            Ok(_) => { /* astonishingly fast machine: nothing to assert */ }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    /// Every fleet counter in the registry must equal its [`HostStats`]
    /// field after a request — the published deltas reconcile exactly.
    fn assert_metrics_match_stats(host: &ShardHost<impl WorkerSpawner>, tag: &str) {
        let stats = host.stats();
        let snap = host.hub().expect("observed host").snapshot();
        let field = |name: &str, labels: &[(&str, &str)]| {
            snap.value(name, labels)
                .unwrap_or_else(|| panic!("{tag}: metric {name} missing"))
        };
        assert_eq!(
            field("sparseloop_fleet_requests_total", &[]),
            i128::from(stats.requests),
            "{tag}: requests"
        );
        assert_eq!(
            field("sparseloop_fleet_spawns_total", &[]),
            i128::from(stats.spawns),
            "{tag}: spawns"
        );
        assert_eq!(
            field("sparseloop_fleet_restarts_total", &[]),
            i128::from(stats.restarts),
            "{tag}: restarts"
        );
        assert_eq!(
            field("sparseloop_fleet_deaths_total", &[("cause", "eof")]),
            i128::from(stats.deaths_eof),
            "{tag}: deaths_eof"
        );
        assert_eq!(
            field(
                "sparseloop_fleet_deaths_total",
                &[("cause", "heartbeat_timeout")]
            ),
            i128::from(stats.deaths_heartbeat_timeout),
            "{tag}: deaths_heartbeat_timeout"
        );
        assert_eq!(
            field("sparseloop_fleet_kills_injected_total", &[]),
            i128::from(stats.kills_injected),
            "{tag}: kills_injected"
        );
        assert_eq!(
            field("sparseloop_fleet_degraded_total", &[]),
            i128::from(stats.degraded),
            "{tag}: degraded"
        );
        assert_eq!(
            field("sparseloop_fleet_frames_total", &[]),
            i128::from(stats.frames_received),
            "{tag}: frames"
        );
        assert_eq!(
            field("sparseloop_fleet_backoff_nanos_total", &[]),
            i128::from(stats.backoff_nanos_total),
            "{tag}: backoff"
        );
        assert_eq!(
            field("sparseloop_fleet_deadline_exceeded_total", &[]),
            i128::from(stats.deadline_exceeded),
            "{tag}: deadline_exceeded"
        );
        assert_eq!(
            field("sparseloop_fleet_breaker_trips_total", &[]),
            i128::from(stats.breaker_trips),
            "{tag}: breaker_trips"
        );
        assert_eq!(
            field("sparseloop_fleet_breaker_probes_total", &[]),
            i128::from(stats.breaker_probes),
            "{tag}: breaker_probes"
        );
        assert_eq!(
            field("sparseloop_fleet_hedges_total", &[("kind", "dispatched")]),
            i128::from(stats.hedges_dispatched),
            "{tag}: hedges_dispatched"
        );
        assert_eq!(
            field("sparseloop_fleet_hedges_total", &[("kind", "wins")]),
            i128::from(stats.hedge_wins),
            "{tag}: hedge_wins"
        );
        assert_eq!(
            field("sparseloop_fleet_breaker_state", &[]),
            i128::from(host.breaker_state().code()),
            "{tag}: breaker_state gauge"
        );
    }

    #[test]
    fn eof_death_is_split_from_heartbeat_death() {
        use sparseloop_obs::ObsHub;
        let text = sparseloop_spec::emit_scenario(&small_scenario());

        // a worker dying before its result is an EOF death
        let plan = FaultPlan::none().with(0, WorkerFault::DieAt(DiePoint::BeforeResult));
        let mut host = ShardHost::new_observed(
            fast_config(2).with_fault_plan(plan),
            ThreadSpawner,
            ObsHub::new(),
        );
        host.run_spec(&text).unwrap();
        let stats = host.stats();
        assert!(stats.deaths_eof >= 1, "die-before-result is an EOF death");
        assert_eq!(stats.deaths_heartbeat_timeout, 0);
        assert_metrics_match_stats(&host, "eof");

        // a stalled worker is a heartbeat death
        let plan = FaultPlan::none().with(1, WorkerFault::StallBeforeResult);
        let mut host = ShardHost::new_observed(
            fast_config(2).with_fault_plan(plan),
            ThreadSpawner,
            ObsHub::new(),
        );
        host.run_spec(&text).unwrap();
        let stats = host.stats();
        assert!(
            stats.deaths_heartbeat_timeout >= 1,
            "stall is a heartbeat death"
        );
        assert!(
            stats.backoff_nanos_total > 0,
            "a retry must have backed off"
        );
        assert_metrics_match_stats(&host, "stall");
    }

    #[test]
    fn observed_host_ships_worker_phase_timings() {
        use sparseloop_obs::{ObsHub, SpanKind};
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        let hub = ObsHub::new();
        let mut host = ShardHost::new_observed(fast_config(2), ThreadSpawner, hub.clone());
        let got = host.run_spec(&text).unwrap();
        assert_bit_identical(&got, &want, "observed");
        assert_metrics_match_stats(&host, "observed");

        // both shards reported phase timings over the protocol
        let snap = hub.snapshot();
        for shard in ["0", "1"] {
            assert_eq!(
                snap.value("sparseloop_worker_search_nanos", &[("shard", shard)]),
                Some(1),
                "shard {shard} search timing"
            );
            assert_eq!(
                snap.value("sparseloop_worker_compile_nanos", &[("shard", shard)]),
                Some(1),
                "shard {shard} compile timing"
            );
        }
        let events = hub.traces().events();
        let kinds: Vec<SpanKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&SpanKind::WorkerCompile));
        assert!(kinds.contains(&SpanKind::WorkerSearch));
        assert!(kinds.contains(&SpanKind::ShardDispatch));
        assert!(kinds.contains(&SpanKind::WorkerRoundTrip));
        // worker candidate counters match the merged search stats
        let total_generated: u64 = got
            .results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|o| o.stats.generated as u64)
            .sum();
        let wire_generated = snap
            .value(
                "sparseloop_worker_candidates_total",
                &[("stage", "generated")],
            )
            .unwrap();
        // fixed-mapping experiments are evaluated parent-side (stats
        // synthesized there), so the wire total is a lower bound
        assert!(
            wire_generated > 0 && wire_generated <= i128::from(total_generated),
            "wire generated {wire_generated} vs merged {total_generated}"
        );
    }

    #[test]
    fn deadline_and_degraded_metrics_reconcile() {
        use sparseloop_obs::ObsHub;
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let mut host = ShardHost::new_observed(
            fast_config(2).with_deadline(Duration::from_millis(1)),
            ThreadSpawner,
            ObsHub::new(),
        );
        if let Err(HostError::DeadlineExceeded) = host.run_spec(&text) {
            assert_eq!(host.stats().deadline_exceeded, 1);
        }
        assert_metrics_match_stats(&host, "deadline");

        let spawner = crate::proc::ProcessSpawner::new("/nonexistent/sparseloop-shard-worker");
        let mut host = ShardHost::new_observed(fast_config(2), spawner, ObsHub::new());
        host.run_spec(&text).unwrap();
        assert_eq!(host.stats().degraded, 1);
        assert_metrics_match_stats(&host, "degraded");
    }

    #[test]
    fn fleet_survives_back_to_back_requests() {
        // the second request reuses the (restarted) fleet from the
        // first — state from a faulted request must not leak forward
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        let plan = FaultPlan::none().with(0, WorkerFault::DieAt(DiePoint::BeforeResult));
        let mut host = ShardHost::new(fast_config(2).with_fault_plan(plan), ThreadSpawner);
        for round in 0..2 {
            let got = host.run_spec(&text).unwrap();
            assert_bit_identical(&got, &want, &format!("round {round}"));
        }
        assert_eq!(host.stats().requests, 2);
    }

    #[test]
    fn backoff_respects_request_deadline() {
        // regression: retry backoff used to sleep its full exponential
        // schedule even after the request deadline had expired, so a
        // 150ms-deadline request could block for seconds
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let mut host = ShardHost::new(
            HostConfig::default()
                .with_shards(1)
                .with_heartbeat(10, Duration::from_millis(300))
                .with_retries(3, Duration::from_secs(10))
                .with_deadline(Duration::from_millis(150)),
            Moribund,
        );
        let started = Instant::now();
        let got = host.run_spec(&text);
        let elapsed = started.elapsed();
        assert!(
            matches!(got, Err(HostError::DeadlineExceeded)),
            "expected DeadlineExceeded, got {got:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "must fail fast instead of sleeping a 10s backoff: {elapsed:?}"
        );
        assert_eq!(host.stats().deadline_exceeded, 1);
    }

    /// A spawner that refuses the first `failures` spawn attempts, then
    /// behaves like [`ThreadSpawner`] — drives the breaker through a
    /// scripted trip/probe/recover trajectory.
    struct Flaky {
        failures: std::sync::atomic::AtomicU32,
    }
    impl WorkerSpawner for Flaky {
        fn spawn(
            &self,
            slot: u32,
            epoch: u64,
            fault: Option<WorkerFault>,
            events: mpsc::Sender<WorkerEvent>,
        ) -> std::io::Result<Box<dyn WorkerHandle>> {
            use std::sync::atomic::Ordering;
            let left = self.failures.load(Ordering::SeqCst);
            if left > 0 {
                self.failures.store(left - 1, Ordering::SeqCst);
                return Err(std::io::Error::other("transient spawn refusal"));
            }
            ThreadSpawner.spawn(slot, epoch, fault, events)
        }
    }

    #[test]
    fn breaker_trips_and_recovers_deterministically() {
        use crate::breaker::BreakerConfig;
        use sparseloop_obs::{ManualClock, ObsHub};
        use std::sync::Arc;
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        let clock = Arc::new(ManualClock::new());
        let hub = ObsHub::with_clock(clock.clone(), 64);
        let spawner = Flaky {
            failures: std::sync::atomic::AtomicU32::new(3),
        };
        let cfg = fast_config(2).with_breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown_nanos: 1_000,
        });
        let mut host = ShardHost::new_observed(cfg, spawner, hub.clone());
        assert_eq!(host.breaker_state(), BreakerState::Closed);

        // two consecutive spawn-failure requests trip the breaker; both
        // are still served via the degraded in-process path
        for round in 0..2 {
            let got = host.run_spec(&text).unwrap();
            assert_bit_identical(&got, &want, &format!("failing round {round}"));
        }
        assert_eq!(host.breaker_state(), BreakerState::Open);
        assert_eq!(host.stats().breaker_trips, 1);
        assert_eq!(host.stats().degraded, 2);
        assert_eq!(
            hub.snapshot().value("sparseloop_fleet_breaker_state", &[]),
            Some(1),
            "open gauge"
        );

        // while open, requests short-circuit: no spawn attempts at all
        let refusals_before = host
            .spawner
            .failures
            .load(std::sync::atomic::Ordering::SeqCst);
        let got = host.run_spec(&text).unwrap();
        assert_bit_identical(&got, &want, "open short-circuit");
        assert_eq!(host.stats().degraded, 3);
        assert_eq!(
            host.spawner
                .failures
                .load(std::sync::atomic::Ordering::SeqCst),
            refusals_before,
            "an open breaker must not attempt spawns"
        );

        // cooldown elapses: a probe goes through, still fails (one
        // refusal left), and re-opens the breaker
        clock.advance(1_000);
        host.run_spec(&text).unwrap();
        assert_eq!(host.breaker_state(), BreakerState::Open);
        assert_eq!(host.stats().breaker_trips, 2);
        assert_eq!(host.stats().breaker_probes, 1);

        // next cooldown: the probe succeeds and closes the breaker
        clock.advance(1_000);
        let got = host.run_spec(&text).unwrap();
        assert_bit_identical(&got, &want, "recovered");
        assert_eq!(host.breaker_state(), BreakerState::Closed);
        assert_eq!(host.stats().breaker_probes, 2);
        assert_eq!(
            hub.snapshot().value("sparseloop_fleet_breaker_state", &[]),
            Some(0),
            "closed gauge"
        );
        assert_metrics_match_stats(&host, "breaker");
    }

    #[test]
    fn hedged_dispatch_takes_first_result_bit_identically() {
        // shard 1's primary worker is a deterministic 2s straggler; a
        // hedge to the spare slot must win long before it finishes,
        // without changing a single bit of the reply
        let text = sparseloop_spec::emit_scenario(&small_scenario());
        let want = reference_reply(&text, 2);
        let plan = FaultPlan::none().with(1, WorkerFault::SlowFrames { delay_ms: 2_000 });
        let cfg = HostConfig::default()
            .with_shards(2)
            .with_heartbeat(10, Duration::from_secs(10))
            .with_retries(2, Duration::from_millis(2))
            .with_fault_plan(plan)
            .with_hedging(HedgeConfig::default());
        let mut host = ShardHost::new(cfg, ThreadSpawner);
        let started = Instant::now();
        let got = host.run_spec(&text).unwrap();
        let elapsed = started.elapsed();
        assert_bit_identical(&got, &want, "hedged");
        assert!(
            elapsed < Duration::from_secs(2),
            "hedge must beat the 2s straggler, took {elapsed:?}"
        );
        let stats = host.stats();
        assert!(stats.hedges_dispatched >= 1, "stats: {stats:?}");
        assert!(stats.hedge_wins >= 1, "stats: {stats:?}");
    }
}
