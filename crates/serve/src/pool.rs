//! A shared, long-lived pool of [`ShardHost`] fleets.
//!
//! The service→fleet integration must not pay a full worker-fleet
//! spawn per request: a [`FleetPool`] owns a fixed set of hosts whose
//! worker processes are **prewarmed at construction and reused across
//! requests**. Service workers check a host out, run one spec, and
//! check it back in — a classic object pool with a [`Condvar`] for the
//! "all hosts busy" case, so concurrent service workers queue instead
//! of spawning throwaway fleets.
//!
//! Between requests the pool keeps the fleet healthy *proactively*:
//! when a host has not been examined for
//! [`FleetPoolConfig::health_interval`], its next checkout first runs
//! [`ShardHost::health_check`] — Ping/Pong probes over the worker
//! protocol, killing silent workers and respawning missing primaries —
//! so a worker that died while idle is replaced before a request
//! trips over it, not discovered through retry backoff.
//!
//! Every host shares the pool's [`ObsHub`] (when observed); host
//! counters are delta-published, so fleet-wide metrics are exact sums
//! over the pool. The pool adds its own series: checkout and
//! health-sweep totals, workers proactively replaced, and an
//! idle-host gauge.

use crate::proc::{ProcessSpawner, ThreadSpawner, WorkerEvent, WorkerHandle, WorkerSpawner};
use crate::service::ScenarioReply;
use crate::supervisor::{HostConfig, HostError, HostStats, ShardHost};
use sparseloop_obs::{ObsHub, SpanKind, TraceContext};
use std::path::Path;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A spawner trait object, so one pool type can host thread- or
/// process-backed fleets (and test doubles) without a generic
/// parameter spreading into the service.
pub type BoxedSpawner = Box<dyn WorkerSpawner + Send + Sync>;

impl WorkerSpawner for BoxedSpawner {
    fn spawn(
        &self,
        slot: u32,
        epoch: u64,
        fault: Option<crate::fault::WorkerFault>,
        events: mpsc::Sender<WorkerEvent>,
    ) -> std::io::Result<Box<dyn WorkerHandle>> {
        (**self).spawn(slot, epoch, fault, events)
    }
}

/// Pool sizing and health-sweep cadence.
#[derive(Debug, Clone)]
pub struct FleetPoolConfig {
    /// Hosts (independent worker fleets) in the pool; also the maximum
    /// number of fleet requests in flight at once.
    pub hosts: usize,
    /// Supervision config applied to every host.
    pub host: HostConfig,
    /// A host idle longer than this gets a Ping/Pong health sweep
    /// before its next request.
    pub health_interval: Duration,
    /// How long one health sweep waits for pongs.
    pub health_timeout: Duration,
}

impl Default for FleetPoolConfig {
    fn default() -> Self {
        FleetPoolConfig {
            hosts: 2,
            host: HostConfig::default(),
            health_interval: Duration::from_secs(30),
            health_timeout: Duration::from_millis(250),
        }
    }
}

impl FleetPoolConfig {
    /// Sets the host count (`>= 1`).
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts.max(1);
        self
    }

    /// Sets the per-host supervision config.
    pub fn with_host_config(mut self, host: HostConfig) -> Self {
        self.host = host;
        self
    }

    /// Sets the idle-time threshold that triggers a health sweep.
    pub fn with_health_interval(mut self, interval: Duration) -> Self {
        self.health_interval = interval;
        self
    }
}

/// Point-in-time pool counters (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Host checkouts served (== fleet requests routed via the pool).
    pub checkouts: u64,
    /// Health sweeps run on idle-too-long hosts.
    pub health_sweeps: u64,
    /// Ping probes sent across all sweeps.
    pub pings_sent: u64,
    /// Pong answers received across all sweeps.
    pub pongs_received: u64,
    /// Workers found dead or silent and proactively replaced.
    pub workers_replaced: u64,
}

struct PooledHost {
    host: ShardHost<BoxedSpawner>,
    last_health: Instant,
}

struct PoolShared {
    /// Fixed slots; `None` while that host is checked out.
    hosts: Mutex<Vec<Option<PooledHost>>>,
    available: Condvar,
    stats: Mutex<PoolStats>,
    config: FleetPoolConfig,
    hub: Option<ObsHub>,
}

/// A cloneable handle to a shared fleet pool (see the
/// [module docs](self)).
#[derive(Clone)]
pub struct FleetPool {
    inner: Arc<PoolShared>,
}

impl FleetPool {
    /// A pool of in-thread fleets (workers share the parent process) —
    /// the right transport for tests and single-binary deployments.
    pub fn threads(config: FleetPoolConfig) -> Self {
        Self::with_spawners(config, |_| Box::new(ThreadSpawner), None)
    }

    /// A pool of real worker-process fleets running `worker_bin`.
    pub fn processes(config: FleetPoolConfig, worker_bin: impl AsRef<Path>) -> Self {
        let bin = worker_bin.as_ref().to_path_buf();
        Self::with_spawners(config, move |_| Box::new(ProcessSpawner::new(&bin)), None)
    }

    /// Like [`threads`](Self::threads), publishing into `hub`.
    pub fn threads_observed(config: FleetPoolConfig, hub: ObsHub) -> Self {
        Self::with_spawners(config, |_| Box::new(ThreadSpawner), Some(hub))
    }

    /// Like [`processes`](Self::processes), publishing into `hub`.
    pub fn processes_observed(
        config: FleetPoolConfig,
        worker_bin: impl AsRef<Path>,
        hub: ObsHub,
    ) -> Self {
        let bin = worker_bin.as_ref().to_path_buf();
        Self::with_spawners(
            config,
            move |_| Box::new(ProcessSpawner::new(&bin)),
            Some(hub),
        )
    }

    /// The general form: one spawner per host index. Hosts are
    /// prewarmed eagerly; a host whose workers cannot spawn yet stays
    /// in the pool (its requests degrade or trip its breaker).
    pub fn with_spawners(
        config: FleetPoolConfig,
        mut make_spawner: impl FnMut(usize) -> BoxedSpawner,
        hub: Option<ObsHub>,
    ) -> Self {
        let count = config.hosts.max(1);
        let mut hosts = Vec::with_capacity(count);
        for i in 0..count {
            let spawner = make_spawner(i);
            let mut host = match &hub {
                Some(h) => ShardHost::new_observed(config.host.clone(), spawner, h.clone()),
                None => ShardHost::new(config.host.clone(), spawner),
            };
            let _ = host.prewarm();
            hosts.push(Some(PooledHost {
                host,
                last_health: Instant::now(),
            }));
        }
        let pool = FleetPool {
            inner: Arc::new(PoolShared {
                hosts: Mutex::new(hosts),
                available: Condvar::new(),
                stats: Mutex::new(PoolStats::default()),
                config,
                hub,
            }),
        };
        pool.publish_metrics();
        pool
    }

    /// Runs one spec through a pooled fleet: checkout (blocking until a
    /// host is free), optional health sweep, dispatch, checkin.
    pub fn run_spec(&self, text: &str) -> Result<ScenarioReply, HostError> {
        self.run_spec_traced(text, None)
    }

    /// [`run_spec`](Self::run_spec) under a caller-provided trace
    /// context: the checkout span and everything the host records are
    /// tagged with the originating request and parented under its span.
    pub fn run_spec_traced(
        &self,
        text: &str,
        ctx: Option<TraceContext>,
    ) -> Result<ScenarioReply, HostError> {
        let checkout_start = self.inner.hub.as_ref().map(|h| h.now_nanos());
        let (index, mut pooled) = self.checkout();
        if let (Some(hub), Some(start)) = (&self.inner.hub, checkout_start) {
            let ctx = ctx.unwrap_or_default();
            hub.span_in(
                ctx.request_id,
                SpanKind::PoolCheckout,
                Some(index as u32),
                start,
                ctx.parent_span_id,
            );
        }
        if pooled.last_health.elapsed() >= self.inner.config.health_interval {
            let report = pooled.host.health_check(self.inner.config.health_timeout);
            pooled.last_health = Instant::now();
            let mut stats = self.inner.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.health_sweeps += 1;
            stats.pings_sent += report.pings_sent;
            stats.pongs_received += report.pongs_received;
            stats.workers_replaced += report.workers_replaced;
        }
        let result = pooled.host.run_spec_traced(text, ctx);
        self.checkin(index, pooled);
        result
    }

    /// Forces a health sweep on every currently idle host (the pool
    /// normally sweeps lazily at checkout; this is for shutdown checks
    /// and tests).
    pub fn health_check_all(&self) -> crate::supervisor::HealthReport {
        let mut total = crate::supervisor::HealthReport::default();
        let mut hosts = self.inner.hosts.lock().unwrap_or_else(|e| e.into_inner());
        let mut sweeps = 0u64;
        for slot in hosts.iter_mut() {
            if let Some(pooled) = slot.as_mut() {
                let report = pooled.host.health_check(self.inner.config.health_timeout);
                pooled.last_health = Instant::now();
                sweeps += 1;
                total.pings_sent += report.pings_sent;
                total.pongs_received += report.pongs_received;
                total.workers_replaced += report.workers_replaced;
            }
        }
        drop(hosts);
        let mut stats = self.inner.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.health_sweeps += sweeps;
        stats.pings_sent += total.pings_sent;
        stats.pongs_received += total.pongs_received;
        stats.workers_replaced += total.workers_replaced;
        drop(stats);
        self.publish_metrics();
        total
    }

    /// Pool counters.
    pub fn stats(&self) -> PoolStats {
        *self.inner.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sum of [`HostStats`] over hosts currently in the pool (a host
    /// mid-request is excluded until checkin — call with the pool
    /// quiescent for exact totals).
    pub fn host_stats(&self) -> HostStats {
        let hosts = self.inner.hosts.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = HostStats::default();
        for pooled in hosts.iter().flatten() {
            let s = pooled.host.stats();
            total.requests += s.requests;
            total.spawns += s.spawns;
            total.restarts += s.restarts;
            total.redispatches += s.redispatches;
            total.deaths_eof += s.deaths_eof;
            total.deaths_heartbeat_timeout += s.deaths_heartbeat_timeout;
            total.kills_injected += s.kills_injected;
            total.degraded += s.degraded;
            total.frames_received += s.frames_received;
            total.backoff_nanos_total += s.backoff_nanos_total;
            total.deadline_exceeded += s.deadline_exceeded;
            total.breaker_trips += s.breaker_trips;
            total.breaker_probes += s.breaker_probes;
            total.hedges_dispatched += s.hedges_dispatched;
            total.hedge_wins += s.hedge_wins;
        }
        total
    }

    /// The hub this pool publishes into, if observed.
    pub fn hub(&self) -> Option<&ObsHub> {
        self.inner.hub.as_ref()
    }

    /// Asks every idle host to shut its workers down (checked-out hosts
    /// shut down at drop).
    pub fn shutdown(&self) {
        let mut hosts = self.inner.hosts.lock().unwrap_or_else(|e| e.into_inner());
        for slot in hosts.iter_mut() {
            if let Some(pooled) = slot.as_mut() {
                pooled.host.shutdown();
            }
        }
    }

    fn checkout(&self) -> (usize, PooledHost) {
        let mut hosts = self.inner.hosts.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(index) = hosts.iter().position(Option::is_some) {
                let pooled = hosts[index].take().expect("position() found Some");
                drop(hosts);
                let mut stats = self.inner.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.checkouts += 1;
                drop(stats);
                self.publish_metrics();
                return (index, pooled);
            }
            hosts = self
                .inner
                .available
                .wait(hosts)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn checkin(&self, index: usize, pooled: PooledHost) {
        let mut hosts = self.inner.hosts.lock().unwrap_or_else(|e| e.into_inner());
        hosts[index] = Some(pooled);
        drop(hosts);
        self.inner.available.notify_one();
        self.publish_metrics();
    }

    /// Publishes pool counters and the idle-host gauge. Counters are
    /// set to the stats snapshot via deltas like the hosts do, so the
    /// registry equals [`PoolStats`] after every transition.
    fn publish_metrics(&self) {
        let Some(hub) = &self.inner.hub else { return };
        let stats = self.stats();
        let idle = {
            let hosts = self.inner.hosts.lock().unwrap_or_else(|e| e.into_inner());
            hosts.iter().filter(|h| h.is_some()).count() as u64
        };
        let reg = hub.registry();
        let set_counter = |name: &str, value: u64| {
            let c = reg.counter(name, &[]);
            let current = c.get();
            if value > current {
                c.add(value - current);
            }
        };
        set_counter("sparseloop_pool_checkouts_total", stats.checkouts);
        set_counter("sparseloop_pool_health_sweeps_total", stats.health_sweeps);
        set_counter("sparseloop_pool_pings_total", stats.pings_sent);
        set_counter("sparseloop_pool_pongs_total", stats.pongs_received);
        set_counter(
            "sparseloop_pool_workers_replaced_total",
            stats.workers_replaced,
        );
        reg.gauge("sparseloop_pool_idle_hosts", &[]).set_u64(idle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool_config(hosts: usize, shards: usize) -> FleetPoolConfig {
        FleetPoolConfig::default()
            .with_hosts(hosts)
            .with_host_config(
                HostConfig::default()
                    .with_shards(shards)
                    .with_heartbeat(10, Duration::from_millis(300))
                    .with_retries(2, Duration::from_millis(2)),
            )
    }

    fn demo_spec() -> String {
        let scenario = sparseloop_designs::Scenario::new("pool_demo", "tiny pool demo", || {
            let layer = sparseloop_workloads::spmspm(8, 8, 8, 0.5, 0.5);
            let dp = sparseloop_designs::fig1::bitmask_design(&layer.einsum);
            let space = sparseloop_mapping::Mapspace::all_temporal(&layer.einsum, &dp.arch);
            vec![sparseloop_designs::Experiment::search(
                "pool@search",
                dp,
                layer,
                space,
            )]
        });
        sparseloop_spec::emit_scenario(&scenario)
    }

    #[test]
    fn pooled_hosts_are_reused_not_respawned() {
        let text = demo_spec();
        let pool = FleetPool::threads(pool_config(1, 2));
        for _ in 0..3 {
            pool.run_spec(&text).unwrap();
        }
        let hosts = pool.host_stats();
        assert_eq!(hosts.requests, 3);
        assert_eq!(
            hosts.spawns, 2,
            "3 requests over 2 prewarmed workers must not respawn"
        );
        assert_eq!(pool.stats().checkouts, 3);
    }

    #[test]
    fn concurrent_requests_share_the_pool() {
        let text = demo_spec();
        let pool = FleetPool::threads(pool_config(2, 2));
        let mut replies = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = pool.clone();
                    let text = &text;
                    scope.spawn(move || pool.run_spec(text).unwrap())
                })
                .collect();
            for h in handles {
                replies.push(h.join().unwrap());
            }
        });
        // every reply identical: same spec, bit-identical merge
        for r in &replies[1..] {
            assert_eq!(r.labels, replies[0].labels);
        }
        assert_eq!(pool.stats().checkouts, 4);
        assert_eq!(pool.host_stats().requests, 4);
    }

    #[test]
    fn stale_hosts_get_health_swept_at_checkout() {
        let text = demo_spec();
        let pool =
            FleetPool::threads(pool_config(1, 2).with_health_interval(Duration::from_millis(0)));
        pool.run_spec(&text).unwrap();
        let stats = pool.stats();
        assert!(stats.health_sweeps >= 1, "{stats:?}");
        assert_eq!(stats.pings_sent, stats.pongs_received, "{stats:?}");
        assert_eq!(stats.workers_replaced, 0, "healthy fleet: {stats:?}");
    }

    #[test]
    fn health_sweep_replaces_dead_workers() {
        use crate::fault::{DiePoint, WorkerFault};
        // a spawner whose FIRST worker dies right after Hello: the
        // prewarmed fleet silently loses it while idle
        struct FirstOneDies {
            spawned: AtomicU64,
        }
        impl WorkerSpawner for FirstOneDies {
            fn spawn(
                &self,
                slot: u32,
                epoch: u64,
                fault: Option<WorkerFault>,
                events: mpsc::Sender<WorkerEvent>,
            ) -> std::io::Result<Box<dyn WorkerHandle>> {
                let n = self.spawned.fetch_add(1, Ordering::SeqCst);
                let fault = if n == 0 {
                    Some(WorkerFault::DieAt(DiePoint::AfterHello))
                } else {
                    fault
                };
                ThreadSpawner.spawn(slot, epoch, fault, events)
            }
        }
        let pool = FleetPool::with_spawners(
            pool_config(1, 2),
            |_| {
                Box::new(FirstOneDies {
                    spawned: AtomicU64::new(0),
                })
            },
            None,
        );
        // give the doomed worker a moment to die, then sweep
        std::thread::sleep(Duration::from_millis(50));
        let report = pool.health_check_all();
        assert_eq!(report.workers_replaced, 1, "{report:?}");
        // the replaced fleet serves correctly
        pool.run_spec(&demo_spec()).unwrap();
        assert_eq!(pool.host_stats().requests, 1);
    }
}
