//! A bounded, priority-aware MPMC queue with admission control, load
//! shedding, and drain-on-close semantics — the service's backpressure
//! primitive.
//!
//! The queue holds one FIFO band per [`Priority`]; consumers always pop
//! the most urgent non-empty band, FIFO within a band. Producers see a
//! hard admission boundary: [`BoundedQueue::try_push`] fails
//! immediately when the queue holds `capacity` items, so a saturated
//! service rejects new work instead of buffering without bound (callers
//! that prefer to wait use [`push_blocking`](BoundedQueue::push_blocking)).
//!
//! Overload policy lives in [`BoundedQueue::admit`], which decides
//! atomically under one lock — so the shed invariant ("a shed request
//! is never higher priority than any admitted one at shed time") holds
//! structurally, not statistically:
//!
//! * below the shed watermark, everything is admitted;
//! * at or above the watermark, [`Priority::Background`] arrivals are
//!   shed early, keeping headroom for urgent work;
//! * at capacity, an arrival displaces the *youngest item of the
//!   lowest-priority band strictly below it* (the victim is returned to
//!   the caller to be failed with a structured shed error); if nothing
//!   strictly lower is queued, the arrival itself is refused.
//!
//! Consumers block on [`pop`](BoundedQueue::pop) until an item arrives;
//! after [`close`](BoundedQueue::close) the queue admits nothing new
//! but *drains*: `pop` keeps returning queued items until the queue is
//! empty, then returns `None` — exactly the graceful-shutdown contract
//! the service's workers rely on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Request urgency class. Declaration order is urgency-descending:
/// `Interactive` is served first and sheds last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// A user is waiting on the reply (served first, never shed early).
    Interactive,
    /// Bulk work with a deadline measured in minutes — the default.
    Batch,
    /// Best-effort fill work; first to be shed under overload.
    Background,
}

impl Priority {
    /// All priorities, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Band index (0 = most urgent).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// Stable lowercase name (metric label / CLI value).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue already holds `capacity` items; the value is returned.
    Full(T),
    /// The queue was closed; the value is returned.
    Closed(T),
}

/// Outcome of a priority-aware [`BoundedQueue::admit`]. `depth` is the
/// queue depth observed under the admission lock (before any
/// displacement), so refusals carry honest context.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission<T> {
    /// The item was enqueued.
    Enqueued,
    /// The item was enqueued by evicting `victim` (strictly lower
    /// priority); the caller must fail the victim with a shed error.
    Displaced {
        /// The evicted item.
        victim: T,
        /// The evicted item's priority (strictly below the arrival's).
        victim_priority: Priority,
    },
    /// At capacity with nothing strictly lower-priority to displace;
    /// the arrival is returned (plain backpressure).
    Full(T, usize),
    /// The shed watermark refused the arrival early (lowest priority
    /// only); the arrival is returned.
    Shed(T, usize),
    /// The queue was closed; the arrival is returned.
    Closed(T),
}

struct State<T> {
    bands: [VecDeque<(T, Priority)>; 3],
    closed: bool,
}

impl<T> State<T> {
    fn depth(&self) -> usize {
        self.bands.iter().map(VecDeque::len).sum()
    }
}

/// The bounded queue (see the [module docs](self)).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` undrained items
    /// (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                bands: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued across all bands (racy snapshot, for
    /// stats only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").depth()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items currently queued at `priority` (racy snapshot).
    pub fn depth_of(&self, priority: Priority) -> usize {
        self.state.lock().expect("queue poisoned").bands[priority.index()].len()
    }

    /// Non-blocking admission at [`Priority::Batch`] with the legacy
    /// contract: no displacement, no watermark — full means refused.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.depth() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.bands[Priority::Batch.index()].push_back((item, Priority::Batch));
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Priority-aware admission under one lock (see the [module
    /// docs](self) for the policy). `shed_watermark` is clamped to
    /// `capacity`; pass `capacity` to disable early shedding.
    pub fn admit(&self, item: T, priority: Priority, shed_watermark: usize) -> Admission<T> {
        let watermark = shed_watermark.min(self.capacity);
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Admission::Closed(item);
        }
        let depth = state.depth();
        if priority == Priority::Background && depth >= watermark {
            return Admission::Shed(item, depth);
        }
        if depth >= self.capacity {
            // evict the youngest item of the lowest-priority non-empty
            // band strictly below the arrival
            for band in (priority.index() + 1..state.bands.len()).rev() {
                if let Some((victim, victim_priority)) = state.bands[band].pop_back() {
                    state.bands[priority.index()].push_back((item, priority));
                    drop(state);
                    self.not_empty.notify_one();
                    return Admission::Displaced {
                        victim,
                        victim_priority,
                    };
                }
            }
            return Admission::Full(item, depth);
        }
        state.bands[priority.index()].push_back((item, priority));
        drop(state);
        self.not_empty.notify_one();
        Admission::Enqueued
    }

    /// Blocking admission at [`Priority::Batch`]: waits for space,
    /// returning `Err(item)` only if the queue closes while waiting (or
    /// was already closed).
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.depth() < self.capacity {
                state.bands[Priority::Batch.index()].push_back((item, Priority::Batch));
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue poisoned");
        }
    }

    /// Blocking consume: the most urgent queued item, or `None` once
    /// the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some((item, _)) = (0..state.bands.len()).find_map(|b| state.bands[b].pop_front())
            {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Non-blocking consume: the most urgent queued item, or `None`
    /// when nothing is queued right now (whether or not the queue is
    /// closed).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        let item = (0..state.bands.len()).find_map(|b| state.bands[b].pop_front());
        drop(state);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item.map(|(item, _)| item)
    }

    /// Closes the queue: no further admissions; consumers drain the
    /// remaining items and then observe the end of the stream.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_error_when_full() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // draining reopens admission
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.admit(3, Priority::Interactive, 4), Admission::Closed(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "a closed drained queue stays ended");
    }

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn pop_takes_most_urgent_band_first() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.admit(30, Priority::Background, 8), Admission::Enqueued);
        assert_eq!(q.admit(20, Priority::Batch, 8), Admission::Enqueued);
        assert_eq!(q.admit(10, Priority::Interactive, 8), Admission::Enqueued);
        assert_eq!(q.admit(11, Priority::Interactive, 8), Admission::Enqueued);
        assert_eq!(q.pop(), Some(10), "interactive first, FIFO within band");
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(30));
    }

    #[test]
    fn full_queue_displaces_strictly_lower_priority_work() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.admit(1, Priority::Background, 2), Admission::Enqueued);
        assert_eq!(q.admit(2, Priority::Batch, 2), Admission::Enqueued);
        // interactive arrival evicts the background item, not the batch one
        assert_eq!(
            q.admit(3, Priority::Interactive, 2),
            Admission::Displaced {
                victim: 1,
                victim_priority: Priority::Background,
            }
        );
        // a batch arrival finds only batch work queued — nothing
        // strictly below it → plain backpressure
        assert_eq!(
            q.admit(4, Priority::Batch, 2),
            Admission::Full(4, 2),
            "equal-priority work is never displaced"
        );
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn watermark_sheds_background_arrivals_early() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.admit(1, Priority::Background, 2), Admission::Enqueued);
        assert_eq!(q.admit(2, Priority::Background, 2), Admission::Enqueued);
        // at the watermark: background refused, urgent work still admitted
        assert_eq!(q.admit(3, Priority::Background, 2), Admission::Shed(3, 2));
        assert_eq!(q.admit(4, Priority::Batch, 2), Admission::Enqueued);
        assert_eq!(q.admit(5, Priority::Interactive, 2), Admission::Enqueued);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1).is_ok())
        };
        // the producer is blocked on a full queue until we drain one
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_push_fails_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }
}
