//! A bounded MPMC queue with admission control and drain-on-close
//! semantics — the service's backpressure primitive.
//!
//! Producers see a hard admission boundary: [`BoundedQueue::try_push`]
//! fails immediately when the queue holds `capacity` items, so a
//! saturated service rejects new work instead of buffering without
//! bound (callers that prefer to wait use
//! [`push_blocking`](BoundedQueue::push_blocking)). Consumers block on
//! [`pop`](BoundedQueue::pop) until an item arrives; after
//! [`close`](BoundedQueue::close) the queue admits nothing new but
//! *drains*: `pop` keeps returning queued items until the queue is
//! empty, then returns `None` — exactly the graceful-shutdown contract
//! the service's workers rely on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue already holds `capacity` items; the value is returned.
    Full(T),
    /// The queue was closed; the value is returned.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue (see the [module docs](self)).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` undrained items
    /// (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy snapshot, for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues `item` or refuses it when the
    /// queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for space, returning `Err(item)` only
    /// if the queue closes while waiting (or was already closed).
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue poisoned");
        }
    }

    /// Blocking consume: the next item, or `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: no further admissions; consumers drain the
    /// remaining items and then observe the end of the stream.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_error_when_full() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // draining reopens admission
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "a closed drained queue stays ended");
    }

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1).is_ok())
        };
        // the producer is blocked on a full queue until we drain one
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_push_fails_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }
}
