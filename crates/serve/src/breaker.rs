//! A deterministic circuit breaker for the fleet path.
//!
//! Before this existed, a sick fleet was rediscovered on every request:
//! each one paid the spawn attempts and backoff sleeps before falling
//! back to in-process evaluation. The breaker makes degradation a
//! *state*, entered once and exited deliberately:
//!
//! ```text
//!            failures >= threshold
//!   Closed ─────────────────────────▶ Open
//!     ▲                                │ cooldown elapses
//!     │ probe succeeds                 ▼
//!     └────────────────────────── HalfOpen
//!              (probe fails → back to Open, fresh cooldown)
//! ```
//!
//! Time comes from an injected [`Clock`], so cooldown transitions are
//! fully deterministic under a [`ManualClock`](sparseloop_obs::ManualClock)
//! — the scripted-sequence tests assert exact state trajectories, not
//! sleeps.

use sparseloop_obs::{Clock, MonotonicClock};
use std::sync::Arc;

/// Breaker position. `code` is the value of the
/// `sparseloop_fleet_breaker_state` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: fleet dispatch allowed, failures counted.
    Closed,
    /// Tripped: fleet dispatch short-circuits to the degraded path
    /// until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe request is allowed through; its
    /// outcome decides between `Closed` and a fresh `Open`.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding: 0 closed, 1 open, 2 half-open.
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive fleet failures that trip `Closed` → `Open`.
    pub failure_threshold: u32,
    /// How long `Open` short-circuits before allowing a probe, nanos.
    pub cooldown_nanos: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_nanos: 1_000_000_000,
        }
    }
}

/// The breaker (see the [module docs](self)). Not thread-safe by
/// itself — it lives inside a single-threaded `ShardHost`.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: Arc<dyn Clock>,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_nanos: u64,
}

impl CircuitBreaker {
    /// A closed breaker on a monotonic clock.
    pub fn new(config: BreakerConfig) -> Self {
        Self::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// A closed breaker on an explicit clock (tests inject a manual
    /// one; observed hosts share their hub's clock).
    pub fn with_clock(config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            config,
            clock,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_nanos: 0,
        }
    }

    /// Replaces the time source (keeps current state).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Should the caller attempt fleet work right now? `Closed` and
    /// `HalfOpen` say yes; `Open` says yes exactly once per elapsed
    /// cooldown — transitioning to `HalfOpen`, which makes the attempt
    /// a probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let now = self.clock.now_nanos();
                if now.saturating_sub(self.opened_at_nanos) >= self.config.cooldown_nanos {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A fleet request was served end to end. Closes a half-open
    /// breaker and clears the failure streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// A fleet failure (spawn refusal or exhausted-retries worker
    /// loss). Returns `true` when this failure *trips* the breaker into
    /// `Open` (threshold reached, or a probe failed).
    pub fn record_failure(&mut self) -> bool {
        match self.state {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                self.open_now();
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.open_now();
                    true
                } else {
                    false
                }
            }
        }
    }

    fn open_now(&mut self) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        self.opened_at_nanos = self.clock.now_nanos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_obs::ManualClock;

    fn manual_breaker(threshold: u32, cooldown: u64) -> (CircuitBreaker, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let breaker = CircuitBreaker::with_clock(
            BreakerConfig {
                failure_threshold: threshold,
                cooldown_nanos: cooldown,
            },
            clock.clone(),
        );
        (breaker, clock)
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let (mut b, _clock) = manual_breaker(3, 100);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success(); // streak broken
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_blocks_until_cooldown_then_probes() {
        let (mut b, clock) = manual_breaker(1, 100);
        assert!(b.record_failure());
        assert!(!b.allow(), "open: short-circuit");
        clock.advance(99);
        assert!(!b.allow(), "cooldown not elapsed");
        clock.advance(1);
        assert!(b.allow(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let (mut b, clock) = manual_breaker(1, 100);
        b.record_failure();
        clock.advance(100);
        assert!(b.allow());
        assert!(b.record_failure(), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        clock.advance(99);
        assert!(!b.allow(), "cooldown restarted at probe failure");
        clock.advance(1);
        assert!(b.allow());
    }

    #[test]
    fn gauge_codes_are_stable() {
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::Open.code(), 1);
        assert_eq!(BreakerState::HalfOpen.code(), 2);
        assert_eq!(BreakerState::HalfOpen.as_str(), "half_open");
    }
}
