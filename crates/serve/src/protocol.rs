//! The parent↔worker frame protocol: length-prefixed, checksummed,
//! dependency-free.
//!
//! A shard worker process and its supervising parent speak over plain
//! stdin/stdout pipes. Every message is one *frame*:
//!
//! ```text
//! frame    := magic(u32 LE) length(u32 LE) checksum(u64 LE) payload
//! magic    := 0x53_4C_46_31            ("SLF1")
//! length   := byte length of payload (sanity-bounded)
//! checksum := FNV-1a 64 over payload
//! payload  := tag(u8) body             (hand-rolled wire codecs)
//! ```
//!
//! The checksum is not cryptographic — it exists so a corrupted frame
//! (a worker dying mid-write, fault injection flipping a byte) is
//! *detected* and surfaces as [`ProtocolError::BadChecksum`] instead of
//! decoding into garbage results. Clean end-of-stream at a frame
//! boundary is [`ProtocolError::Eof`], distinct from a mid-frame
//! truncation — the supervisor treats both as worker death, but the
//! distinction matters for diagnostics.
//!
//! Payload bodies reuse the mapping crate's [`WireWriter`] /
//! [`WireReader`] codecs, so shard winners cross the process boundary
//! with bit-identical objective values and mappings.

use sparseloop_mapping::wire::{
    decode_key, decode_mapping, decode_stats, encode_key, encode_mapping, encode_stats,
};
use sparseloop_mapping::{CandidateKey, Mapping, SearchStats, WireError, WireReader, WireWriter};
use std::fmt;
use std::io::{Read, Write};

/// Protocol revision.
///
/// Version history:
/// - v1: Hello/Task/Heartbeat/TaskDone/TaskFailed/Shutdown.
/// - v2: [`Frame::Task`] gains a trailing `want_stats` flag and workers
///   may reply with a [`Frame::Stats`] phase-timing frame before
///   `TaskDone`. Both directions stay compatible with v1 peers: a v1
///   worker ignores the trailing Task byte (payload decoding tolerates
///   trailing bytes) and never sees `want_stats` honored; a v1 parent
///   never sets `want_stats`, so a v2 worker never sends the `Stats`
///   frame it could not decode.
/// - v2 (health frames): [`Frame::Ping`] / [`Frame::Pong`] let a pool
///   supervisor probe idle workers between tasks. New tags, not new
///   fields, so the version number is unchanged; only pool-managed
///   parents send `Ping`, and a worker that answered `Hello` with v2+
///   is guaranteed to answer `Pong`.
/// - v3: [`Frame::Task`] and [`Frame::Stats`] gain a trailing trace
///   context (`trace_request`, `trace_parent`) so worker-side phase
///   timings anchor under the originating service request's dispatch
///   span. Same trailing-bytes trick as the v1→v2 bump: a v2 decoder
///   stops after `want_stats` (Task) or `evaluated` (Stats) and ignores
///   the extra 16 bytes; a v3 decoder reads zeros (= untraced) from a
///   v2 peer's shorter payload.
pub const PROTOCOL_VERSION: u32 = 3;

/// Frame magic: "SLF1" little-endian.
pub const FRAME_MAGIC: u32 = 0x3146_4C53;

/// Largest accepted payload; a frame claiming more is corrupt.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// One experiment's shard-local result inside a [`Frame::TaskDone`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExpResult {
    /// Not a search experiment (fixed-mapping plans are evaluated by the
    /// parent) — nothing to report from a shard.
    Skipped,
    /// The shard's sub-stream held no valid candidate; the fruitless
    /// walk's counters still merge into the batch totals.
    NoWinner {
        /// Counters of the failed shard walk.
        stats: SearchStats,
    },
    /// The shard's local winner: raw objective bits, globally comparable
    /// candidate key, and the winning mapping.
    Winner {
        /// Objective value (travels as raw IEEE-754 bits).
        value: f64,
        /// Globally comparable stream position.
        key: CandidateKey,
        /// Shard-local counters.
        stats: SearchStats,
        /// The winning mapping.
        mapping: Mapping,
    },
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → parent, once at startup.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Parent → worker: run one shard of one request.
    Task {
        /// Request id; echoed in every worker response.
        id: u64,
        /// The shard index this worker owns.
        shard: u32,
        /// Total shard count of the request.
        shards: u32,
        /// Heartbeat cadence the worker must hold while computing
        /// (milliseconds; 0 disables heartbeats).
        heartbeat_ms: u32,
        /// The scenario as spec text (compiled worker-side).
        spec: String,
        /// Ask the worker for a [`Frame::Stats`] phase-timing frame
        /// before its `TaskDone`. Encoded as a trailing byte so v1
        /// workers (which ignore trailing payload bytes) still decode
        /// the task; absent on the wire means `false`.
        want_stats: bool,
        /// Originating service request id (v3 trailing field; 0 =
        /// untraced / pre-v3 peer). Echoed into the worker's
        /// [`Frame::Stats`] so cross-process spans join one request
        /// tree.
        trace_request: u64,
        /// Span id of the dispatch span this task runs under (v3
        /// trailing field; 0 = root). Worker phase spans parent here.
        trace_parent: u64,
    },
    /// Worker → parent: liveness signal while a task computes.
    Heartbeat {
        /// The task being computed.
        id: u64,
        /// Monotonic per-task sequence number.
        seq: u64,
    },
    /// Worker → parent: the task's per-experiment shard results.
    TaskDone {
        /// The completed task.
        id: u64,
        /// One entry per experiment, index-aligned with the compiled
        /// scenario's experiment list.
        results: Vec<ExpResult>,
    },
    /// Worker → parent: the task failed *deterministically* (spec
    /// compile error, evaluation panic) — re-running it would fail the
    /// same way, so the supervisor must not retry.
    TaskFailed {
        /// The failed task.
        id: u64,
        /// Whether a retry is pointless (always `true` from this
        /// worker; the field exists so the protocol can express
        /// transient failures).
        deterministic: bool,
        /// Human-readable cause.
        message: String,
    },
    /// Worker → parent: phase timings for a task, sent immediately
    /// before the corresponding [`Frame::TaskDone`] — and only when the
    /// task asked for it via `want_stats` (v2+). Durations are in the
    /// worker's own clock domain, so only their magnitudes are
    /// meaningful to the parent.
    Stats {
        /// The task these timings belong to.
        id: u64,
        /// The shard index this worker computed.
        shard: u32,
        /// Nanoseconds compiling the spec into an evaluation plan.
        compile_nanos: u64,
        /// Nanoseconds walking the sharded mapspace.
        search_nanos: u64,
        /// Candidates generated across the task's experiments.
        generated: u64,
        /// Candidates fully evaluated across the task's experiments.
        evaluated: u64,
        /// Originating service request id, echoed from the task's
        /// trailing trace context (v3; 0 = untraced).
        trace_request: u64,
        /// Dispatch span id the phase spans parent under, echoed from
        /// the task (v3; 0 = root).
        trace_parent: u64,
    },
    /// Parent → worker: exit cleanly.
    Shutdown,
    /// Parent → worker: health probe for an idle pooled worker. A live
    /// worker echoes the sequence number back in a [`Frame::Pong`].
    Ping {
        /// Probe sequence number, echoed verbatim.
        seq: u64,
    },
    /// Worker → parent: answer to a [`Frame::Ping`].
    Pong {
        /// The probed sequence number.
        seq: u64,
    },
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum ProtocolError {
    /// Clean end-of-stream at a frame boundary (worker exited).
    Eof,
    /// The underlying pipe failed.
    Io(std::io::Error),
    /// The frame header's magic was wrong (stream out of sync).
    BadMagic(u32),
    /// The payload's checksum did not match (corruption in flight).
    BadChecksum {
        /// Checksum the header claimed.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// The header claimed an absurd payload length.
    TooLarge(u32),
    /// The payload's frame tag is unknown.
    UnknownTag(u8),
    /// The payload body failed to decode.
    Wire(WireError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Eof => write!(f, "end of stream"),
            ProtocolError::Io(e) => write!(f, "pipe error: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtocolError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#x}, payload {actual:#x}"
                )
            }
            ProtocolError::TooLarge(n) => write!(f, "frame length {n} exceeds limit"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            ProtocolError::Wire(e) => write!(f, "frame body: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// FNV-1a 64 over `bytes` — the frame checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn encode_exp_result(w: &mut WireWriter, r: &ExpResult) {
    match r {
        ExpResult::Skipped => w.put_u8(0),
        ExpResult::NoWinner { stats } => {
            w.put_u8(1);
            encode_stats(w, stats);
        }
        ExpResult::Winner {
            value,
            key,
            stats,
            mapping,
        } => {
            w.put_u8(2);
            w.put_f64_bits(*value);
            encode_key(w, key);
            encode_stats(w, stats);
            encode_mapping(w, mapping);
        }
    }
}

fn decode_exp_result(r: &mut WireReader<'_>) -> Result<ExpResult, WireError> {
    match r.get_u8("exp.tag")? {
        0 => Ok(ExpResult::Skipped),
        1 => Ok(ExpResult::NoWinner {
            stats: decode_stats(r)?,
        }),
        2 => Ok(ExpResult::Winner {
            value: r.get_f64_bits("exp.value")?,
            key: decode_key(r)?,
            stats: decode_stats(r)?,
            mapping: decode_mapping(r)?,
        }),
        tag => Err(WireError::BadTag {
            what: "exp.tag",
            tag,
        }),
    }
}

/// Encodes a frame's payload (tag + body), without the header.
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = WireWriter::new();
    match frame {
        Frame::Hello { version } => {
            w.put_u8(1);
            w.put_u32(*version);
        }
        Frame::Task {
            id,
            shard,
            shards,
            heartbeat_ms,
            spec,
            want_stats,
            trace_request,
            trace_parent,
        } => {
            w.put_u8(2);
            w.put_u64(*id);
            w.put_u32(*shard);
            w.put_u32(*shards);
            w.put_u32(*heartbeat_ms);
            w.put_str(spec);
            // v2 trailing field: v1 decoders stop at the spec and ignore
            // this byte, so the frame stays backward compatible.
            w.put_bool(*want_stats);
            // v3 trailing trace context: v2 decoders stop at want_stats.
            w.put_u64(*trace_request);
            w.put_u64(*trace_parent);
        }
        Frame::Heartbeat { id, seq } => {
            w.put_u8(3);
            w.put_u64(*id);
            w.put_u64(*seq);
        }
        Frame::TaskDone { id, results } => {
            w.put_u8(4);
            w.put_u64(*id);
            w.put_usize(results.len());
            for r in results {
                encode_exp_result(&mut w, r);
            }
        }
        Frame::TaskFailed {
            id,
            deterministic,
            message,
        } => {
            w.put_u8(5);
            w.put_u64(*id);
            w.put_bool(*deterministic);
            w.put_str(message);
        }
        Frame::Stats {
            id,
            shard,
            compile_nanos,
            search_nanos,
            generated,
            evaluated,
            trace_request,
            trace_parent,
        } => {
            w.put_u8(7);
            w.put_u64(*id);
            w.put_u32(*shard);
            w.put_u64(*compile_nanos);
            w.put_u64(*search_nanos);
            w.put_u64(*generated);
            w.put_u64(*evaluated);
            // v3 trailing trace context: v2 decoders stop at evaluated.
            w.put_u64(*trace_request);
            w.put_u64(*trace_parent);
        }
        Frame::Shutdown => w.put_u8(6),
        Frame::Ping { seq } => {
            w.put_u8(8);
            w.put_u64(*seq);
        }
        Frame::Pong { seq } => {
            w.put_u8(9);
            w.put_u64(*seq);
        }
    }
    w.into_bytes()
}

/// Decodes a frame payload (tag + body) produced by [`encode_payload`].
pub fn decode_payload(bytes: &[u8]) -> Result<Frame, ProtocolError> {
    let mut r = WireReader::new(bytes);
    let frame = match r.get_u8("frame.tag")? {
        1 => Frame::Hello {
            version: r.get_u32("hello.version")?,
        },
        2 => Frame::Task {
            id: r.get_u64("task.id")?,
            shard: r.get_u32("task.shard")?,
            shards: r.get_u32("task.shards")?,
            heartbeat_ms: r.get_u32("task.heartbeat_ms")?,
            spec: r.get_str("task.spec")?,
            // A v1 peer's Task ends at the spec; treat the missing
            // trailing flag as `false`.
            want_stats: if r.is_done() {
                false
            } else {
                r.get_bool("task.want_stats")?
            },
            // A v2 peer's Task ends at want_stats; missing trace
            // context means "untraced".
            trace_request: if r.is_done() {
                0
            } else {
                r.get_u64("task.trace_request")?
            },
            trace_parent: if r.is_done() {
                0
            } else {
                r.get_u64("task.trace_parent")?
            },
        },
        3 => Frame::Heartbeat {
            id: r.get_u64("hb.id")?,
            seq: r.get_u64("hb.seq")?,
        },
        4 => {
            let id = r.get_u64("done.id")?;
            let n = r.get_len("done.count")?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(decode_exp_result(&mut r)?);
            }
            Frame::TaskDone { id, results }
        }
        5 => Frame::TaskFailed {
            id: r.get_u64("failed.id")?,
            deterministic: r.get_bool("failed.deterministic")?,
            message: r.get_str("failed.message")?,
        },
        6 => Frame::Shutdown,
        7 => Frame::Stats {
            id: r.get_u64("stats.id")?,
            shard: r.get_u32("stats.shard")?,
            compile_nanos: r.get_u64("stats.compile_nanos")?,
            search_nanos: r.get_u64("stats.search_nanos")?,
            generated: r.get_u64("stats.generated")?,
            evaluated: r.get_u64("stats.evaluated")?,
            // v2 peers end the frame at `evaluated`.
            trace_request: if r.is_done() {
                0
            } else {
                r.get_u64("stats.trace_request")?
            },
            trace_parent: if r.is_done() {
                0
            } else {
                r.get_u64("stats.trace_parent")?
            },
        },
        8 => Frame::Ping {
            seq: r.get_u64("ping.seq")?,
        },
        9 => Frame::Pong {
            seq: r.get_u64("pong.seq")?,
        },
        tag => return Err(ProtocolError::UnknownTag(tag)),
    };
    Ok(frame)
}

/// Writes one frame (header + payload), flushing the stream.
pub fn write_frame(w: &mut dyn Write, frame: &Frame) -> std::io::Result<()> {
    write_frame_raw(w, frame, false)
}

/// [`write_frame`] with optional *payload corruption*: when `corrupt`
/// is set, one payload byte is flipped **after** the checksum is
/// computed — the fault-injection hook producing a frame the receiver
/// must reject with [`ProtocolError::BadChecksum`].
pub fn write_frame_raw(w: &mut dyn Write, frame: &Frame, corrupt: bool) -> std::io::Result<()> {
    let mut payload = encode_payload(frame);
    let sum = checksum(&payload);
    if corrupt {
        let mid = payload.len() / 2;
        payload[mid] ^= 0xA5;
    }
    w.write_all(&FRAME_MAGIC.to_le_bytes())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&sum.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` on clean EOF *before
/// the first byte*, an error on EOF mid-read.
fn read_exact_or_eof(r: &mut dyn Read, buf: &mut [u8]) -> Result<bool, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtocolError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame; [`ProtocolError::Eof`] on clean end-of-stream at a
/// frame boundary.
pub fn read_frame(r: &mut dyn Read) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; 16];
    if !read_exact_or_eof(r, &mut header)? {
        return Err(ProtocolError::Eof);
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::TooLarge(len));
    }
    let expected = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut payload)? && len > 0 {
        return Err(ProtocolError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream ended before payload",
        )));
    }
    let actual = checksum(&payload);
    if actual != expected {
        return Err(ProtocolError::BadChecksum { expected, actual });
    }
    decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::Task {
                id: 42,
                shard: 1,
                shards: 3,
                heartbeat_ms: 20,
                spec: "scenario:\n  name: demo\n".into(),
                want_stats: true,
                trace_request: 900,
                trace_parent: 31,
            },
            Frame::Heartbeat { id: 42, seq: 7 },
            Frame::Stats {
                id: 42,
                shard: 1,
                compile_nanos: 1_234,
                search_nanos: 56_789,
                generated: 100,
                evaluated: 73,
                trace_request: 900,
                trace_parent: 31,
            },
            Frame::TaskDone {
                id: 42,
                results: vec![
                    ExpResult::Skipped,
                    ExpResult::NoWinner {
                        stats: SearchStats {
                            generated: 5,
                            pruned: 2,
                            evaluated: 0,
                            invalid: 3,
                        },
                    },
                ],
            },
            Frame::TaskFailed {
                id: 42,
                deterministic: true,
                message: "spec:2:3: unknown key".into(),
            },
            Frame::Shutdown,
            Frame::Ping { seq: 11 },
            Frame::Pong { seq: 11 },
        ]
    }

    #[test]
    fn frames_roundtrip_through_a_pipe() {
        let mut buf = Vec::new();
        for f in sample_frames() {
            write_frame(&mut buf, &f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in sample_frames() {
            let got = read_frame(&mut cursor).unwrap();
            assert_eq!(got, f);
        }
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Eof)));
    }

    #[test]
    fn v1_task_without_trailing_flag_still_decodes() {
        // Hand-encode a Task exactly as a v1 parent would: no trailing
        // want_stats byte after the spec string.
        let mut w = WireWriter::new();
        w.put_u8(2);
        w.put_u64(9);
        w.put_u32(0);
        w.put_u32(2);
        w.put_u32(15);
        w.put_str("scenario:\n  name: old\n");
        let frame = decode_payload(&w.into_bytes()).unwrap();
        assert_eq!(
            frame,
            Frame::Task {
                id: 9,
                shard: 0,
                shards: 2,
                heartbeat_ms: 15,
                spec: "scenario:\n  name: old\n".into(),
                want_stats: false,
                trace_request: 0,
                trace_parent: 0,
            }
        );
    }

    #[test]
    fn v2_task_round_trips_want_stats() {
        for want_stats in [false, true] {
            let frame = Frame::Task {
                id: 1,
                shard: 0,
                shards: 1,
                heartbeat_ms: 0,
                spec: "s".into(),
                want_stats,
                trace_request: 7,
                trace_parent: 3,
            };
            let got = decode_payload(&encode_payload(&frame)).unwrap();
            assert_eq!(got, frame);
        }
    }

    #[test]
    fn v2_task_without_trace_context_decodes_as_untraced() {
        // Hand-encode a Task exactly as a v2 parent would: want_stats
        // present, no trailing trace context.
        let mut w = WireWriter::new();
        w.put_u8(2);
        w.put_u64(9);
        w.put_u32(1);
        w.put_u32(4);
        w.put_u32(25);
        w.put_str("scenario:\n  name: v2\n");
        w.put_bool(true);
        let frame = decode_payload(&w.into_bytes()).unwrap();
        assert_eq!(
            frame,
            Frame::Task {
                id: 9,
                shard: 1,
                shards: 4,
                heartbeat_ms: 25,
                spec: "scenario:\n  name: v2\n".into(),
                want_stats: true,
                trace_request: 0,
                trace_parent: 0,
            }
        );
    }

    #[test]
    fn v2_stats_without_trace_context_decodes_as_untraced() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u64(5);
        w.put_u32(2);
        w.put_u64(10);
        w.put_u64(20);
        w.put_u64(30);
        w.put_u64(40);
        let frame = decode_payload(&w.into_bytes()).unwrap();
        assert_eq!(
            frame,
            Frame::Stats {
                id: 5,
                shard: 2,
                compile_nanos: 10,
                search_nanos: 20,
                generated: 30,
                evaluated: 40,
                trace_request: 0,
                trace_parent: 0,
            }
        );
    }

    #[test]
    fn v2_decoders_tolerate_v3_trailing_trace_context() {
        // Replay the *old* (v2) decoding logic over v3-encoded bytes:
        // it stops before the trailing trace context and must still
        // recover every v2 field — the same guarantee the v1→v2 bump
        // relied on, extended one version forward.
        let task = Frame::Task {
            id: 77,
            shard: 3,
            shards: 8,
            heartbeat_ms: 40,
            spec: "scenario:\n  name: fwd\n".into(),
            want_stats: true,
            trace_request: 123,
            trace_parent: 456,
        };
        let bytes = encode_payload(&task);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8("frame.tag").unwrap(), 2);
        assert_eq!(r.get_u64("task.id").unwrap(), 77);
        assert_eq!(r.get_u32("task.shard").unwrap(), 3);
        assert_eq!(r.get_u32("task.shards").unwrap(), 8);
        assert_eq!(r.get_u32("task.heartbeat_ms").unwrap(), 40);
        assert_eq!(r.get_str("task.spec").unwrap(), "scenario:\n  name: fwd\n");
        assert!(r.get_bool("task.want_stats").unwrap());
        // A v2 decoder stops here; 16 trailing bytes remain unread.
        assert!(!r.is_done(), "v3 trace context rides behind want_stats");

        let stats = Frame::Stats {
            id: 77,
            shard: 3,
            compile_nanos: 1,
            search_nanos: 2,
            generated: 3,
            evaluated: 4,
            trace_request: 123,
            trace_parent: 456,
        };
        let bytes = encode_payload(&stats);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8("frame.tag").unwrap(), 7);
        assert_eq!(r.get_u64("stats.id").unwrap(), 77);
        assert_eq!(r.get_u32("stats.shard").unwrap(), 3);
        assert_eq!(r.get_u64("stats.compile_nanos").unwrap(), 1);
        assert_eq!(r.get_u64("stats.search_nanos").unwrap(), 2);
        assert_eq!(r.get_u64("stats.generated").unwrap(), 3);
        assert_eq!(r.get_u64("stats.evaluated").unwrap(), 4);
        assert!(!r.is_done(), "v3 trace context rides behind evaluated");
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut buf = Vec::new();
        write_frame_raw(
            &mut buf,
            &Frame::Heartbeat { id: 1, seq: 2 },
            /* corrupt */ true,
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor) {
            Err(ProtocolError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected mid-frame EOF error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        buf[0] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::BadMagic(_))
        ));
    }

    #[test]
    fn oversized_length_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::TooLarge(_))
        ));
    }

    #[test]
    fn winner_results_cross_bit_identically() {
        use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
        use sparseloop_tensor::einsum::Einsum;
        let e = Einsum::matmul(4, 4, 4);
        let a = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM"))
            .level(StorageLevel::new("Buf"))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let mapping = sparseloop_mapping::Mapspace::all_temporal(&e, &a)
            .enumerate(1)
            .remove(0);
        let frame = Frame::TaskDone {
            id: 9,
            results: vec![ExpResult::Winner {
                value: f64::from_bits(0x3FF0_0000_0000_0001),
                key: CandidateKey { block: 2, rank: 17 },
                stats: SearchStats {
                    generated: 10,
                    pruned: 1,
                    evaluated: 8,
                    invalid: 1,
                },
                mapping,
            }],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let got = read_frame(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(got, frame);
        if let (Frame::TaskDone { results: a, .. }, Frame::TaskDone { results: b, .. }) =
            (&got, &frame)
        {
            if let (ExpResult::Winner { value: va, .. }, ExpResult::Winner { value: vb, .. }) =
                (&a[0], &b[0])
            {
                assert_eq!(va.to_bits(), vb.to_bits());
            } else {
                panic!("expected winners");
            }
        }
    }
}
