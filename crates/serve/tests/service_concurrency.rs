//! Property-based concurrency audit of the evaluation service: random
//! interleavings of valid, poisoned (panicking), and canceled requests
//! against 2–4 workers must always leave the service consistent —
//! every ticket resolves, the stats buckets partition the admitted
//! requests exactly, and a panic never poisons later requests (the
//! session generation is recycled under the survivors' feet).

use proptest::prelude::*;
use sparseloop_arch::{ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel};
use sparseloop_core::{EvalJob, JobPlan, Objective, SafSpec, Workload};
use sparseloop_density::DensityModelSpec;
use sparseloop_designs::{Scenario, ScenarioRegistry};
use sparseloop_mapping::{Mapper, Mapspace};
use sparseloop_serve::{EvalService, ServeConfig, ServeError, Ticket};
use sparseloop_tensor::einsum::Einsum;

fn small_job(density: f64) -> EvalJob {
    let e = Einsum::matmul(8, 8, 8);
    let workload = Workload::new(
        e.clone(),
        vec![
            DensityModelSpec::Uniform { density },
            DensityModelSpec::Dense,
            DensityModelSpec::Dense,
        ],
    );
    let arch = ArchitectureBuilder::new("t")
        .level(StorageLevel::new("DRAM").with_class(ComponentClass::Dram))
        .level(StorageLevel::new("Buf").with_capacity(1024))
        .compute(ComputeSpec::new("MAC", 2))
        .build()
        .unwrap();
    let space = Mapspace::all_temporal(&e, &arch);
    EvalJob {
        workload,
        arch,
        safs: SafSpec::dense(),
        plan: JobPlan::Search {
            space,
            mapper: Mapper::Exhaustive { limit: 100 },
            objective: Objective::Edp,
        },
    }
}

fn poisoned_registry() -> ScenarioRegistry {
    ScenarioRegistry::new(vec![Scenario::new(
        "poison",
        "panics while building its experiments",
        || panic!("poisoned scenario"),
    )])
}

proptest! {
    /// `ops` encodes the request mix: 0 = valid job, 1 = poisoned
    /// scenario (panics in the worker), 2 = valid job whose ticket is
    /// canceled immediately after admission.
    #[test]
    fn random_request_mixes_leave_the_service_consistent(
        workers in 2usize..5,
        ops in proptest::collection::vec(0u32..3, 2..8),
    ) {
        let service = EvalService::start_with_registry(
            ServeConfig::default()
                .with_workers(workers)
                .with_queue_capacity(64),
            poisoned_registry(),
        );
        let mut tickets: Vec<(u32, Ticket)> = Vec::new();
        let mut poisons = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let density = 0.1 + (i as f64) * 0.09;
            let ticket = match op {
                1 => {
                    poisons += 1;
                    service.submit_scenario("poison").unwrap()
                }
                _ => service.submit_job(small_job(density)).unwrap(),
            };
            if *op == 2 {
                ticket.cancel();
            }
            tickets.push((*op, ticket));
        }

        // every ticket resolves, each to an outcome its kind allows
        for (op, ticket) in tickets {
            let resolved = ticket.wait();
            match op {
                0 => {
                    let outcome = resolved.expect("valid request must succeed").into_job();
                    prop_assert!(outcome.is_ok(), "valid job failed: {:?}", outcome.err());
                }
                1 => match resolved {
                    Err(ServeError::Panicked(msg)) => {
                        prop_assert!(msg.contains("poisoned"), "{msg}")
                    }
                    other => return Err(TestCaseError::fail(format!(
                        "poisoned request must report the panic, got {other:?}"
                    ))),
                },
                _ => match resolved {
                    // lost the race: worker finished before the cancel
                    Ok(reply) => prop_assert!(reply.into_job().is_ok()),
                    Err(ServeError::Canceled) => {}
                    other => return Err(TestCaseError::fail(format!(
                        "canceled request may complete or cancel, got {other:?}"
                    ))),
                },
            }
        }

        // post-panic requests run on a fresh session generation
        if poisons > 0 {
            let after = service.submit_job(small_job(0.42)).unwrap();
            prop_assert!(after.wait().unwrap().into_job().is_ok());
        }

        let stats = service.shutdown();
        prop_assert_eq!(stats.panicked, poisons);
        prop_assert_eq!(
            stats.submitted,
            stats.completed + stats.panicked + stats.canceled,
            "every admitted request lands in exactly one bucket: {:?}", stats
        );
        prop_assert_eq!(stats.rejected, 0);
        if poisons > 0 {
            prop_assert!(stats.recycles >= 1, "a panic must retire the session");
        }
    }
}
