//! Property-based audit of the overload-protection layer: random
//! admission scripts against the priority queue must never invert
//! priorities (drain order, displacement direction, watermark scope),
//! and scripted failure/success/clock sequences must drive the circuit
//! breaker through exactly the same transitions every time.

use proptest::prelude::*;
use sparseloop_obs::ManualClock;
use sparseloop_serve::{
    Admission, BoundedQueue, BreakerConfig, BreakerState, CircuitBreaker, Priority,
};
use std::collections::VecDeque;
use std::sync::Arc;

fn priority_of(code: u32) -> Priority {
    match code % 3 {
        0 => Priority::Interactive,
        1 => Priority::Batch,
        _ => Priority::Background,
    }
}

/// A transparent reference model of the queue: three FIFO bands, the
/// exact policy restated independently of the implementation.
#[derive(Default)]
struct Model {
    bands: [VecDeque<u32>; 3],
}

impl Model {
    fn depth(&self) -> usize {
        self.bands.iter().map(VecDeque::len).sum()
    }

    /// Mirrors [`BoundedQueue::admit`]; returns what the real queue
    /// must report.
    fn admit(
        &mut self,
        item: u32,
        priority: Priority,
        capacity: usize,
        watermark: usize,
    ) -> Admission<u32> {
        let depth = self.depth();
        if priority == Priority::Background && depth >= watermark.min(capacity) {
            return Admission::Shed(item, depth);
        }
        if depth >= capacity {
            for band in (priority.index() + 1..3).rev() {
                if let Some(victim) = self.bands[band].pop_back() {
                    self.bands[priority.index()].push_back(item);
                    return Admission::Displaced {
                        victim,
                        victim_priority: priority_of(band as u32),
                    };
                }
            }
            return Admission::Full(item, depth);
        }
        self.bands[priority.index()].push_back(item);
        Admission::Enqueued
    }

    fn pop(&mut self) -> Option<(u32, usize)> {
        self.bands
            .iter_mut()
            .enumerate()
            .find_map(|(band, items)| items.pop_front().map(|item| (item, band)))
    }
}

proptest! {
    /// `ops` drives interleaved admissions and drains: an op below 100
    /// admits at priority `op % 3`; 100+ pops. The real queue must
    /// agree with the reference model on every single outcome, which
    /// pins down all three inversion-freedom properties at once:
    /// higher bands always drain first, displacement only ever evicts
    /// strictly lower priority (youngest first), and the watermark
    /// sheds only background arrivals.
    #[test]
    fn priority_admission_never_inverts(
        capacity in 1usize..6,
        watermark in 0usize..8,
        ops in proptest::collection::vec(0u32..103, 1..40),
    ) {
        let queue = BoundedQueue::new(capacity);
        let mut model = Model::default();
        let mut next_item = 0u32;
        let mut last_popped_band: Option<usize> = None;
        for op in ops {
            if op < 100 {
                let priority = priority_of(op);
                let item = next_item;
                next_item += 1;
                let got = queue.admit(item, priority, watermark);
                let want = model.admit(item, priority, capacity, watermark);
                prop_assert_eq!(&got, &want, "admission diverged from the model");
                if let Admission::Displaced { victim_priority, .. } = got {
                    prop_assert!(
                        victim_priority.index() > priority.index(),
                        "displaced {:?} from a band not strictly below {:?}",
                        victim_priority, priority
                    );
                }
                // any admission resets the drain-order watermark: new
                // higher-priority work may legitimately pop next
                last_popped_band = None;
            } else {
                let got = queue.try_pop();
                let want = model.pop();
                prop_assert_eq!(got, want.map(|(item, _)| item), "drain diverged from the model");
                if let Some((_, band)) = want {
                    if let Some(prev) = last_popped_band {
                        prop_assert!(
                            band >= prev,
                            "drain order inverted: band {} popped after band {}",
                            band, prev
                        );
                    }
                    last_popped_band = Some(band);
                }
            }
            prop_assert_eq!(queue.len(), model.depth());
            for p in [Priority::Interactive, Priority::Batch, Priority::Background] {
                prop_assert_eq!(queue.depth_of(p), model.bands[p.index()].len());
            }
        }
    }

    /// The breaker against an independent restatement of its state
    /// machine, driven by a random failure/success/advance/allow
    /// script on a manual clock. The real breaker and the model must
    /// agree on every trip decision, every dispatch decision, and
    /// every state — and a twin breaker fed the same script must never
    /// diverge, so transitions are a pure function of the script.
    #[test]
    fn breaker_transitions_are_deterministic_under_scripts(
        threshold in 1u32..5,
        cooldown in 1u64..1_000,
        advances in 1u64..3,
        ops in proptest::collection::vec(0u32..4, 1..60),
    ) {
        let config = BreakerConfig {
            failure_threshold: threshold,
            cooldown_nanos: cooldown,
        };
        let clock_a = Arc::new(ManualClock::new());
        let clock_b = Arc::new(ManualClock::new());
        let mut a = CircuitBreaker::with_clock(config, clock_a.clone());
        let mut b = CircuitBreaker::with_clock(config, clock_b.clone());
        let mut model = BreakerModel::Closed { failures: 0 };
        let mut now = 0u64;
        let step = cooldown / advances.max(1) + 1;
        for op in ops {
            match op {
                0 => {
                    let tripped = a.record_failure();
                    prop_assert_eq!(tripped, b.record_failure());
                    let want = model.record_failure(now, threshold);
                    prop_assert_eq!(tripped, want, "trip decision diverged from the model");
                }
                1 => {
                    a.record_success();
                    b.record_success();
                    model = BreakerModel::Closed { failures: 0 };
                }
                2 => {
                    clock_a.advance(step);
                    clock_b.advance(step);
                    now += step;
                }
                _ => {
                    let allow = a.allow();
                    prop_assert_eq!(allow, b.allow());
                    let want = model.allow(now, cooldown);
                    prop_assert_eq!(allow, want, "dispatch decision diverged from the model");
                }
            }
            prop_assert_eq!(a.state(), model.state(), "state diverged from the model");
            prop_assert_eq!(a.state(), b.state(), "twin breakers diverged");
        }
    }
}

/// Independent restatement of the breaker's state machine (the test
/// oracle for `breaker_transitions_are_deterministic_under_scripts`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerModel {
    Closed { failures: u32 },
    Open { opened_at: u64 },
    HalfOpen,
}

impl BreakerModel {
    fn state(self) -> BreakerState {
        match self {
            BreakerModel::Closed { .. } => BreakerState::Closed,
            BreakerModel::Open { .. } => BreakerState::Open,
            BreakerModel::HalfOpen => BreakerState::HalfOpen,
        }
    }

    fn record_failure(&mut self, now: u64, threshold: u32) -> bool {
        match *self {
            BreakerModel::Open { .. } => false,
            BreakerModel::HalfOpen => {
                *self = BreakerModel::Open { opened_at: now };
                true
            }
            BreakerModel::Closed { failures } => {
                if failures + 1 >= threshold {
                    *self = BreakerModel::Open { opened_at: now };
                    true
                } else {
                    *self = BreakerModel::Closed {
                        failures: failures + 1,
                    };
                    false
                }
            }
        }
    }

    fn allow(&mut self, now: u64, cooldown: u64) -> bool {
        match *self {
            BreakerModel::Closed { .. } | BreakerModel::HalfOpen => true,
            BreakerModel::Open { opened_at } => {
                if now.saturating_sub(opened_at) >= cooldown {
                    *self = BreakerModel::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }
}
