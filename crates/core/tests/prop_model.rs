//! Property-based tests on the three-step model's invariants:
//! conservation laws of the dense analysis and breakdown invariants of
//! the sparse analysis.

use proptest::prelude::*;
use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel};
use sparseloop_core::{
    dataflow, sparse, EvalError, EvalScratch, Model, Objective, SafSpec, Workload,
};
use sparseloop_density::DensityModelSpec;
use sparseloop_mapping::{CandidateEvaluator, Mapper, Mapspace, SampleStrategy};
use sparseloop_tensor::einsum::{DimId, Einsum, TensorKind};

fn arch2() -> sparseloop_arch::Architecture {
    ArchitectureBuilder::new("t")
        .level(StorageLevel::new("L0"))
        .level(StorageLevel::new("L1"))
        .compute(ComputeSpec::new("MAC", 1))
        .build()
        .unwrap()
}

proptest! {
    /// Dense-traffic conservation: multicast-corrected fills at a child
    /// equal the parent's reads for input tensors, and innermost reads
    /// never exceed total computes.
    #[test]
    fn dense_conservation(
        m in 1u64..8, n in 1u64..8, k in 1u64..8,
        pick in 0usize..20,
    ) {
        let e = Einsum::matmul(m, n, k);
        let arch = arch2();
        let space = Mapspace::all_temporal(&e, &arch);
        let maps = space.enumerate(20);
        let mapping = &maps[pick % maps.len()];
        let d = dataflow::analyze(&e, mapping);
        prop_assert_eq!(d.computes, (m * n * k) as f64);
        for t in e.inputs() {
            // temporal-only mapping: fills at L1 == reads at L0
            if let (Some(e0), Some(e1)) = (d.get(t, 0), d.get(t, 1)) {
                prop_assert!((e1.fills - e0.reads).abs() < 1e-6,
                    "fills {} == reads {}", e1.fills, e0.reads);
                // innermost reads bounded by computes
                prop_assert!(e1.reads <= d.computes + 1e-6);
                // read transfers x child size == reads
                prop_assert!(
                    (e1.read_transfers * e1.child_tile_size - e1.reads).abs() < 1e-6
                );
            }
        }
        // outputs: updates at the outermost level >= distinct outputs
        for t in e.outputs() {
            if let Some(e0) = d.get(t, 0) {
                let size: f64 = e.tensor_shape(t).iter().product::<u64>() as f64;
                prop_assert!(e0.updates >= size - 1e-6);
                // refetch reads = updates - distinct
                prop_assert!((e0.reads - (e0.updates - size).max(0.0)).abs() < 1e-6);
            }
        }
    }

    /// Sparse breakdowns conserve dense totals and respect monotonicity
    /// in density for skipping designs.
    #[test]
    fn sparse_breakdown_invariants(
        m in 1u64..8, n in 1u64..8, k in 1u64..8,
        da_pct in 0u64..=100,
        pick in 0usize..10,
    ) {
        let e = Einsum::matmul(m, n, k);
        let a = e.tensor_id("A").unwrap();
        let b = e.tensor_id("B").unwrap();
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = arch2();
        let space = Mapspace::all_temporal(&e, &arch);
        let maps = space.enumerate(10);
        let mapping = &maps[pick % maps.len()];
        let d = dataflow::analyze(&e, mapping);
        let safs = SafSpec::dense()
            .with_skip(1, a, vec![a])
            .with_skip(1, b, vec![a])
            .with_skip_compute();
        let s = sparse::analyze(&w, &d, &safs);
        // compute classes partition the dense computes
        let c = s.compute.ops;
        prop_assert!((c.total() - d.computes).abs() < 1e-6);
        prop_assert!(c.actual >= -1e-9 && c.gated >= -1e-9 && c.skipped >= -1e-9);
        // entries where no upstream elimination applies conserve exactly
        for entry in &s.entries {
            if e.tensor(entry.tensor).kind == TensorKind::Input {
                let de = d.get(entry.tensor, entry.level).unwrap();
                prop_assert!(entry.reads.total() <= de.reads + 1e-6);
            }
        }
    }

    /// Compute survival under a self-skip equals the operand density
    /// exactly (element granularity) for every mapping.
    #[test]
    fn self_skip_survival_exact(
        m in 1u64..8, n in 1u64..8, k in 1u64..8,
        da_pct in 0u64..=100,
        pick in 0usize..10,
    ) {
        let e = Einsum::matmul(m, n, k);
        let a = e.tensor_id("A").unwrap();
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = arch2();
        let space = Mapspace::all_temporal(&e, &arch);
        let maps = space.enumerate(10);
        let mapping = &maps[pick % maps.len()];
        let d = dataflow::analyze(&e, mapping);
        let safs = SafSpec::dense().with_skip(1, a, vec![a]).with_skip_compute();
        let s = sparse::analyze(&w, &d, &safs);
        let d_a = w.tensor_density(a);
        prop_assert!(
            (s.compute.ops.actual - d.computes * d_a).abs() < 1e-6,
            "survival {} vs density {}",
            s.compute.ops.actual / d.computes,
            d_a
        );
    }

    /// Gating never changes cycle-consuming op counts; skipping never
    /// increases them.
    #[test]
    fn gate_vs_skip_cycle_semantics(
        m in 2u64..8, n in 2u64..8, k in 2u64..8,
        da_pct in 0u64..=100,
    ) {
        let e = Einsum::matmul(m, n, k);
        let a = e.tensor_id("A").unwrap();
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = arch2();
        let space = Mapspace::all_temporal(&e, &arch);
        let mapping = &space.enumerate(1)[0];
        let d = dataflow::analyze(&e, mapping);
        let gate = sparse::analyze(&w, &d, &SafSpec::dense().with_gate(1, a, vec![a]).with_gate_compute());
        let skip = sparse::analyze(&w, &d, &SafSpec::dense().with_skip(1, a, vec![a]).with_skip_compute());
        let none = sparse::analyze(&w, &d, &SafSpec::dense());
        prop_assert!((gate.compute.ops.cycle_consuming() - none.compute.ops.cycle_consuming()).abs() < 1e-6);
        prop_assert!(skip.compute.ops.cycle_consuming() <= none.compute.ops.cycle_consuming() + 1e-6);
        // energy-relevant actual ops: gate <= none
        prop_assert!(gate.compute.ops.actual <= none.compute.ops.actual + 1e-6);
    }

    /// The cheap capacity precheck agrees with the full pipeline exactly:
    /// a mapping is precheck-rejected if and only if `evaluate` reports
    /// `CapacityExceeded` — across dimensions, densities, capacities,
    /// compressed and uncompressed designs, and both capacity modes.
    #[test]
    fn precheck_matches_capacity_errors(
        m in 1u64..10, n in 1u64..10, k in 1u64..10,
        da_pct in 5u64..=100,
        capacity in 2u64..200,
        compressed in 0u64..2,
        worst_case in 0u64..2,
    ) {
        let e = Einsum::matmul(m, n, k);
        let a = e.tensor_id("A").unwrap();
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1").with_capacity(capacity))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let mut safs = SafSpec::dense();
        if compressed == 1 {
            safs = safs.with_format(1, a, sparseloop_format::TensorFormat::coo(2));
        }
        let mut model = Model::new(w, arch.clone(), safs);
        if worst_case == 1 {
            model = model.with_worst_case_capacity();
        }
        let space = Mapspace::all_temporal(&e, &arch);
        for mapping in space.iter_enumerate(60) {
            let rejected = !model.precheck(&mapping);
            let capacity_error = matches!(
                model.evaluate(&mapping),
                Err(EvalError::CapacityExceeded { .. })
            );
            prop_assert_eq!(
                rejected,
                capacity_error,
                "precheck {} but evaluate capacity-error {} for {:?}",
                rejected, capacity_error, mapping
            );
        }
    }

    /// The incremental worker pipeline (scratch arenas + prefix
    /// caching) scores every candidate bit-identically to the stateless
    /// from-scratch pipeline: same precheck verdicts and same metric for
    /// every candidate of the delta stream, driven with the stream's
    /// reported change depths.
    #[test]
    fn incremental_scoring_matches_from_scratch_per_candidate(
        m in 1u64..12, n in 1u64..12, k in 1u64..12,
        da_pct in 5u64..=100,
        capacity in 4u64..400,
        spatial in 0u64..2,
        compressed in 0u64..2,
    ) {
        let e = Einsum::matmul(m, n, k);
        let a = e.tensor_id("A").unwrap();
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1").with_capacity(capacity))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap();
        let mut safs = SafSpec::dense().with_skip(1, a, vec![a]);
        if compressed == 1 {
            safs = safs.with_format(1, a, sparseloop_format::TensorFormat::coo(2));
        }
        let model = Model::new(w, arch.clone(), safs);
        let mut space = Mapspace::all_temporal(&e, &arch);
        if spatial == 1 {
            space = space.with_spatial_dims(1, vec![DimId(1)]);
        }
        let evaluator = model.evaluator(Objective::Edp);
        let mut worker = evaluator.worker();
        for (depth, mapping) in
            (Mapper::Exhaustive { limit: 300 }).delta_candidates(&space)
        {
            let pre_inc = worker.precheck(&mapping, depth);
            let pre_ref = model.precheck(&mapping);
            prop_assert_eq!(pre_inc, pre_ref, "precheck diverged for {:?}", mapping);
            if !pre_inc {
                continue;
            }
            let metric_inc = worker.evaluate(&mapping, depth);
            let metric_ref = model
                .evaluate(&mapping)
                .ok()
                .map(|ev| ev.metric(Objective::Edp));
            prop_assert_eq!(metric_inc, metric_ref, "metric diverged for {:?}", mapping);
        }
    }

    /// The public scratch-reuse entry points (no prefix assumptions)
    /// match the allocating pipeline bit-for-bit across a stream of
    /// candidates through one reused arena.
    #[test]
    fn scratch_entry_points_match_evaluate(
        m in 1u64..10, n in 1u64..10, k in 1u64..10,
        da_pct in 5u64..=100,
        capacity in 4u64..200,
    ) {
        let e = Einsum::matmul(m, n, k);
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1").with_capacity(capacity))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let model = Model::new(w, arch.clone(), SafSpec::dense());
        let space = Mapspace::all_temporal(&e, &arch);
        let mut scratch = EvalScratch::new();
        for mapping in space.iter_enumerate(80) {
            prop_assert_eq!(
                model.precheck_with(&mapping, &mut scratch),
                model.precheck(&mapping)
            );
            let via_scratch =
                model.evaluate_metric_with(&mapping, Objective::Edp, &mut scratch);
            let via_eval = model
                .evaluate(&mapping)
                .ok()
                .map(|ev| ev.metric(Objective::Edp));
            prop_assert_eq!(via_scratch, via_eval);
        }
    }

    /// Search winners, their full `Evaluation`s, and `SearchStats` are
    /// bit-identical between the incremental pipeline and the
    /// from-scratch reference — sequentially, at 1/2/4 threads, and at
    /// 1/3 shards, for exhaustive and hybrid strategies over random
    /// mapspaces.
    #[test]
    fn incremental_search_parity_across_threads_and_shards(
        m in 1u64..10, n in 1u64..10, k in 1u64..10,
        da_pct in 10u64..=100,
        capacity in 8u64..300,
        hybrid in 0u64..2,
    ) {
        let e = Einsum::matmul(m, n, k);
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1").with_capacity(capacity))
            .compute(ComputeSpec::new("MAC", 2))
            .build()
            .unwrap();
        let model = Model::new(w, arch.clone(), SafSpec::dense());
        let space = Mapspace::all_temporal(&e, &arch).with_spatial_dims(1, vec![DimId(0)]);
        let mapper = if hybrid == 1 {
            Mapper::Hybrid {
                enumerate: 120,
                samples: 60,
                seed: 11,
                sampling: SampleStrategy::Uniform,
            }
        } else {
            Mapper::Exhaustive { limit: 250 }
        };
        // reference: the stateless from-scratch pipeline, sequential
        let (reference, ref_stats) = mapper.search_pruned_counted(
            &space,
            &model.evaluator_from_scratch(Objective::Edp),
        );
        let check = |got: Option<(sparseloop_mapping::Mapping, sparseloop_core::Evaluation)>,
                     stats: sparseloop_mapping::SearchStats,
                     label: &str|
         -> Result<(), TestCaseError> {
            prop_assert_eq!(stats, ref_stats, "stats diverged: {}", label);
            match (&got, &reference) {
                (None, None) => {}
                (Some((gm, ge)), Some(r)) => {
                    prop_assert_eq!(gm, &r.mapping, "winner diverged: {}", label);
                    let re = model.evaluate(&r.mapping).expect("winner re-evaluates");
                    prop_assert_eq!(ge.edp, re.edp, "edp diverged: {}", label);
                    prop_assert_eq!(ge.cycles, re.cycles, "cycles diverged: {}", label);
                    prop_assert_eq!(ge.energy_pj, re.energy_pj, "energy diverged: {}", label);
                    prop_assert_eq!(
                        ge.utilization, re.utilization,
                        "utilization diverged: {}", label
                    );
                }
                _ => prop_assert!(false, "winner presence diverged: {}", label),
            }
            Ok(())
        };
        for threads in [1usize, 2, 4] {
            let (got, stats) = model.search_parallel_counted(
                &space,
                mapper,
                Objective::Edp,
                Some(threads),
            );
            check(got, stats, &format!("threads={threads}"))?;
        }
        for shards in [1usize, 3] {
            let (got, stats) =
                model.search_sharded_counted(&space, mapper, Objective::Edp, shards);
            check(got, stats, &format!("shards={shards}"))?;
        }
    }

    /// Parallel and sequential model search agree bit-for-bit on the
    /// all-temporal matmul mapspace, for every thread count.
    #[test]
    fn parallel_search_parity(
        m in 1u64..8, n in 1u64..8, k in 1u64..8,
        da_pct in 10u64..=100,
        threads in 2usize..5,
    ) {
        let e = Einsum::matmul(m, n, k);
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density: da_pct as f64 / 100.0 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("L0"))
            .level(StorageLevel::new("L1").with_capacity(64))
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let model = Model::new(w, arch.clone(), SafSpec::dense());
        let space = Mapspace::all_temporal(&e, &arch);
        let seq = model.search_with_stats(&space, Mapper::Exhaustive { limit: 500 }, Objective::Edp);
        let par = model.search_parallel_with_stats(
            &space,
            Mapper::Exhaustive { limit: 500 },
            Objective::Edp,
            Some(threads),
        );
        match (seq, par) {
            (None, None) => {}
            (Some((sm, se, ss)), Some((pm, pe, ps))) => {
                prop_assert_eq!(&sm, &pm, "winning mappings must be identical");
                prop_assert_eq!(se.edp, pe.edp, "objective must be bit-identical");
                prop_assert_eq!(ss, ps, "stats must agree");
            }
            (s, p) => {
                prop_assert!(false, "one path found a mapping, the other did not: seq={} par={}", s.is_some(), p.is_some());
            }
        }
    }
}
