//! Allocation-free evaluation scratch arenas.
//!
//! Candidate evaluation is the single hottest path in the system: a
//! mapspace search runs `precheck` and the dense→sparse→uarch pipeline
//! thousands of times against one model, and the seed implementation
//! allocated fresh vectors, hash maps and strings for every candidate.
//! [`EvalScratch`] bundles every buffer those stages need — per-level
//! capacity checks, the dense traffic table, sparse trackers, the uarch
//! report — so a worker thread allocates once and reuses the arena for
//! every candidate it evaluates (and, via the per-thread pool, across
//! consecutive searches and serving requests on the same worker).
//!
//! On top of plain buffer reuse, the precheck and dataflow stages are
//! *prefix-incremental*: the enumeration streams report each candidate's
//! `ChangeDepth` (the outermost loop position that differs from the
//! previous candidate), and everything derived from the unchanged
//! outer-loop prefix — per-level tile bounds, occupancies, format
//! analyses, outer storage-boundary traffic — is reused from the arena
//! instead of recomputed. Results are bit-identical to the from-scratch
//! pipeline by construction (reused values *are* the previous
//! computation's values, and those are provably unchanged), and
//! property-tested in `tests/prop_model.rs`.
//!
//! # Contract for callers
//!
//! A scratch is a cache keyed by "the mapping of the previous call".
//! Callers must not hold references into it across calls, must feed one
//! scratch from one candidate stream at a time, and must pass a `None`
//! change (full recompute) whenever the relation to the previous call's
//! mapping is unknown. The [`Model`](crate::Model) worker machinery
//! (`ModelEvaluator::worker`) handles all of this internally — external
//! callers should use [`Model::precheck_with`](crate::Model::precheck_with)
//! / [`Model::evaluate_metric_with`](crate::Model::evaluate_metric_with),
//! which never assume a prefix.

use crate::dataflow::DenseScratch;
use crate::sparse::SparseScratch;
use crate::uarch::UarchReport;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Cached capacity verdict of one storage level (see
/// [`Model::precheck`](crate::Model::precheck)): whether the level's
/// resident tiles fit. Occupancy sums need not be cached — the verdict
/// is the only thing the precheck consumes, and it transfers unchanged
/// to any candidate whose held tile at that level is unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LevelCheck {
    /// Whether the level's tiles fit.
    pub(crate) fits: bool,
}

/// Reusable state of the capacity precheck: per-dimension bound and
/// tile-shape buffers plus the per-level occupancy/fit cache that makes
/// the precheck prefix-incremental.
#[derive(Debug, Default)]
pub(crate) struct PrecheckScratch {
    /// Per-dimension suffix tile bounds (recompute walk).
    pub(crate) bounds: Vec<u64>,
    /// Tile shape buffer.
    pub(crate) shape: Vec<u64>,
    /// Per-level cached occupancy and fit verdict.
    pub(crate) levels: Vec<LevelCheck>,
    /// How many *leading* levels of `levels` are valid for the mapping
    /// of the previous call (a failed check stops the walk early, so
    /// deeper cached entries may be stale).
    pub(crate) prefix_valid: usize,
}

/// The per-worker evaluation arena: every reusable buffer of the
/// `precheck` → dense → sparse → uarch pipeline (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct EvalScratch {
    pub(crate) precheck: PrecheckScratch,
    pub(crate) dense: DenseScratch,
    pub(crate) sparse: SparseScratch,
    pub(crate) uarch: UarchReport,
    /// `Mapping::validate_with` product buffer.
    pub(crate) validate_buf: Vec<u64>,
}

impl EvalScratch {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// Composed change depth: the divergence between a scratch's cached
/// state and the current candidate, as the deepest storage level whose
/// held tile is guaranteed unchanged (`None` = unknown, recompute
/// everything; `Some(usize::MAX)` = identical).
pub(crate) type Depth = Option<usize>;

/// Composes two consecutive divergences: sharing up to level `a` then up
/// to level `b` shares up to `min(a, b)` overall; an unknown link makes
/// the whole chain unknown.
pub(crate) fn compose(a: Depth, b: Depth) -> Depth {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        _ => None,
    }
}

/// Per-thread free list of evaluation arenas.
///
/// Search workers run on the persistent `rayon` pool (and the serving
/// layer's long-lived worker threads), so parking a finished worker's
/// arena in a thread-local lets the *next* search or request on the same
/// OS thread reuse the grown buffers — worker-held scratch across
/// requests with no API plumbing. Only buffers are reused; every cached
/// value is invalidated by the acquiring worker (its depth state starts
/// at "unknown", forcing a full recompute on first use).
const POOL_CAP: usize = 4;

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<EvalScratch>> = const { RefCell::new(Vec::new()) };
}

/// An [`EvalScratch`] checked out of the thread-local pool; returns its
/// buffers to the pool on drop.
#[derive(Debug)]
pub(crate) struct PooledScratch(Option<EvalScratch>);

impl PooledScratch {
    /// Checks an arena out of this thread's pool (or creates one).
    pub(crate) fn acquire() -> Self {
        let scratch = SCRATCH_POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        PooledScratch(Some(scratch))
    }
}

impl Deref for PooledScratch {
    type Target = EvalScratch;

    fn deref(&self) -> &EvalScratch {
        self.0.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch {
    fn deref_mut(&mut self) -> &mut EvalScratch {
        self.0.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch {
    fn drop(&mut self) {
        if let Some(scratch) = self.0.take() {
            SCRATCH_POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < POOL_CAP {
                    pool.push(scratch);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_takes_the_outermost_divergence() {
        assert_eq!(compose(Some(3), Some(1)), Some(1));
        assert_eq!(compose(Some(0), Some(5)), Some(0));
        assert_eq!(compose(None, Some(2)), None);
        assert_eq!(compose(Some(2), None), None);
        assert_eq!(compose(Some(usize::MAX), Some(4)), Some(4));
    }

    #[test]
    fn pool_recycles_arenas_per_thread() {
        // grow a buffer, drop the handle, re-acquire: the buffer's
        // capacity survives the round trip
        {
            let mut s = PooledScratch::acquire();
            s.validate_buf.reserve(1024);
            debug_assert!(s.validate_buf.capacity() >= 1024);
        }
        let s = PooledScratch::acquire();
        assert!(s.validate_buf.capacity() >= 1024, "arena was not pooled");
    }
}
