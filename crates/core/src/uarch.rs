//! Step 3: micro-architecture modeling (paper §5.4).
//!
//! Consumes the sparse traffic and produces the final metrics:
//!
//! * **Validity** — a mapping is valid only if each level's resident
//!   tiles (payload words plus metadata, statistically or worst-case
//!   sized) fit its capacity.
//! * **Processing speed** — cycles are spent by actual *and gated*
//!   storage accesses and computes; skipped ones cost nothing. Each
//!   level's available bandwidth throttles the whole pipeline (the
//!   mechanism behind the STC SMEM-bandwidth bottleneck in §7.1.3).
//! * **Energy** — per-action energies from the Accelergy-style backend
//!   multiplied by the fine-grained action counts.

use crate::sparse::SparseTraffic;
use serde::{Deserialize, Serialize};
use sparseloop_arch::Architecture;
use sparseloop_energy::EnergyTable;

/// How capacity validity treats statistical occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CapacityMode {
    /// Tiles must fit in expectation (the paper's default: mappings are
    /// sized for the average case).
    #[default]
    Expected,
    /// Tiles must fit even at worst-case occupancy.
    WorstCase,
}

/// Per-storage-level cost summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LevelCost {
    /// Level name.
    pub name: String,
    /// Cycle-consuming data words moved (actual + gated).
    pub cycle_words: f64,
    /// Metadata bits moved.
    pub metadata_bits: f64,
    /// Cycles this level needs given its bandwidth.
    pub cycles: f64,
    /// Dynamic energy in picojoules.
    pub energy_pj: f64,
    /// Expected resident payload words (capacity check input).
    pub occupancy_words: f64,
    /// Expected resident metadata bits.
    pub occupancy_metadata_bits: f64,
}

/// Full micro-architectural report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UarchReport {
    /// Per-level costs, outermost first.
    pub levels: Vec<LevelCost>,
    /// Cycles the compute array needs.
    pub compute_cycles: f64,
    /// Compute energy in picojoules.
    pub compute_energy_pj: f64,
    /// Overall latency in cycles: max over compute and every level
    /// (bandwidth throttling).
    pub cycles: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Whether every level's tiles fit.
    pub valid: bool,
    /// Name of the first level that overflowed, if any.
    pub overflow_level: Option<String>,
}

impl UarchReport {
    /// Energy-delay product (pJ × cycles).
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.cycles
    }
}

/// Whether a tile of `occupancy_words` payload plus
/// `occupancy_metadata_bits` of metadata fits storage level `spec`:
/// metadata goes to the dedicated metadata store when one exists,
/// otherwise shares the data capacity as word equivalents; the remainder
/// is divided across the level's instances. Levels without a stated
/// capacity always fit.
///
/// This is the single source of truth for capacity validity — shared by
/// [`analyze`] and the mapper's cheap pre-pass
/// (`Model::precheck`), which guarantees the pre-pass prunes exactly the
/// mappings the full pipeline would reject as `CapacityExceeded`.
pub fn level_fits(
    spec: &sparseloop_arch::StorageLevel,
    occupancy_words: f64,
    occupancy_metadata_bits: f64,
) -> bool {
    let Some(capacity) = spec.capacity_words else {
        return true;
    };
    let meta_words = match spec.metadata_capacity_bits {
        Some(meta_capacity) => {
            if occupancy_metadata_bits > meta_capacity as f64 {
                return false;
            }
            0.0
        }
        None => occupancy_metadata_bits / spec.word_bits as f64,
    };
    let per_instance = (occupancy_words + meta_words) / spec.instances as f64;
    per_instance <= capacity as f64 + 1e-9
}

/// Runs the micro-architecture step.
pub fn analyze(
    arch: &Architecture,
    traffic: &SparseTraffic,
    energy: &EnergyTable,
    capacity_mode: CapacityMode,
) -> UarchReport {
    let mut report = UarchReport::default();
    analyze_into(arch, traffic, energy, capacity_mode, &mut report);
    report
}

/// The micro-architecture step, written into a reused report.
///
/// Every field of `report` is overwritten; the per-level vector and its
/// name strings reuse their buffers, so evaluating many candidates
/// through one report allocates nothing once warm. Results are
/// bit-identical to [`analyze`] (which wraps this).
pub(crate) fn analyze_into(
    arch: &Architecture,
    traffic: &SparseTraffic,
    energy: &EnergyTable,
    capacity_mode: CapacityMode,
    report: &mut UarchReport,
) {
    report
        .levels
        .resize_with(arch.num_levels(), LevelCost::default);
    let mut total_energy = 0.0f64;
    let mut valid = true;
    report.overflow_level = None;
    let mut max_level_cycles = 0.0f64;

    let compute_energy_table = energy.compute(arch.compute());

    for (l, spec) in arch.levels().iter().enumerate() {
        let act = energy.storage(spec);
        let cost = &mut report.levels[l];
        cost.name.clone_from(&spec.name);
        cost.cycle_words = 0.0;
        cost.metadata_bits = 0.0;
        cost.cycles = 0.0;
        cost.energy_pj = 0.0;
        cost.occupancy_words = 0.0;
        cost.occupancy_metadata_bits = 0.0;
        let mut checks = 0.0f64;
        for e in traffic.at_level(l) {
            // cycles: actual + gated words occupy the port
            let read_like = e.reads.cycle_consuming() + e.drains.cycle_consuming();
            let write_like = e.fills.cycle_consuming() + e.updates.cycle_consuming();
            cost.cycle_words += read_like + write_like;
            cost.metadata_bits += e.metadata_read_bits + e.metadata_write_bits;
            // energy: actual at full cost, gated at gated cost
            cost.energy_pj += (e.reads.actual + e.drains.actual) * act.read
                + (e.fills.actual + e.updates.actual) * act.write
                + (e.reads.gated + e.fills.gated + e.updates.gated + e.drains.gated) * act.gated
                + act.metadata(e.metadata_read_bits + e.metadata_write_bits);
            cost.occupancy_words += match capacity_mode {
                CapacityMode::Expected => e.occupancy_words,
                CapacityMode::WorstCase => e.max_occupancy_words,
            };
            cost.occupancy_metadata_bits += match capacity_mode {
                CapacityMode::Expected => e.occupancy_metadata_bits,
                CapacityMode::WorstCase => e.max_occupancy_metadata_bits,
            };
            checks += e.intersection_checks;
        }
        // intersection decisions are charged at compute-table cost
        cost.energy_pj += checks * compute_energy_table.intersection;

        // capacity check: data words plus metadata (in words) share the
        // level's capacity unless a dedicated metadata store exists
        if !level_fits(spec, cost.occupancy_words, cost.occupancy_metadata_bits) {
            valid = false;
            if report.overflow_level.is_none() {
                report.overflow_level = Some(spec.name.clone());
            }
        }

        // bandwidth throttling: aggregate words (+ metadata as word
        // equivalents) over aggregate bandwidth
        if let Some(bw) = spec.bandwidth_words_per_cycle {
            let words = cost.cycle_words + cost.metadata_bits / spec.word_bits as f64;
            cost.cycles = words / (bw * spec.instances as f64);
            max_level_cycles = max_level_cycles.max(cost.cycles);
        }

        total_energy += cost.energy_pj;
    }

    // compute cycles: actual + gated ops over utilized parallelism
    let parallelism = traffic.utilized_parallelism.max(1) as f64;
    let compute_cycles = traffic.compute.ops.cycle_consuming() / parallelism;
    let compute_energy_pj = traffic.compute.ops.actual * compute_energy_table.mac
        + traffic.compute.ops.gated * compute_energy_table.gated;
    total_energy += compute_energy_pj;

    report.compute_cycles = compute_cycles;
    report.compute_energy_pj = compute_energy_pj;
    report.cycles = compute_cycles.max(max_level_cycles).max(1.0);
    report.energy_pj = total_energy;
    report.valid = valid;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saf::SafSpec;
    use crate::workload::Workload;
    use crate::{dataflow, sparse};
    use sparseloop_arch::{ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel};
    use sparseloop_density::DensityModelSpec;
    use sparseloop_mapping::{Mapping, MappingBuilder};
    use sparseloop_tensor::einsum::{DimId, Einsum};

    fn setup(
        density_a: f64,
        buffer_capacity: u64,
        bw: Option<f64>,
    ) -> (Workload, Architecture, Mapping) {
        let e = Einsum::matmul(4, 4, 4);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: density_a },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let mut buf = StorageLevel::new("Buffer").with_capacity(buffer_capacity);
        if let Some(b) = bw {
            buf = buf.with_bandwidth(b);
        }
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM").with_class(ComponentClass::Dram))
            .level(buf)
            .compute(ComputeSpec::new("MAC", 1))
            .build()
            .unwrap();
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 4)
            .temporal(1, n, 4)
            .temporal(1, k, 4)
            .build();
        (w, arch, map)
    }

    fn run(
        w: &Workload,
        arch: &Architecture,
        map: &Mapping,
        safs: &SafSpec,
        mode: CapacityMode,
    ) -> UarchReport {
        let d = dataflow::analyze(w.einsum(), map);
        let s = sparse::analyze(w, &d, safs);
        analyze(arch, &s, &EnergyTable::default_45nm(), mode)
    }

    #[test]
    fn dense_run_produces_costs() {
        let (w, arch, map) = setup(1.0, 4096, None);
        let r = run(&w, &arch, &map, &SafSpec::dense(), CapacityMode::Expected);
        assert!(r.valid);
        assert!(r.cycles >= 64.0); // 64 MACs on 1 unit
        assert!(r.energy_pj > 0.0);
        assert_eq!(r.levels.len(), 2);
        assert!(r.edp() > 0.0);
    }

    #[test]
    fn capacity_overflow_invalidates() {
        let (w, arch, map) = setup(1.0, 2, None); // tiny buffer
        let r = run(&w, &arch, &map, &SafSpec::dense(), CapacityMode::Expected);
        assert!(!r.valid);
        assert_eq!(r.overflow_level.as_deref(), Some("Buffer"));
    }

    #[test]
    fn compression_can_restore_validity() {
        // Buffer too small for dense A tile but fine when compressed.
        let (w, arch, map) = setup(0.1, 23, None);
        let a = w.einsum().tensor_id("A").unwrap();
        let dense_r = run(&w, &arch, &map, &SafSpec::dense(), CapacityMode::Expected);
        assert!(!dense_r.valid);
        let safs = SafSpec::dense().with_format(1, a, sparseloop_format::TensorFormat::coo(2));
        let r = run(&w, &arch, &map, &safs, CapacityMode::Expected);
        assert!(r.valid, "compressed tile should fit");
    }

    #[test]
    fn worst_case_mode_is_stricter() {
        let (w, arch, map) = setup(0.25, 26, None);
        let a = w.einsum().tensor_id("A").unwrap();
        let safs = SafSpec::dense().with_format(1, a, sparseloop_format::TensorFormat::coo(2));
        let exp = run(&w, &arch, &map, &safs, CapacityMode::Expected);
        let wc = run(&w, &arch, &map, &safs, CapacityMode::WorstCase);
        assert!(exp.valid);
        // worst case occupancy >= expected
        let le = &exp.levels[1];
        let lw = &wc.levels[1];
        assert!(lw.occupancy_words >= le.occupancy_words);
    }

    #[test]
    fn bandwidth_throttling_extends_latency() {
        let (w, arch_fast, map) = setup(1.0, 4096, Some(100.0));
        let (_, arch_slow, _) = setup(1.0, 4096, Some(0.25));
        let fast = run(
            &w,
            &arch_fast,
            &map,
            &SafSpec::dense(),
            CapacityMode::Expected,
        );
        let slow = run(
            &w,
            &arch_slow,
            &map,
            &SafSpec::dense(),
            CapacityMode::Expected,
        );
        assert!(slow.cycles > fast.cycles);
    }

    #[test]
    fn skipping_reduces_cycles_gating_does_not() {
        let (w, _, map) = setup(0.25, 4096, None);
        let arch = {
            let (_, a, _) = setup(0.25, 4096, None);
            a
        };
        let a_id = w.einsum().tensor_id("A").unwrap();
        let skip = SafSpec::dense()
            .with_skip(1, a_id, vec![a_id])
            .with_skip_compute();
        let gate = SafSpec::dense()
            .with_gate(1, a_id, vec![a_id])
            .with_gate_compute();
        let dense_r = run(&w, &arch, &map, &SafSpec::dense(), CapacityMode::Expected);
        let skip_r = run(&w, &arch, &map, &skip, CapacityMode::Expected);
        let gate_r = run(&w, &arch, &map, &gate, CapacityMode::Expected);
        // skipping cuts compute cycles; gating keeps them
        assert!(skip_r.compute_cycles < dense_r.compute_cycles);
        assert!((gate_r.compute_cycles - dense_r.compute_cycles).abs() < 1e-6);
        // both save energy vs dense
        assert!(skip_r.energy_pj < dense_r.energy_pj);
        assert!(gate_r.energy_pj < dense_r.energy_pj);
    }

    #[test]
    fn parallelism_divides_compute_cycles() {
        let e = Einsum::matmul(4, 4, 4);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let w = Workload::dense(e);
        let arch = ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM").with_class(ComponentClass::Dram))
            .level(StorageLevel::new("Buffer").with_capacity(4096))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap();
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 4)
            .spatial(1, n, 4)
            .temporal(1, k, 4)
            .build();
        let r = run(&w, &arch, &map, &SafSpec::dense(), CapacityMode::Expected);
        assert!((r.compute_cycles - 16.0).abs() < 1e-9); // 64 MACs / 4
    }

    #[test]
    fn metadata_counts_toward_bandwidth() {
        let (w, arch, map) = setup(0.5, 4096, Some(1.0));
        let a = w.einsum().tensor_id("A").unwrap();
        let plain = run(&w, &arch, &map, &SafSpec::dense(), CapacityMode::Expected);
        // uncompressed but bitmask-tagged: pure metadata overhead on top
        let fmt = sparseloop_format::TensorFormat::from_ranks(&[
            sparseloop_format::RankFormat::Uncompressed,
            sparseloop_format::RankFormat::Bitmask,
        ]);
        let safs = SafSpec::dense()
            .with_format(1, a, fmt)
            .with_gate(1, a, vec![a]);
        let tagged = run(&w, &arch, &map, &safs, CapacityMode::Expected);
        let lvl_plain = &plain.levels[1];
        let lvl_tagged = &tagged.levels[1];
        assert!(lvl_tagged.metadata_bits > 0.0);
        assert_eq!(lvl_plain.metadata_bits, 0.0);
    }
}
