//! Workload specification: an Einsum plus per-tensor density models.

use sparseloop_density::{DensityModel, DensityModelSpec, Memoized};
use sparseloop_tensor::einsum::{Einsum, TensorId};
use std::fmt;
use std::sync::Arc;

/// A complete workload: tensor algorithm plus the statistical (or actual)
/// density characterization of every tensor (paper §5.1).
#[derive(Clone)]
pub struct Workload {
    einsum: Einsum,
    densities: Vec<Arc<dyn DensityModel>>,
    /// Whether the density models are wrapped in per-shape caches.
    memoized: bool,
}

impl Workload {
    /// Builds a workload from density-model *specs*, instantiated against
    /// each tensor's shape.
    ///
    /// # Panics
    /// Panics if `specs.len()` differs from the tensor count.
    pub fn new(einsum: Einsum, specs: Vec<DensityModelSpec>) -> Self {
        assert_eq!(
            specs.len(),
            einsum.tensors().len(),
            "one density spec per tensor required"
        );
        let densities = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let shape = einsum.tensor_shape(TensorId(i));
                // Scalar outputs (rank 0) are modeled as a single dense cell.
                let shape = if shape.is_empty() { vec![1] } else { shape };
                s.instantiate(&shape)
            })
            .collect();
        Workload {
            einsum,
            densities,
            memoized: false,
        }
    }

    /// Builds a workload from already-instantiated density models (e.g.
    /// [`ActualData`](sparseloop_density::ActualData) wrapping real
    /// tensors).
    ///
    /// # Panics
    /// Panics if `models.len()` differs from the tensor count.
    pub fn with_models(einsum: Einsum, models: Vec<Arc<dyn DensityModel>>) -> Self {
        assert_eq!(
            models.len(),
            einsum.tensors().len(),
            "one density model per tensor required"
        );
        Workload {
            einsum,
            densities: models,
            memoized: false,
        }
    }

    /// Wraps every density model in a per-tile-shape memoization cache
    /// ([`Memoized`]). Mapspace search re-queries the same tile shapes
    /// across thousands of candidates, so [`Model`](crate::Model) applies
    /// this automatically at construction. Idempotent.
    pub fn memoized(mut self) -> Self {
        if !self.memoized {
            self.densities = self.densities.drain(..).map(Memoized::wrap).collect();
            self.memoized = true;
        }
        self
    }

    /// Builds a workload from models that are already memoization-backed
    /// (the batch evaluation session interns shared [`Memoized`] wrappers
    /// across layers); [`memoized`](Workload::memoized) becomes a no-op
    /// so the shared caches are not re-wrapped per model.
    pub(crate) fn with_memoized_models(einsum: Einsum, models: Vec<Arc<dyn DensityModel>>) -> Self {
        let mut w = Workload::with_models(einsum, models);
        w.memoized = true;
        w
    }

    /// Whether the density models are memoization-backed already.
    pub(crate) fn is_memoized(&self) -> bool {
        self.memoized
    }

    /// A fully dense workload.
    pub fn dense(einsum: Einsum) -> Self {
        let n = einsum.tensors().len();
        Workload::new(einsum, vec![DensityModelSpec::Dense; n])
    }

    /// The tensor algorithm.
    pub fn einsum(&self) -> &Einsum {
        &self.einsum
    }

    /// The density model of tensor `t`.
    pub fn density(&self, t: TensorId) -> &Arc<dyn DensityModel> {
        &self.densities[t.0]
    }

    /// Probability that a tile of tensor `t` with the given per-rank shape
    /// is entirely empty. Rank-0 (scalar) tensors are never empty unless
    /// their density is zero.
    pub fn prob_tile_empty(&self, t: TensorId, tile_shape: &[u64]) -> f64 {
        self.prob_tile_empty_with(t, tile_shape, &mut Vec::new())
    }

    /// [`prob_tile_empty`](Workload::prob_tile_empty) with a caller-owned
    /// rank-adaptation buffer: the gating/skipping analyzer queries
    /// leader-tile emptiness per SAF per candidate, and the exact-rank
    /// case (the common one) borrows `tile_shape` directly.
    pub fn prob_tile_empty_with(&self, t: TensorId, tile_shape: &[u64], buf: &mut Vec<u64>) -> f64 {
        let model = &self.densities[t.0];
        let model_rank = model.tensor_shape().len();
        if tile_shape.len() == model_rank && !tile_shape.is_empty() {
            return model.occupancy(tile_shape).prob_empty;
        }
        buf.clear();
        if tile_shape.is_empty() {
            buf.resize(model_rank, 1);
        } else if tile_shape.len() > model_rank {
            // fold extra leading ranks
            let extra = tile_shape.len() - model_rank;
            buf.push(tile_shape[..=extra].iter().product::<u64>());
            buf.extend_from_slice(&tile_shape[extra + 1..]);
        } else {
            buf.resize(model_rank - tile_shape.len(), 1);
            buf.extend_from_slice(tile_shape);
        }
        model.occupancy(buf).prob_empty
    }

    /// Overall density of tensor `t`.
    pub fn tensor_density(&self, t: TensorId) -> f64 {
        self.densities[t.0].density()
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("einsum", &self.einsum.to_string())
            .field(
                "densities",
                &self
                    .densities
                    .iter()
                    .map(|d| format!("{}({:.4})", d.name(), d.density()))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let e = Einsum::matmul(4, 4, 8);
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: 0.25 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        assert!((w.tensor_density(TensorId(0)) - 0.25).abs() < 1e-9);
        assert_eq!(w.tensor_density(TensorId(1)), 1.0);
    }

    #[test]
    fn prob_tile_empty_element() {
        let e = Einsum::matmul(4, 4, 4);
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: 0.25 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let p = w.prob_tile_empty(TensorId(0), &[1, 1]);
        assert!((p - 0.75).abs() < 1e-9);
        assert_eq!(w.prob_tile_empty(TensorId(1), &[1, 1]), 0.0);
    }

    #[test]
    fn scalar_output_handled() {
        let e = Einsum::dot_product(8);
        let w = Workload::dense(e);
        let z = w.einsum().tensor_id("Z").unwrap();
        assert_eq!(w.prob_tile_empty(z, &[]), 0.0);
    }

    #[test]
    fn rank_mismatch_folds() {
        let e = Einsum::matmul(4, 4, 4);
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: 0.5 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        // 3-rank query against 2-rank model folds the leading ranks
        let p3 = w.prob_tile_empty(TensorId(0), &[2, 2, 4]);
        let p2 = w.prob_tile_empty(TensorId(0), &[4, 4]);
        assert!((p3 - p2).abs() < 1e-12);
    }

    #[test]
    fn debug_mentions_models() {
        let e = Einsum::matmul(2, 2, 2);
        let w = Workload::dense(e);
        let s = format!("{w:?}");
        assert!(s.contains("uniform"));
    }
}
