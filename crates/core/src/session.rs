//! Batch evaluation sessions: one shared-cache context for evaluating
//! *many* (design, workload, mapping) combinations.
//!
//! Sparseloop's value proposition is that one analytical model serves
//! thousands of experiments (the paper's Table 5 measures exactly this),
//! but a standalone [`Model`] starts every layer of a multi-layer
//! workload — and every design variant of a sweep — with cold caches.
//! An [`EvalSession`] lifts the two hot memoizations out of the model:
//!
//! * **Density aggregates** — layers whose tensors share a statistical
//!   characterization (same [`DensityModel::cache_key`]) share one
//!   [`Memoized`] wrapper, so occupancy statistics and distributions are
//!   computed once per (statistic, tile shape) across the whole session.
//! * **Format footprint analyses** — the session owns one
//!   `FormatAnalysisCache` whose slots are interned by
//!   `(format, density key)`: two models binding the same format to the
//!   same statistics share every `TensorFormat::analyze` result, across
//!   levels, layers and designs.
//!
//! Results are unchanged by construction — both caches memoize pure
//! functions of their keys — so [`EvalSession::search_batch`] returns
//! bit-identical winners and [`SearchStats`] to running
//! [`Model::search_parallel_with_stats`] per layer; only the number of
//! underlying analyses shrinks (observable via
//! [`EvalSession::format_stats`]). Parallel search inside the session
//! reuses the persistent `rayon` worker pool, so a batch of many small
//! mapspaces does not pay a thread spawn/join round trip per layer.

use crate::engine::{EvalError, Evaluation, Model, Objective};
use crate::saf::SafSpec;
use crate::sparse::FormatAnalysisCache;
use crate::workload::Workload;
use sparseloop_arch::Architecture;
use sparseloop_density::{DensityKey, DensityModel, MemoStats, Memoized};
use sparseloop_format::TensorFormat;
use sparseloop_mapping::{Mapper, Mapping, Mapspace, SearchStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How one [`EvalJob`] picks its mapping.
#[derive(Debug, Clone)]
pub enum JobPlan {
    /// Evaluate exactly this mapping (validation experiments with
    /// paper-pinned schedules).
    Fixed(Mapping),
    /// Search a mapspace for the best mapping under an objective.
    Search {
        /// The constrained candidate space.
        space: Mapspace,
        /// Search strategy.
        mapper: Mapper,
        /// Metric to minimize.
        objective: Objective,
    },
}

/// One unit of a batch: a workload on an architecture with SAFs, plus
/// the mapping plan.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// The workload (einsum + density models).
    pub workload: Workload,
    /// The architecture.
    pub arch: Architecture,
    /// The SAF specification bound to the workload's tensors.
    pub safs: SafSpec,
    /// Fixed mapping or mapspace search.
    pub plan: JobPlan,
}

/// Result of one job of a batch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The chosen (fixed or winning) mapping.
    pub mapping: Mapping,
    /// Its full evaluation.
    pub eval: Evaluation,
    /// Search counters (a fixed-mapping job counts one generated /
    /// evaluated candidate).
    pub stats: SearchStats,
}

/// Why a batch job produced no outcome — kept so scenario failures are
/// diagnosable without re-running the job by hand.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The fixed mapping failed to evaluate (the cause is preserved).
    Eval(EvalError),
    /// The mapspace search exhausted its candidate stream without a
    /// single valid mapping. The counters of the fruitless walk are
    /// preserved so batch throughput accounting still sees the work.
    NoValidCandidate {
        /// Counters of the failed search.
        stats: SearchStats,
    },
    /// The batch's cancellation probe fired before this job ran (an
    /// abandoned ticket, an expired deadline): the job was skipped at a
    /// cancellation checkpoint, not attempted and failed.
    Canceled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Eval(e) => write!(f, "fixed mapping failed: {e}"),
            JobError::NoValidCandidate { stats } => write!(
                f,
                "no valid candidate in the mapspace ({} generated, {} pruned, {} invalid)",
                stats.generated, stats.pruned, stats.invalid
            ),
            JobError::Canceled => write!(f, "job canceled before evaluation"),
        }
    }
}

impl std::error::Error for JobError {}

/// Session-wide cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Format-analysis cache counters; `format.misses` is the number of
    /// real `TensorFormat::analyze` runs the whole session performed.
    pub format: MemoStats,
    /// Distinct shared density models interned so far.
    pub density_models: usize,
    /// Distinct format-analysis slots interned so far.
    pub format_slots: usize,
}

impl SessionStats {
    /// Total intern slots held (density models + format slots) — the
    /// quantity session-recycling budgets are expressed in.
    pub fn total_slots(&self) -> usize {
        self.density_models + self.format_slots
    }
}

#[derive(Default)]
struct SessionInner {
    /// `DensityModel::cache_key` -> shared memoized model. The key is a
    /// pre-hashed [`DensityKey`] (packed words, hash computed once at
    /// construction), so the per-`model()` intern probes — the session
    /// hot path at large batch counts — allocate nothing and hash eight
    /// bytes instead of a formatted string.
    densities: HashMap<DensityKey, Arc<dyn DensityModel>>,
    /// `(format, density key)` -> format-cache slot. Keyed by the
    /// [`TensorFormat`] *value* (`Eq + Hash`), so slot identity is tied
    /// to the type itself rather than any printable rendering of it.
    slots: HashMap<(TensorFormat, DensityKey), u64>,
    next_slot: u64,
}

impl SessionInner {
    fn intern_slot(&mut self, format: TensorFormat, density_key: DensityKey) -> u64 {
        *self.slots.entry((format, density_key)).or_insert_with(|| {
            let id = self.next_slot;
            self.next_slot += 1;
            id
        })
    }
}

/// A shared-cache context for batch evaluation; see the
/// [module docs](self).
///
/// The intern maps grow with the number of *distinct* workload
/// statistics evaluated (each shared model additionally caps its own
/// shape caches). A paper-registry run interns a few hundred entries;
/// a long-lived serving session fed an unbounded stream of
/// differently-shaped layers should be recycled periodically (drop and
/// recreate), since issued cache slots stay referenced by live models
/// and therefore cannot be evicted safely.
#[derive(Default)]
pub struct EvalSession {
    format_cache: Arc<FormatAnalysisCache>,
    inner: Mutex<SessionInner>,
}

impl EvalSession {
    /// An empty session.
    pub fn new() -> Self {
        EvalSession::default()
    }

    /// Builds a [`Model`] bound to this session's shared caches.
    ///
    /// Density models with a [`cache_key`](DensityModel::cache_key) are
    /// interned (one shared [`Memoized`] per distinct statistic), and
    /// format-analysis slots are interned by `(format, density key)` —
    /// exactly the identity `TensorFormat::analyze` depends on — so
    /// sharing cannot change any result, only skip recomputation.
    ///
    /// A workload containing any *keyless* model (actual-data) gets a
    /// model-private format cache instead: there is no sharing identity
    /// to intern by, and parking single-use entries in the session cache
    /// would grow it without bound over a long-lived session. Keyed
    /// density models of such a workload still share their memoized
    /// aggregates.
    pub fn model(&self, workload: Workload, arch: Architecture, safs: SafSpec) -> Model {
        let einsum = workload.einsum().clone();
        let num_tensors = einsum.tensors().len();
        let already_memoized = workload.is_memoized();
        let mut inner = self.inner.lock().expect("session interner poisoned");

        let mut models: Vec<Arc<dyn DensityModel>> = Vec::with_capacity(num_tensors);
        let mut density_keys: Vec<Option<DensityKey>> = Vec::with_capacity(num_tensors);
        for t in 0..num_tensors {
            let raw = Arc::clone(workload.density(sparseloop_tensor::einsum::TensorId(t)));
            match raw.cache_key() {
                Some(key) => {
                    let shared = inner
                        .densities
                        .entry(key.clone())
                        .or_insert_with(|| {
                            // don't stack a second cache over an
                            // already-memoized workload's model
                            if already_memoized {
                                raw
                            } else {
                                Memoized::wrap(raw)
                            }
                        })
                        .clone();
                    models.push(shared);
                    density_keys.push(Some(key));
                }
                None => {
                    // no sharing identity: memoize privately
                    models.push(if already_memoized {
                        raw
                    } else {
                        Memoized::wrap(raw)
                    });
                    density_keys.push(None);
                }
            }
        }

        if density_keys.iter().any(Option::is_none) {
            // keyless workload: a standalone model with its private
            // cache and per-(level, tensor) slots — nothing of it is
            // interned into the session
            drop(inner);
            return Model::new(Workload::with_memoized_models(einsum, models), arch, safs);
        }

        let mut format_slots = Vec::with_capacity(arch.num_levels() * num_tensors);
        for level in 0..arch.num_levels() {
            for (t, density_key) in density_keys.iter().enumerate() {
                let slot = match safs.format_at(level, sparseloop_tensor::einsum::TensorId(t)) {
                    Some(format) => {
                        let key = density_key.clone().expect("keyed workload");
                        inner.intern_slot(format.clone(), key)
                    }
                    // formatless (uncompressed) pairs never query the
                    // cache; park them on an unreachable slot
                    None => u64::MAX,
                };
                format_slots.push(slot);
            }
        }
        drop(inner);

        Model::with_session_cache(
            Workload::with_memoized_models(einsum, models),
            arch,
            safs,
            Arc::clone(&self.format_cache),
            format_slots,
        )
    }

    /// Evaluates a whole batch — a multi-layer workload, a design sweep,
    /// or any mix — through the shared caches.
    ///
    /// Jobs themselves run concurrently on the persistent worker pool
    /// (so a batch of fixed-mapping evaluations parallelizes too), and
    /// search jobs additionally fan their candidate stream out over
    /// `threads` workers via [`Model::search_parallel_with_stats`].
    /// Results are per-job and index-aligned with `jobs`: each job's
    /// winner, objective and [`SearchStats`] are bit-identical to
    /// evaluating it through a standalone model, whatever the
    /// interleaving (caching is observable only in [`SessionStats`]).
    /// A job returns a [`JobError`] when its fixed mapping fails to
    /// evaluate (the [`EvalError`] is preserved) or its mapspace holds
    /// no valid candidate.
    pub fn search_batch(
        &self,
        jobs: &[EvalJob],
        threads: Option<usize>,
    ) -> Vec<Result<JobOutcome, JobError>> {
        self.run_batch(jobs, &|model, space, mapper, objective| {
            model.search_parallel_counted(space, mapper, objective, threads)
        })
    }

    /// Like [`search_batch`](EvalSession::search_batch), but every
    /// candidate runs the full allocating pipeline — scratch arenas and
    /// prefix-incremental caching disabled (see
    /// [`Model::evaluator_from_scratch`]). Bit-identical outcomes by
    /// contract; this reference mode exists for parity tests and the
    /// before/after throughput rows in `BENCH_mapper.json`.
    pub fn search_batch_from_scratch(
        &self,
        jobs: &[EvalJob],
        threads: Option<usize>,
    ) -> Vec<Result<JobOutcome, JobError>> {
        self.run_batch(jobs, &|model, space, mapper, objective| {
            model.search_parallel_counted_from_scratch(space, mapper, objective, threads)
        })
    }

    /// Like [`search_batch`](EvalSession::search_batch), but each search
    /// job partitions its candidate stream into `shards` disjoint
    /// sub-streams evaluated concurrently
    /// ([`Model::search_sharded_counted`]).
    ///
    /// Winners and counters are bit-identical to
    /// [`search_batch`](EvalSession::search_batch) — and therefore to
    /// per-layer [`Model::search_parallel`] — at any shard count; only
    /// the work distribution changes. This is the serving layer's
    /// search mode: one queue worker drives one job while the candidate
    /// stream itself fans out over the shared worker pool.
    pub fn search_batch_sharded(
        &self,
        jobs: &[EvalJob],
        shards: usize,
    ) -> Vec<Result<JobOutcome, JobError>> {
        self.search_batch_sharded_with(jobs, shards, None)
    }

    /// Like [`search_batch_sharded`](EvalSession::search_batch_sharded),
    /// with a cancellation probe checked at each job seam — the batch's
    /// cancellation checkpoints. A probe returning `true` makes every
    /// not-yet-started job resolve to [`JobError::Canceled`] instead of
    /// running; jobs already past their checkpoint run to completion (a
    /// checkpoint is a *retirement seam*, not a preemption point), so
    /// results that do complete stay bit-identical to an uncanceled run.
    pub fn search_batch_sharded_with(
        &self,
        jobs: &[EvalJob],
        shards: usize,
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Vec<Result<JobOutcome, JobError>> {
        self.run_batch_with(
            jobs,
            &|model, space, mapper, objective| {
                model.search_sharded_counted(space, mapper, objective, shards)
            },
            cancel,
        )
    }

    /// Shared batch driver: evaluates fixed-mapping jobs directly and
    /// delegates search jobs to `search`.
    #[allow(clippy::type_complexity)]
    fn run_batch(
        &self,
        jobs: &[EvalJob],
        search: &(dyn Fn(
            &Model,
            &Mapspace,
            Mapper,
            Objective,
        ) -> (Option<(Mapping, Evaluation)>, SearchStats)
              + Sync),
    ) -> Vec<Result<JobOutcome, JobError>> {
        self.run_batch_with(jobs, search, None)
    }

    /// [`run_batch`](EvalSession::run_batch) with an optional
    /// cancellation probe checked once per job, immediately before the
    /// job starts.
    #[allow(clippy::type_complexity)]
    fn run_batch_with(
        &self,
        jobs: &[EvalJob],
        search: &(dyn Fn(
            &Model,
            &Mapspace,
            Mapper,
            Objective,
        ) -> (Option<(Mapping, Evaluation)>, SearchStats)
              + Sync),
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Vec<Result<JobOutcome, JobError>> {
        let run = |job: &EvalJob| -> Result<JobOutcome, JobError> {
            if cancel.map(|probe| probe()).unwrap_or(false) {
                return Err(JobError::Canceled);
            }
            let model = self.model(job.workload.clone(), job.arch.clone(), job.safs.clone());
            match &job.plan {
                JobPlan::Fixed(mapping) => model
                    .evaluate(mapping)
                    .map(|eval| JobOutcome {
                        mapping: mapping.clone(),
                        eval,
                        stats: SearchStats {
                            generated: 1,
                            evaluated: 1,
                            ..SearchStats::default()
                        },
                    })
                    .map_err(JobError::Eval),
                JobPlan::Search {
                    space,
                    mapper,
                    objective,
                } => {
                    let (outcome, stats) = search(&model, space, *mapper, *objective);
                    outcome
                        .map(|(mapping, eval)| JobOutcome {
                            mapping,
                            eval,
                            stats,
                        })
                        .ok_or(JobError::NoValidCandidate { stats })
                }
            }
        };
        if jobs.len() <= 1 {
            return jobs.iter().map(run).collect();
        }
        let mut results: Vec<Option<Result<JobOutcome, JobError>>> =
            jobs.iter().map(|_| None).collect();
        rayon::scope(|s| {
            let run = &run;
            for (slot, job) in results.iter_mut().zip(jobs) {
                s.spawn(move |_| *slot = Some(run(job)));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every batch job ran"))
            .collect()
    }

    /// Counters of the shared format-analysis cache.
    pub fn format_stats(&self) -> MemoStats {
        self.format_cache.stats()
    }

    /// Session-wide cache statistics.
    pub fn stats(&self) -> SessionStats {
        let inner = self.inner.lock().expect("session interner poisoned");
        SessionStats {
            format: self.format_cache.stats(),
            density_models: inner.densities.len(),
            format_slots: inner.slots.len(),
        }
    }
}

impl std::fmt::Debug for EvalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EvalSession")
            .field("format", &stats.format)
            .field("density_models", &stats.density_models)
            .field("format_slots", &stats.format_slots)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseloop_arch::{ArchitectureBuilder, ComponentClass, ComputeSpec, StorageLevel};
    use sparseloop_density::DensityModelSpec;
    use sparseloop_format::TensorFormat;
    use sparseloop_tensor::einsum::{Einsum, TensorId};

    fn arch() -> Architecture {
        ArchitectureBuilder::new("t")
            .level(StorageLevel::new("DRAM").with_class(ComponentClass::Dram))
            .level(StorageLevel::new("Buf").with_capacity(2048))
            .compute(ComputeSpec::new("MAC", 4))
            .build()
            .unwrap()
    }

    fn layer(density: f64) -> (Workload, SafSpec) {
        let e = Einsum::matmul(16, 16, 16);
        let w = Workload::new(
            e.clone(),
            vec![
                DensityModelSpec::Uniform { density },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let a = e.tensor_id("A").unwrap();
        let safs = SafSpec::dense()
            .with_format(0, a, TensorFormat::coo(2))
            .with_format(1, a, TensorFormat::coo(2))
            .with_skip(1, a, vec![a]);
        (w, safs)
    }

    fn job(density: f64) -> EvalJob {
        let (workload, safs) = layer(density);
        let arch = arch();
        let space = Mapspace::all_temporal(workload.einsum(), &arch);
        EvalJob {
            workload,
            arch,
            safs,
            plan: JobPlan::Search {
                space,
                mapper: Mapper::Exhaustive { limit: 500 },
                objective: Objective::Edp,
            },
        }
    }

    #[test]
    fn session_model_matches_standalone_model() {
        let (w, safs) = layer(0.25);
        let session = EvalSession::new();
        let bound = session.model(w.clone(), arch(), safs.clone());
        let standalone = Model::new(w, arch(), safs);
        let mapping = sparseloop_mapping::MappingBuilder::new(2, 3)
            .temporal(0, sparseloop_tensor::einsum::DimId(0), 16)
            .temporal(1, sparseloop_tensor::einsum::DimId(1), 16)
            .temporal(1, sparseloop_tensor::einsum::DimId(2), 16)
            .build();
        let a = bound.evaluate(&mapping).unwrap();
        let b = standalone.evaluate(&mapping).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.energy_pj, b.energy_pj);
        assert_eq!(a.edp, b.edp);
    }

    #[test]
    fn identical_layers_share_density_models_and_slots() {
        let session = EvalSession::new();
        let (w1, s1) = layer(0.25);
        let (w2, s2) = layer(0.25);
        let _ = session.model(w1, arch(), s1);
        let stats1 = session.stats();
        let _ = session.model(w2, arch(), s2);
        let stats2 = session.stats();
        // the second identical layer interned nothing new
        assert_eq!(stats1.density_models, stats2.density_models);
        assert_eq!(stats1.format_slots, stats2.format_slots);
    }

    #[test]
    fn shared_session_performs_fewer_format_analyses() {
        // Two identical layers evaluated through one session must run
        // fewer real format analyses than two standalone models, because
        // the second layer's queries hit the shared cache.
        let standalone_misses: u64 = (0..2)
            .map(|_| {
                let (w, safs) = layer(0.25);
                let m = Model::new(w, arch(), safs);
                m.search_default(Mapper::Exhaustive { limit: 500 }, Objective::Edp)
                    .unwrap();
                m.format_cache_stats().misses
            })
            .sum();
        let session = EvalSession::new();
        let outcomes = session.search_batch(&[job(0.25), job(0.25)], Some(2));
        assert!(outcomes.iter().all(|o| o.is_ok()));
        let shared = session.format_stats();
        assert!(
            shared.misses < standalone_misses,
            "session ran {} analyses, standalone pair ran {standalone_misses}",
            shared.misses
        );
        assert!(shared.hits > 0);
    }

    #[test]
    fn different_densities_do_not_share_slots() {
        let session = EvalSession::new();
        let (w1, s1) = layer(0.25);
        let (w2, s2) = layer(0.5);
        let _ = session.model(w1, arch(), s1);
        let before = session.stats();
        let _ = session.model(w2, arch(), s2);
        let after = session.stats();
        assert!(after.density_models > before.density_models);
        assert!(after.format_slots > before.format_slots);
    }

    #[test]
    fn sharded_batch_matches_plain_batch_bit_identically() {
        let jobs = [job(0.25), job(0.5), job(0.25)];
        let session = EvalSession::new();
        let reference = session.search_batch(&jobs, Some(2));
        for shards in [1, 2, 3, 7] {
            let sharded_session = EvalSession::new();
            let sharded = sharded_session.search_batch_sharded(&jobs, shards);
            for (a, b) in sharded.iter().zip(&reference) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.mapping, b.mapping, "shards={shards}");
                assert_eq!(a.eval.edp, b.eval.edp, "shards={shards}");
                assert_eq!(a.eval.cycles, b.eval.cycles, "shards={shards}");
                assert_eq!(a.eval.energy_pj, b.eval.energy_pj, "shards={shards}");
                assert_eq!(a.stats, b.stats, "shards={shards}");
            }
        }
    }

    #[test]
    fn canceled_probe_skips_jobs_at_the_checkpoint() {
        let jobs = [job(0.25), job(0.5)];
        let session = EvalSession::new();
        let results = session.search_batch_sharded_with(&jobs, 2, Some(&|| true));
        assert!(results.iter().all(|r| matches!(r, Err(JobError::Canceled))));
        // an unfired probe changes nothing: bit-identical to no probe
        let plain = session.search_batch_sharded(&jobs, 2);
        let probed = session.search_batch_sharded_with(&jobs, 2, Some(&|| false));
        for (a, b) in probed.iter().zip(&plain) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.mapping, b.mapping);
            assert_eq!(a.eval.edp, b.eval.edp);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn shard_worker_halves_reassemble_the_model_search() {
        // Model::search_shard_counted over every shard index, merged and
        // re-evaluated by the caller, equals Model::search_sharded_counted
        let (workload, safs) = layer(0.25);
        let arch = arch();
        let space = Mapspace::all_temporal(workload.einsum(), &arch);
        let mapper = Mapper::Exhaustive { limit: 500 };
        let session = EvalSession::new();
        let model = session.model(workload, arch, safs);
        let (whole, whole_stats) = model.search_sharded_counted(&space, mapper, Objective::Edp, 3);
        let parts =
            (0..3).map(|k| model.search_shard_counted(&space, mapper, Objective::Edp, k, 3));
        let (merged, stats) = sparseloop_mapping::merge_shard_results(parts);
        let merged = merged.expect("search succeeds");
        let (mapping, eval) = whole.expect("search succeeds");
        assert_eq!(merged.mapping, mapping);
        assert_eq!(stats, whole_stats);
        let re_eval = model.evaluate(&merged.mapping).unwrap();
        assert_eq!(re_eval.edp, eval.edp);
        assert_eq!(re_eval.cycles, eval.cycles);
        assert_eq!(re_eval.energy_pj, eval.energy_pj);
    }

    #[test]
    fn fixed_plan_evaluates_without_search() {
        let (workload, safs) = layer(0.5);
        let mapping = sparseloop_mapping::MappingBuilder::new(2, 3)
            .temporal(0, sparseloop_tensor::einsum::DimId(0), 16)
            .temporal(1, sparseloop_tensor::einsum::DimId(1), 16)
            .temporal(1, sparseloop_tensor::einsum::DimId(2), 16)
            .build();
        let session = EvalSession::new();
        let out = session.search_batch(
            &[EvalJob {
                workload,
                arch: arch(),
                safs,
                plan: JobPlan::Fixed(mapping.clone()),
            }],
            None,
        );
        let outcome = out[0].as_ref().expect("fixed mapping evaluates");
        assert_eq!(outcome.mapping, mapping);
        assert_eq!(outcome.stats.evaluated, 1);
    }

    #[test]
    fn actual_data_models_stay_private() {
        use sparseloop_density::ActualData;
        use sparseloop_tensor::{point::Shape, SparseTensor};
        let e = Einsum::matmul(4, 4, 4);
        let mk = || {
            let t = SparseTensor::from_triplets(
                Shape::new(vec![4, 4]),
                &[(vec![0, 0], 1.0), (vec![2, 3], 1.0)],
            );
            Workload::with_models(
                e.clone(),
                vec![
                    Arc::new(ActualData::new(t)) as Arc<dyn DensityModel>,
                    DensityModelSpec::Dense.instantiate(&[4, 4]),
                    DensityModelSpec::Dense.instantiate(&[4, 4]),
                ],
            )
        };
        let session = EvalSession::new();
        let a = e.tensor_id("A").unwrap();
        let safs = SafSpec::dense().with_format(0, a, TensorFormat::coo(2));
        let m1 = session.model(mk(), arch(), safs.clone());
        let before = session.stats();
        let _ = session.model(mk(), arch(), safs);
        let after = session.stats();
        // keyless workloads intern nothing: no shared density models and
        // no session format slots — a long-lived session cannot be grown
        // by actual-data traffic
        assert_eq!(before.density_models, after.density_models);
        assert_eq!(before.format_slots, after.format_slots);
        assert_eq!(after.format.queries(), 0, "session cache untouched");
        // the private model still caches its own analyses
        let mapping = sparseloop_mapping::MappingBuilder::new(2, 3)
            .temporal(0, sparseloop_tensor::einsum::DimId(0), 4)
            .temporal(1, sparseloop_tensor::einsum::DimId(1), 4)
            .temporal(1, sparseloop_tensor::einsum::DimId(2), 4)
            .build();
        m1.evaluate(&mapping).unwrap();
        assert!(m1.format_cache_stats().queries() > 0);
        let _ = TensorId(0);
    }
}
