//! Sparse acceleration feature (SAF) specification (paper §3, §5.1).
//!
//! The taxonomy classifies all sparsity-aware acceleration techniques into
//! three orthogonal features:
//!
//! * **Representation format** ([`FormatSaf`]) — how a tensor is encoded
//!   at a storage level (compression + metadata).
//! * **Gating** — ineffectual operations keep their cycles but the
//!   hardware idles, saving energy only.
//! * **Skipping** — ineffectual operations are not issued at all, saving
//!   both energy and cycles.
//!
//! Gating/skipping at storage ([`IntersectionSaf`]) is driven by
//! leader-follower or double-sided intersections; at compute
//! ([`ComputeSaf`]) it acts on operand zero checks.

use serde::{Deserialize, Serialize};
use sparseloop_format::TensorFormat;
use sparseloop_tensor::einsum::TensorId;

/// Whether an elimination saves energy only (gate) or energy and cycles
/// (skip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ActionOpt {
    /// Idle through the cycle: saves energy, not time.
    Gate,
    /// Jump to the next effectual operation: saves energy and time.
    Skip,
}

/// A representation format applied to one tensor at one storage level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormatSaf {
    /// Storage level index (0 = outermost).
    pub level: usize,
    /// The tensor being encoded.
    pub tensor: TensorId,
    /// The hierarchical format.
    pub format: TensorFormat,
}

/// A gating or skipping SAF on a tensor's accesses at one storage level,
/// based on leader-follower intersection. The *target* (follower) tensor's
/// accesses at `level` are eliminated when the mapping-determined leader
/// tile of **any** leader tensor is entirely empty.
///
/// A double-sided intersection `A ↔ B` is expressed as the pair
/// `{target: A, leaders: [B]}` and `{target: B, leaders: [A]}`
/// (paper §5.3.4: `B ↔ A = B ← A + A ← B`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntersectionSaf {
    /// Storage level whose accesses are gated/skipped.
    pub level: usize,
    /// The follower tensor whose accesses get eliminated.
    pub target: TensorId,
    /// Leader tensors checked for emptiness. With several leaders
    /// (`Z ← A & B`), the target access is eliminated when *any* leader
    /// tile is empty (the computation cannot be effectual).
    pub leaders: Vec<TensorId>,
    /// Gate or skip.
    pub action: ActionOpt,
}

/// Gating/skipping applied directly at the compute units: leftover
/// ineffectual computes (operands delivered but at least one is zero) are
/// gated or skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeSaf {
    /// Gate or skip the leftover ineffectual computes.
    pub action: ActionOpt,
}

/// The full SAF specification of a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SafSpec {
    /// Per-(level, tensor) representation formats; tensors without an
    /// entry at a level are stored uncompressed there.
    pub formats: Vec<FormatSaf>,
    /// Gating/skipping intersections at storage levels.
    pub intersections: Vec<IntersectionSaf>,
    /// Optional gating/skipping at the compute units.
    pub compute: Option<ComputeSaf>,
}

impl SafSpec {
    /// A design with no SAFs at all (a dense accelerator).
    pub fn dense() -> Self {
        SafSpec::default()
    }

    /// Builder-style: adds a representation format.
    pub fn with_format(mut self, level: usize, tensor: TensorId, format: TensorFormat) -> Self {
        self.formats.push(FormatSaf {
            level,
            tensor,
            format,
        });
        self
    }

    /// Builder-style: adds a leader-follower gating SAF
    /// (`Gate target ← leaders`).
    pub fn with_gate(mut self, level: usize, target: TensorId, leaders: Vec<TensorId>) -> Self {
        self.intersections.push(IntersectionSaf {
            level,
            target,
            leaders,
            action: ActionOpt::Gate,
        });
        self
    }

    /// Builder-style: adds a leader-follower skipping SAF
    /// (`Skip target ← leaders`).
    pub fn with_skip(mut self, level: usize, target: TensorId, leaders: Vec<TensorId>) -> Self {
        self.intersections.push(IntersectionSaf {
            level,
            target,
            leaders,
            action: ActionOpt::Skip,
        });
        self
    }

    /// Builder-style: adds a double-sided skipping intersection
    /// (`Skip a ↔ b`) as the pair of leader-follower SAFs.
    pub fn with_double_sided_skip(self, level: usize, a: TensorId, b: TensorId) -> Self {
        self.with_skip(level, a, vec![b])
            .with_skip(level, b, vec![a])
    }

    /// Builder-style: gates leftover ineffectual computes
    /// (`Gate Compute`).
    pub fn with_gate_compute(mut self) -> Self {
        self.compute = Some(ComputeSaf {
            action: ActionOpt::Gate,
        });
        self
    }

    /// Builder-style: skips leftover ineffectual computes
    /// (`Skip Compute`).
    pub fn with_skip_compute(mut self) -> Self {
        self.compute = Some(ComputeSaf {
            action: ActionOpt::Skip,
        });
        self
    }

    /// The format of `tensor` at `level`, if any.
    pub fn format_at(&self, level: usize, tensor: TensorId) -> Option<&TensorFormat> {
        self.formats
            .iter()
            .find(|f| f.level == level && f.tensor == tensor)
            .map(|f| &f.format)
    }

    /// All intersection SAFs targeting `tensor` at `level`.
    pub fn intersections_at(&self, level: usize, tensor: TensorId) -> Vec<&IntersectionSaf> {
        self.intersections_iter(level, tensor).collect()
    }

    /// Like [`intersections_at`](SafSpec::intersections_at), without
    /// materializing the list — the sparse modeling step queries this
    /// per (tensor, level) per candidate on the search hot path.
    pub fn intersections_iter(
        &self,
        level: usize,
        tensor: TensorId,
    ) -> impl Iterator<Item = &IntersectionSaf> {
        self.intersections
            .iter()
            .filter(move |s| s.level == level && s.target == tensor)
    }

    /// Whether any skipping SAF exists anywhere in the design.
    pub fn has_skipping(&self) -> bool {
        self.intersections
            .iter()
            .any(|s| s.action == ActionOpt::Skip)
            || matches!(
                self.compute,
                Some(ComputeSaf {
                    action: ActionOpt::Skip
                })
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_spec_has_nothing() {
        let s = SafSpec::dense();
        assert!(s.formats.is_empty());
        assert!(s.intersections.is_empty());
        assert!(s.compute.is_none());
        assert!(!s.has_skipping());
    }

    #[test]
    fn double_sided_expands_to_pair() {
        let s = SafSpec::dense().with_double_sided_skip(1, TensorId(0), TensorId(1));
        assert_eq!(s.intersections.len(), 2);
        assert_eq!(s.intersections[0].target, TensorId(0));
        assert_eq!(s.intersections[0].leaders, vec![TensorId(1)]);
        assert_eq!(s.intersections[1].target, TensorId(1));
        assert!(s.has_skipping());
    }

    #[test]
    fn format_lookup() {
        let s = SafSpec::dense().with_format(1, TensorId(0), TensorFormat::csr());
        assert!(s.format_at(1, TensorId(0)).is_some());
        assert!(s.format_at(0, TensorId(0)).is_none());
        assert!(s.format_at(1, TensorId(1)).is_none());
    }

    #[test]
    fn intersections_filtered_by_level_and_target() {
        let s = SafSpec::dense()
            .with_skip(0, TensorId(1), vec![TensorId(0)])
            .with_gate(1, TensorId(1), vec![TensorId(0)]);
        assert_eq!(s.intersections_at(0, TensorId(1)).len(), 1);
        assert_eq!(s.intersections_at(1, TensorId(1)).len(), 1);
        assert_eq!(s.intersections_at(1, TensorId(0)).len(), 0);
    }

    #[test]
    fn gate_compute_recorded() {
        let s = SafSpec::dense().with_gate_compute();
        assert_eq!(
            s.compute,
            Some(ComputeSaf {
                action: ActionOpt::Gate
            })
        );
        assert!(!s.has_skipping());
        let s = SafSpec::dense().with_skip_compute();
        assert!(s.has_skipping());
    }
}
