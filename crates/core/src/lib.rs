//! # sparseloop-core
//!
//! The Sparseloop analytical model (MICRO 2022): fast, accurate, flexible
//! evaluation of sparse (and dense) tensor accelerators.
//!
//! The model runs in the paper's three decoupled steps (Fig. 5):
//!
//! 1. **Dataflow modeling** ([`dataflow`]) — derives *dense traffic*: the
//!    uncompressed data movement and dense compute implied by the mapping,
//!    using Timeloop-style loop-nest analysis (tile footprints, temporal
//!    stationarity, spatial multicast).
//! 2. **Sparse modeling** ([`sparse`]) — filters dense traffic into
//!    *sparse traffic* by applying the design's sparse acceleration
//!    features (SAFs): representation formats shrink moved data and add
//!    metadata; gating/skipping SAFs reclassify accesses into
//!    actual/gated/skipped using statistical leader-tile emptiness from
//!    the density models, with mapping-determined leader tiles (Fig. 10)
//!    and propagation of upper-level eliminations to inner levels.
//! 3. **Micro-architecture modeling** ([`uarch`]) — checks mapping
//!    validity against storage capacities, applies bandwidth throttling,
//!    and produces processing speed (cycles) and energy via the
//!    Accelergy-style backend.
//!
//! The top-level entry point is [`Model`]:
//!
//! ```
//! use sparseloop_core::{Model, Workload, SafSpec};
//! use sparseloop_arch::{ArchitectureBuilder, ComputeSpec, StorageLevel, ComponentClass};
//! use sparseloop_density::DensityModelSpec;
//! use sparseloop_mapping::MappingBuilder;
//! use sparseloop_tensor::einsum::{DimId, Einsum};
//!
//! // Z[m,n] = sum_k A[m,k] B[k,n], A 25% dense, B dense.
//! let e = Einsum::matmul(4, 4, 4);
//! let workload = Workload::new(
//!     e,
//!     vec![
//!         DensityModelSpec::Uniform { density: 0.25 },
//!         DensityModelSpec::Dense,
//!         DensityModelSpec::Dense,
//!     ],
//! );
//! let arch = ArchitectureBuilder::new("demo")
//!     .level(StorageLevel::new("BackingStorage").with_class(ComponentClass::Dram))
//!     .level(StorageLevel::new("Buffer").with_capacity(256))
//!     .compute(ComputeSpec::new("MAC", 4))
//!     .build().unwrap();
//! let (m, n, k) = (DimId(0), DimId(1), DimId(2));
//! let mapping = MappingBuilder::new(2, 3)
//!     .temporal(0, m, 4)
//!     .spatial(1, n, 4)
//!     .temporal(1, k, 4)
//!     .build();
//! let model = Model::new(workload, arch, SafSpec::dense());
//! let eval = model.evaluate(&mapping).unwrap();
//! assert!(eval.cycles > 0.0 && eval.energy_pj > 0.0);
//! ```

pub mod dataflow;
pub mod engine;
pub mod saf;
pub mod scratch;
pub mod session;
pub mod sparse;
pub mod uarch;
pub mod workload;

pub use dataflow::{DenseScratch, DenseTraffic, TensorLevelTraffic};
pub use engine::{EvalError, Evaluation, FromScratchEvaluator, Model, ModelEvaluator, Objective};
pub use saf::{ActionOpt, ComputeSaf, FormatSaf, IntersectionSaf, SafSpec};
pub use scratch::EvalScratch;
pub use session::{EvalJob, EvalSession, JobError, JobOutcome, JobPlan, SessionStats};
pub use sparse::{ActionBreakdown, SparseCompute, SparseScratch, SparseTensorLevel, SparseTraffic};
pub use uarch::{level_fits, LevelCost, UarchReport};
pub use workload::Workload;

// the cache-counter type surfaced by `Model::format_cache_stats` /
// `EvalSession::format_stats`
pub use sparseloop_density::MemoStats;
