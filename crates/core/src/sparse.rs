//! Step 2: sparse modeling — filtering dense traffic through SAFs
//! (paper §5.3, Fig. 8).
//!
//! This step turns the dense traffic of step 1 into *sparse traffic*:
//! per-(tensor, level) action breakdowns into **actual**, **gated** and
//! **skipped** fine-grained actions, plus metadata traffic and compressed
//! occupancies. It composes three analyses:
//!
//! * **Format analyzer** (§5.3.3) — a compressed tensor moves only its
//!   nonzero payloads plus per-rank metadata; the statistical footprint
//!   comes from [`TensorFormat::analyze`](sparseloop_format::TensorFormat).
//! * **Gating/skipping analyzer** (§5.3.4) — leader-follower
//!   intersections eliminate target accesses when the mapping-determined
//!   leader tile is empty. The leader tile is the leader tensor's
//!   projection over the target's *reuse region* (dense-analysis
//!   stationarity run), reproducing Fig. 10's mapping dependence.
//!   Eliminations at upper levels propagate to all inner levels with
//!   *conditional* probabilities (an inner, finer-grained intersection on
//!   the same leaders only eliminates what its outer, coarser-grained
//!   parent could not — the hierarchical-skip composition of Fig. 17).
//! * **Traffic post-processing** (§5.3.5) — zero-value (self) gating and
//!   skipping interact with compression: a compressed tensor's zeros are
//!   skipped for free; an uncompressed bitmask-style design spends the
//!   cycles and gates them instead.
//!
//! Self SAFs are written `Gate t ← t` / `Skip t ← t` (leaders contain the
//! target): they act at *word* granularity on the tensor's own zeros
//! rather than through the tile-granularity leader machinery.

use crate::dataflow::DenseTraffic;
use crate::saf::{ActionOpt, SafSpec};
use crate::workload::Workload;

use sparseloop_density::{DensityModel, MemoStats, ShapeMemo};
use sparseloop_format::{FormatOverhead, TensorFormat};
use sparseloop_tensor::einsum::{TensorId, TensorKind};

/// Maximum tile shapes the format-analysis cache retains per slot;
/// beyond it, results are computed without being stored.
pub const FORMAT_CACHE_CAP: usize = 8192;

/// A thread-safe memo of format footprint analyses, keyed by an opaque
/// *slot* plus the tile shape (built on the shared
/// [`ShapeMemo`] primitive from `sparseloop-density`).
///
/// Mapspace search evaluates thousands of candidates whose per-level tile
/// shapes repeat (the factorization space reuses factors), and the same
/// analysis runs in both the capacity pre-pass (`Model::precheck`) and
/// the sparse modeling step — so one cache removes the dominant repeated
/// cost on both paths.
///
/// **Soundness contract**: a slot id must pin down the full analysis
/// identity — the [`TensorFormat`] *and* the density statistics it is
/// analyzed against. A standalone [`Model`] assigns each
/// `(level, tensor)` pair its own slot (format and density model are
/// fixed per pair for the model's lifetime, exactly the seed's keying);
/// an [`EvalSession`](crate::EvalSession) interns slots by
/// `(format, density cache key)` so identical analyses are shared across
/// the session's models/layers. Sharing a cache across models without
/// that discipline would silently serve stale footprints.
///
/// [`Model`]: crate::Model
#[derive(Debug)]
pub(crate) struct FormatAnalysisCache {
    memo: ShapeMemo<FormatOverhead>,
}

impl Default for FormatAnalysisCache {
    fn default() -> Self {
        FormatAnalysisCache {
            memo: ShapeMemo::new(FORMAT_CACHE_CAP),
        }
    }
}

impl FormatAnalysisCache {
    /// `format.analyze(shape, model)`, memoized per `(slot, shape)`.
    pub(crate) fn analyze(
        &self,
        slot: u64,
        format: &TensorFormat,
        shape: &[u64],
        model: &dyn DensityModel,
    ) -> FormatOverhead {
        *self
            .memo
            .get_or_compute(slot, shape, || format.analyze(shape, model))
    }

    /// Hit/miss/entry counters (misses = real analyses performed).
    pub(crate) fn stats(&self) -> MemoStats {
        self.memo.stats()
    }
}

/// A format cache bound to one model's `(level, tensor) -> slot` table —
/// the handle the evaluation pipeline threads through
/// [`analyze_with_cache`].
#[derive(Clone, Copy)]
pub(crate) struct FormatCacheView<'a> {
    pub(crate) cache: &'a FormatAnalysisCache,
    /// Slot per `(level, tensor)`, row-major `level * num_tensors + t`.
    pub(crate) slots: &'a [u64],
    pub(crate) num_tensors: usize,
}

impl FormatCacheView<'_> {
    pub(crate) fn analyze(
        &self,
        level: usize,
        tensor: TensorId,
        format: &TensorFormat,
        shape: &[u64],
        model: &dyn DensityModel,
    ) -> FormatOverhead {
        let slot = self.slots[level * self.num_tensors + tensor.0];
        self.cache.analyze(slot, format, shape, model)
    }
}

/// A count of fine-grained actions split by what happened to them.
///
/// Invariant: `actual + gated + skipped` equals the (possibly
/// compression-reduced) dense count the breakdown was derived from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActionBreakdown {
    /// Operations that really execute (full energy, full cycles).
    pub actual: f64,
    /// Gated operations (gated energy, full cycles).
    pub gated: f64,
    /// Skipped operations (no energy, no cycles).
    pub skipped: f64,
}

impl ActionBreakdown {
    /// A breakdown with everything actual.
    pub fn dense(count: f64) -> Self {
        ActionBreakdown {
            actual: count,
            gated: 0.0,
            skipped: 0.0,
        }
    }

    /// Total operations across classes.
    pub fn total(&self) -> f64 {
        self.actual + self.gated + self.skipped
    }

    /// Operations that consume cycles (actual + gated).
    pub fn cycle_consuming(&self) -> f64 {
        self.actual + self.gated
    }

    /// Moves `fraction` of the current *actual* operations into the given
    /// class.
    pub fn eliminate(&mut self, fraction: f64, action: ActionOpt) {
        let f = fraction.clamp(0.0, 1.0);
        let moved = self.actual * f;
        self.actual -= moved;
        match action {
            ActionOpt::Gate => self.gated += moved,
            ActionOpt::Skip => self.skipped += moved,
        }
    }

    /// Scales every class (used when upstream skipping removes the
    /// operations entirely).
    pub fn scale(&mut self, s: f64) {
        self.actual *= s;
        self.gated *= s;
        self.skipped *= s;
    }
}

/// Sparse traffic of one tensor at one storage level.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensorLevel {
    /// The tensor.
    pub tensor: TensorId,
    /// Storage level index.
    pub level: usize,
    /// Reads (serving the child level / compute).
    pub reads: ActionBreakdown,
    /// Fills from the parent level.
    pub fills: ActionBreakdown,
    /// Updates from below (outputs).
    pub updates: ActionBreakdown,
    /// Drains to the parent (outputs).
    pub drains: ActionBreakdown,
    /// Metadata bits read out of this level.
    pub metadata_read_bits: f64,
    /// Metadata bits written into this level.
    pub metadata_write_bits: f64,
    /// Expected payload words resident (for capacity checking).
    pub occupancy_words: f64,
    /// Expected metadata bits resident.
    pub occupancy_metadata_bits: f64,
    /// Worst-case payload words resident.
    pub max_occupancy_words: f64,
    /// Worst-case metadata bits resident.
    pub max_occupancy_metadata_bits: f64,
    /// Intersection-unit decisions charged at this level.
    pub intersection_checks: f64,
}

/// Sparse compute summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SparseCompute {
    /// Compute operation breakdown.
    pub ops: ActionBreakdown,
}

/// Output of the sparse modeling step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseTraffic {
    /// One entry per (tensor, level in its storage chain).
    pub entries: Vec<SparseTensorLevel>,
    /// Compute breakdown.
    pub compute: SparseCompute,
    /// Spatial parallelism in use (copied from dense analysis).
    pub utilized_parallelism: u64,
}

impl SparseTraffic {
    /// Looks up the entry for `(tensor, level)`.
    pub fn get(&self, tensor: TensorId, level: usize) -> Option<&SparseTensorLevel> {
        self.entries
            .iter()
            .find(|e| e.tensor == tensor && e.level == level)
    }

    /// All entries at one storage level.
    pub fn at_level(&self, level: usize) -> impl Iterator<Item = &SparseTensorLevel> {
        self.entries.iter().filter(move |e| e.level == level)
    }
}

/// A tiny insertion-ordered association list on a pre-packed small key:
/// `(key, value)` pairs in a reusable `Vec`, looked up by linear scan
/// (O(n) per probe — no hashing at all).
///
/// The elimination trackers hold one entry per distinct leader set /
/// leader tensor — one to three in every real design — so a linear scan
/// beats any hash table at these sizes, inserts allocate nothing once
/// the `Vec` is warm (the seed keyed these maps by freshly allocated
/// `Vec<usize>` per insert), and iteration order is *deterministic*
/// (insertion order), unlike the `HashMap` it replaces.
#[derive(Debug, Default, Clone)]
struct SmallMap<K: Copy + PartialEq> {
    entries: Vec<(K, f64)>,
}

impl<K: Copy + PartialEq> SmallMap<K> {
    fn clear(&mut self) {
        self.entries.clear();
    }

    /// The value slot for `key`, inserted as `default` when absent.
    fn entry(&mut self, key: K, default: f64) -> &mut f64 {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &mut self.entries[i].1;
        }
        self.entries.push((key, default));
        &mut self.entries.last_mut().expect("just pushed").1
    }

    fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().map(|(_, v)| *v)
    }

    fn iter(&self) -> impl Iterator<Item = (K, f64)> + '_ {
        self.entries.iter().copied()
    }
}

/// Per-tensor elimination bookkeeping across levels. Keyed by the packed
/// leader-set bitmask (bit `t` set means `TensorId(t)` is in the set —
/// the identity the seed encoded as a freshly allocated sorted
/// `Vec<usize>` per insert) so that hierarchical intersections on the
/// same leaders compose *conditionally* rather than multiplicatively.
#[derive(Debug, Default)]
struct ElimTracker {
    /// leader set (packed bitmask) -> survival probability after the
    /// outer levels (used for conditional per-level traffic
    /// classification).
    skip_surv: SmallMap<u64>,
    gate_surv: SmallMap<u64>,
    /// per-leader finest-granularity survival (used for compute
    /// classification, deduplicated across targets).
    skip_leader_surv: SmallMap<usize>,
    gate_leader_surv: SmallMap<usize>,
    /// Whether a word-granularity self-skip / self-gate was seen at any
    /// level (affects compute classification).
    self_skip: bool,
    self_gate: bool,
}

impl ElimTracker {
    fn clear(&mut self) {
        self.skip_surv.clear();
        self.gate_surv.clear();
        self.skip_leader_surv.clear();
        self.gate_leader_surv.clear();
        self.self_skip = false;
        self.self_gate = false;
    }

    /// Combined survival from all skip leader-sets (innermost
    /// granularity).
    fn total_skip_survival(&self) -> f64 {
        self.skip_surv.values().product()
    }
}

/// Runs the sparse modeling step.
pub fn analyze(workload: &Workload, dense: &DenseTraffic, safs: &SafSpec) -> SparseTraffic {
    analyze_with_cache(workload, dense, safs, None)
}

/// Runs the sparse modeling step, memoizing format footprint analyses in
/// `cache` when one is provided (see [`FormatAnalysisCache`]).
pub(crate) fn analyze_with_cache(
    workload: &Workload,
    dense: &DenseTraffic,
    safs: &SafSpec,
    cache: Option<&FormatCacheView<'_>>,
) -> SparseTraffic {
    let mut scratch = SparseScratch::default();
    analyze_into(workload, dense, safs, cache, &mut scratch);
    scratch.traffic
}

/// Reusable buffers for the sparse modeling step: the traffic table,
/// per-tensor elimination trackers and shape/condition buffers persist
/// across candidates so the hot path allocates nothing once warm (every
/// per-entry record is plain scalar data).
#[derive(Debug, Default)]
pub struct SparseScratch {
    traffic: SparseTraffic,
    trackers: Vec<ElimTracker>,
    skip_cond: SmallMap<usize>,
    gate_cond: SmallMap<usize>,
    /// Leader tile shape buffer.
    shape: Vec<u64>,
    /// Rank-adaptation buffer for `Workload::prob_tile_empty_with`.
    rank_buf: Vec<u64>,
}

impl SparseScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        SparseScratch::default()
    }

    /// The traffic of the most recent [`analyze_into`] call.
    pub fn traffic(&self) -> &SparseTraffic {
        &self.traffic
    }
}

/// The sparse modeling step, written into `scratch` — bit-identical to
/// [`analyze`] (which wraps this with a throwaway scratch).
pub(crate) fn analyze_into(
    workload: &Workload,
    dense: &DenseTraffic,
    safs: &SafSpec,
    cache: Option<&FormatCacheView<'_>>,
    scratch: &mut SparseScratch,
) {
    let einsum = workload.einsum();
    let num_tensors = einsum.tensors().len();
    if scratch.trackers.len() < num_tensors {
        scratch
            .trackers
            .resize_with(num_tensors, ElimTracker::default);
    }
    for tr in &mut scratch.trackers {
        tr.clear();
    }
    let trackers = &mut scratch.trackers;
    let entries = &mut scratch.traffic.entries;
    entries.clear();
    entries.reserve(dense.entries.len());
    let shape = &mut scratch.shape;
    let rank_buf = &mut scratch.rank_buf;

    // Dense entries are grouped per tensor with levels outermost-first,
    // which is exactly the order propagation requires.
    for de in &dense.entries {
        let t = de.tensor;
        let tracker = &mut trackers[t.0];
        let d_t = workload.tensor_density(t);

        // --- survival inherited from SAFs at outer levels -------------
        let surv_above_skip = tracker.total_skip_survival();

        // --- local cross-tensor intersections -------------------------
        let mut local_skip = 0.0f64; // conditional fraction at this level
        let mut local_gate = 0.0f64;
        let mut checks = 0.0f64;
        let mut self_gate_here = false;
        let mut self_skip_here = false;
        for saf in safs.intersections_iter(de.level, t) {
            let has_self = saf.leaders.contains(&t);
            let cross = || saf.leaders.iter().copied().filter(|&l| l != t);
            if has_self {
                // self part: word-granularity zero elimination
                match saf.action {
                    ActionOpt::Gate => {
                        self_gate_here = true;
                        tracker.self_gate = true;
                    }
                    ActionOpt::Skip => {
                        self_skip_here = true;
                        tracker.self_skip = true;
                    }
                }
            }
            let mut key = 0u64; // packed leader-set key
                                // survival if ALL leader tiles non-empty
            let mut surv_here = 1.0f64;
            let mut any_cross = false;
            for l in cross() {
                any_cross = true;
                key |= 1u64
                    .checked_shl(l.0 as u32)
                    .expect("at most 64 tensors supported in leader sets");
                einsum.tensor_tile_shape_into(l, &de.reuse_bounds, shape);
                surv_here *= 1.0 - workload.prob_tile_empty_with(l, shape, rank_buf);
            }
            if !any_cross {
                continue;
            }
            // per-leader survival at this granularity, kept at the finest
            // level seen (for deduplicated compute classification)
            for l in cross() {
                einsum.tensor_tile_shape_into(l, &de.reuse_bounds, shape);
                let s_l = 1.0 - workload.prob_tile_empty_with(l, shape, rank_buf);
                let map = match saf.action {
                    ActionOpt::Skip => &mut tracker.skip_leader_surv,
                    ActionOpt::Gate => &mut tracker.gate_leader_surv,
                };
                let entry = map.entry(l.0, 1.0);
                if s_l < *entry {
                    *entry = s_l;
                }
            }
            let (surv_map, frac_slot) = match saf.action {
                ActionOpt::Skip => (&mut tracker.skip_surv, &mut local_skip),
                ActionOpt::Gate => (&mut tracker.gate_surv, &mut local_gate),
            };
            let prior = surv_map.entry(key, 1.0);
            // conditional elimination given what outer levels already
            // removed on the same leader set
            let cond_elim = if *prior <= f64::EPSILON {
                0.0
            } else {
                (1.0 - surv_here / *prior).clamp(0.0, 1.0)
            };
            *frac_slot = 1.0 - (1.0 - *frac_slot) * (1.0 - cond_elim);
            if surv_here < *prior {
                *prior = surv_here;
            }
            // one intersection decision per (surviving) transfer event
            checks += de.read_transfers * surv_above_skip;
        }

        // --- representation format -------------------------------------
        let format = safs.format_at(de.level, t).cloned();
        let compressed = format.as_ref().map(|f| f.is_compressed()).unwrap_or(false);
        let model = workload.density(t);
        let analyze_tile = |f: &TensorFormat, shape: &[u64]| match cache {
            Some(view) => view.analyze(de.level, t, f, shape, model.as_ref()),
            None => f.analyze(shape, model.as_ref()),
        };
        let (occ_words, occ_meta, max_words, max_meta, md_per_read_tile, md_per_fill_tile) =
            match &format {
                Some(f) => {
                    let held = analyze_tile(f, &de.tile_shape);
                    let child = analyze_tile(f, &de.child_tile_shape);
                    (
                        held.payload_words,
                        held.metadata_bits,
                        held.max_payload_words,
                        held.max_metadata_bits,
                        child.metadata_bits,
                        held.metadata_bits,
                    )
                }
                None => (de.tile_size, 0.0, de.tile_size, 0.0, 0.0, 0.0),
            };

        // --- classify the traffic --------------------------------------
        // Zero-word fraction of the tensor's own data.
        let zero_frac = 1.0 - d_t;
        let self_action = if self_skip_here || (compressed && !self_gate_here) {
            Some(ActionOpt::Skip)
        } else if self_gate_here {
            Some(ActionOpt::Gate)
        } else {
            None
        };

        let classify = |count: f64| -> ActionBreakdown {
            let mut b = ActionBreakdown::dense(count * surv_above_skip);
            b.eliminate(local_skip, ActionOpt::Skip);
            b.eliminate(local_gate, ActionOpt::Gate);
            if let Some(act) = self_action {
                b.eliminate(zero_frac, act);
            }
            b
        };

        let reads = classify(de.reads);
        let fills = classify(de.fills);
        let updates = if einsum.tensor(t).kind == TensorKind::Output {
            classify(de.updates)
        } else {
            ActionBreakdown::default()
        };
        let drains = classify(de.drains);

        // Metadata moves with surviving (non-skipped) transfer events.
        let surviving_transfers = de.read_transfers * surv_above_skip * (1.0 - local_skip);
        let fill_transfers = if de.tile_size > 0.0 {
            de.fills / de.tile_size
        } else {
            0.0
        } * surv_above_skip;
        let metadata_read_bits = surviving_transfers * md_per_read_tile;
        let metadata_write_bits = fill_transfers * md_per_fill_tile;

        entries.push(SparseTensorLevel {
            tensor: t,
            level: de.level,
            reads,
            fills,
            updates,
            drains,
            metadata_read_bits,
            metadata_write_bits,
            occupancy_words: occ_words,
            occupancy_metadata_bits: occ_meta,
            max_occupancy_words: max_words,
            max_occupancy_metadata_bits: max_meta,
            intersection_checks: checks,
        });
    }

    // --- compute classification -----------------------------------------
    // A compute executes iff every input operand is delivered. Delivery
    // conditions are of the form "tensor x's (leader) tile is non-empty";
    // the same condition can arise from several SAFs (e.g. `Skip B <- A`
    // and A's own compressed stream both require "A nonzero"), so
    // conditions are deduplicated per tensor, keeping the finest
    // granularity (lowest survival). The condition maps are
    // insertion-ordered (deterministic products, unlike the seed's
    // `HashMap` iteration).
    let skip_cond = &mut scratch.skip_cond;
    let gate_cond = &mut scratch.gate_cond;
    skip_cond.clear();
    gate_cond.clear();
    let mut effectual = dense.computes;
    let merge = |m: &mut SmallMap<usize>, key: usize, surv: f64| {
        let e = m.entry(key, 1.0);
        if surv < *e {
            *e = surv;
        }
    };
    for (ti, tspec) in einsum.tensors().iter().enumerate() {
        if tspec.kind != TensorKind::Input {
            continue;
        }
        let t = TensorId(ti);
        let d_t = workload.tensor_density(t);
        effectual *= d_t;
        let tr = &trackers[ti];
        for (leader, surv) in tr.skip_leader_surv.iter() {
            merge(skip_cond, leader, surv);
        }
        for (leader, surv) in tr.gate_leader_surv.iter() {
            merge(gate_cond, leader, surv);
        }
        if tr.self_skip {
            merge(skip_cond, ti, d_t);
        }
        if tr.self_gate {
            merge(gate_cond, ti, d_t);
        }
    }
    let skip_surv: f64 = skip_cond.values().product();
    let gate_surv: f64 = gate_cond.values().product();
    let skipped = dense.computes * (1.0 - skip_surv);
    let surviving = dense.computes * skip_surv;
    let gated_implicit = surviving * (1.0 - gate_surv);
    let remaining = surviving - gated_implicit;
    let effectual = effectual.min(remaining);
    let leftover = (remaining - effectual).max(0.0);
    let (actual, extra_gated, extra_skipped) = match safs.compute {
        Some(c) => match c.action {
            ActionOpt::Gate => (effectual, leftover, 0.0),
            ActionOpt::Skip => (effectual, 0.0, leftover),
        },
        None => (effectual + leftover, 0.0, 0.0),
    };
    scratch.traffic.compute = SparseCompute {
        ops: ActionBreakdown {
            actual,
            gated: gated_implicit + extra_gated,
            skipped: skipped + extra_skipped,
        },
    };
    scratch.traffic.utilized_parallelism = dense.utilized_parallelism;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow;
    use sparseloop_density::DensityModelSpec;
    use sparseloop_format::TensorFormat;

    use sparseloop_mapping::MappingBuilder;
    use sparseloop_tensor::einsum::{DimId, Einsum};

    /// spMspM with A at `da`, B at `db`, 1-level arch, k innermost.
    fn workload(da: f64, db: f64) -> (Workload, sparseloop_mapping::Mapping) {
        let e = Einsum::matmul(4, 4, 4);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: da },
                DensityModelSpec::Uniform { density: db },
                DensityModelSpec::Dense,
            ],
        );
        let map = MappingBuilder::new(1, 3)
            .temporal(0, m, 4)
            .temporal(0, n, 4)
            .temporal(0, k, 4)
            .build();
        (w, map)
    }

    #[test]
    fn dense_design_everything_actual() {
        let (w, map) = workload(0.5, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let s = analyze(&w, &d, &SafSpec::dense());
        for e in &s.entries {
            assert_eq!(e.reads.gated, 0.0);
            assert_eq!(e.reads.skipped, 0.0);
        }
        assert_eq!(s.compute.ops.actual, 64.0);
    }

    #[test]
    fn breakdown_conserves_totals() {
        let (w, map) = workload(0.25, 0.5);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        let safs = SafSpec::dense()
            .with_skip(0, b, vec![a])
            .with_gate_compute();
        let s = analyze(&w, &d, &safs);
        for e in &s.entries {
            let de = d.get(e.tensor, e.level).unwrap();
            assert!((e.reads.total() - de.reads).abs() < 1e-6, "reads conserve");
        }
        assert!((s.compute.ops.total() - 64.0).abs() < 1e-6);
    }

    #[test]
    fn leader_follower_skip_scales_with_leader_density() {
        let (w, map) = workload(0.25, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        let safs = SafSpec::dense().with_skip(0, b, vec![a]);
        let s = analyze(&w, &d, &safs);
        let be = s.get(b, 0).unwrap();
        // leader is a single A element (k innermost relevant to both):
        // 75% of B reads skipped
        assert!((be.reads.skipped / be.reads.total() - 0.75).abs() < 1e-9);
        // compute skipped proportionally
        assert!((s.compute.ops.skipped / 64.0 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn gate_keeps_cycles() {
        let (w, map) = workload(0.25, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        let safs = SafSpec::dense().with_gate(0, b, vec![a]);
        let s = analyze(&w, &d, &safs);
        let be = s.get(b, 0).unwrap();
        assert!(be.reads.gated > 0.0);
        assert_eq!(be.reads.skipped, 0.0);
        // gated ops still consume cycles
        assert!((be.reads.cycle_consuming() - be.reads.total()).abs() < 1e-9);
        // compute implicitly gated, not skipped
        assert!(s.compute.ops.gated > 0.0);
        assert_eq!(s.compute.ops.skipped, 0.0);
    }

    #[test]
    fn self_skip_on_compressed_tensor() {
        let (w, map) = workload(0.25, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let safs = SafSpec::dense()
            .with_format(0, a, TensorFormat::coo(2))
            .with_skip(0, a, vec![a]);
        let s = analyze(&w, &d, &safs);
        let ae = s.get(a, 0).unwrap();
        // 75% of A's words are zeros -> skipped
        assert!((ae.reads.skipped / ae.reads.total() - 0.75).abs() < 1e-9);
        assert!(ae.metadata_read_bits > 0.0);
        // compute skips A-zero MACs
        assert!((s.compute.ops.skipped / 64.0 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn self_gate_bitmask_style() {
        let (w, map) = workload(0.25, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let safs = SafSpec::dense()
            .with_format(
                0,
                a,
                TensorFormat::from_ranks(&[
                    sparseloop_format::RankFormat::Uncompressed,
                    sparseloop_format::RankFormat::Bitmask,
                ]),
            )
            .with_gate(0, a, vec![a]);
        let s = analyze(&w, &d, &safs);
        let ae = s.get(a, 0).unwrap();
        // zeros gated: cycles unchanged
        assert!((ae.reads.cycle_consuming() - ae.reads.total()).abs() < 1e-9);
        assert!(ae.reads.gated > 0.0);
    }

    #[test]
    fn compressed_format_without_saf_skips_zeros() {
        let (w, map) = workload(0.25, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let safs = SafSpec::dense().with_format(0, a, TensorFormat::coo(2));
        let s = analyze(&w, &d, &safs);
        let ae = s.get(a, 0).unwrap();
        // compression inherently avoids zero-word traffic
        assert!((ae.reads.skipped / ae.reads.total() - 0.75).abs() < 1e-9);
        // occupancy shrinks to ~nnz
        assert!((ae.occupancy_words - 4.0).abs() < 1e-6); // 16-elem tile at 25%
    }

    #[test]
    fn double_sided_skip_compounds_both_operands() {
        let (w, map) = workload(0.5, 0.5);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        let safs = SafSpec::dense().with_double_sided_skip(0, a, b);
        let s = analyze(&w, &d, &safs);
        // compute survival = P(A nonzero) * P(B nonzero) = 0.25
        assert!((s.compute.ops.skipped / 64.0 - 0.75).abs() < 1e-9);
        assert!((s.compute.ops.actual / 64.0 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_skip_is_conditional() {
        // Same leader at two levels: inner elimination must be conditional
        // on the outer one, total survival = element-level survival.
        let e = Einsum::matmul(4, 4, 4);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: 0.25 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 4)
            .temporal(0, n, 4)
            .temporal(1, k, 4)
            .build();
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        let safs = SafSpec::dense()
            .with_skip(0, b, vec![a])
            .with_skip(1, b, vec![a]);
        let s = analyze(&w, &d, &safs);
        // Final compute survival should equal element-granularity
        // survival (0.25), NOT 0.25 x P(tile nonempty).
        assert!((s.compute.ops.skipped / 64.0 - 0.75).abs() < 1e-6);
    }

    #[test]
    fn elimination_propagates_to_inner_levels() {
        let e = Einsum::matmul(4, 4, 4);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::Uniform { density: 0.25 },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let map = MappingBuilder::new(2, 3)
            .temporal(0, m, 4)
            .temporal(0, n, 4)
            .temporal(1, k, 4)
            .build();
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        // skip at the OUTER level only
        let safs = SafSpec::dense().with_skip(0, b, vec![a]);
        let s = analyze(&w, &d, &safs);
        let b1 = s.get(b, 1).unwrap();
        let db1 = d.get(b, 1).unwrap();
        // inner-level traffic reduced (removed, not reclassified)
        assert!(b1.reads.total() < db1.reads);
    }

    #[test]
    fn intersection_checks_counted() {
        let (w, map) = workload(0.5, 1.0);
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let b = w.einsum().tensor_id("B").unwrap();
        let safs = SafSpec::dense().with_skip(0, b, vec![a]);
        let s = analyze(&w, &d, &safs);
        assert!(s.get(b, 0).unwrap().intersection_checks > 0.0);
        assert_eq!(s.get(a, 0).unwrap().intersection_checks, 0.0);
    }

    #[test]
    fn structured_sparsity_deterministic_speedup() {
        // 2:4 structured A with self-skip: exactly half the computes
        // survive -> the STC 2x result.
        let e = Einsum::matmul(4, 4, 8);
        let (m, n, k) = (DimId(0), DimId(1), DimId(2));
        let w = Workload::new(
            e,
            vec![
                DensityModelSpec::FixedStructured {
                    n: 2,
                    m: 4,
                    axis: 1,
                },
                DensityModelSpec::Dense,
                DensityModelSpec::Dense,
            ],
        );
        let map = MappingBuilder::new(1, 3)
            .temporal(0, m, 4)
            .temporal(0, n, 4)
            .temporal(0, k, 8)
            .build();
        let d = dataflow::analyze(w.einsum(), &map);
        let a = w.einsum().tensor_id("A").unwrap();
        let safs = SafSpec::dense().with_skip(0, a, vec![a]);
        let s = analyze(&w, &d, &safs);
        assert!((s.compute.ops.actual / d.computes - 0.5).abs() < 1e-9);
        assert!((s.compute.ops.skipped / d.computes - 0.5).abs() < 1e-9);
    }
}
